# Convenience targets; PYTHONPATH=src mirrors the tier-1 verify command.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Worker processes for audit sweeps (seeds are independent and the
# reports are byte-identical to a sequential run; see docs/PERF.md).
JOBS ?= 4

.PHONY: test audit audit-fleet audit-failover audit-geo audit-proxy audit-integrity audit-adaptive bench bench-paper

test:
	$(PYTHON) -m pytest -x -q

# The audit gate: the full tier-1 suite, then a 20-seed chaos sweep with
# the runtime invariant auditor armed (see docs/AUDIT.md).  Exits nonzero
# if any test fails or any seed reports an invariant violation.
audit: test
	$(PYTHON) -m repro audit-run --seed 0 --steps 500 --sweep 20 --jobs $(JOBS)

# Fleet-scale repair campaign: a 10-PG volume per seed, a 9-PG permanent
# kill storm with a same-PG double fault, correlated AZ failure bursts,
# and the >=8 concurrent-repair gate.  The sweep footer reports the
# detection/MTTR *distributions* and the achieved durability versus the
# paper's 10-second C7 window (see docs/REPAIR.md).
audit-fleet:
	$(PYTHON) -m repro audit-run --seed 0 --steps 500 --sweep 20 --fleet --jobs $(JOBS)

# Writer-failover smoke: database-tier health monitoring + autonomous
# replica promotion under chaos writer kills and grey failures, gated on
# zero acked-commit loss and the ~30s write-unavailability budget
# (see docs/REPAIR.md "Database-tier failover").
audit-failover:
	$(PYTHON) -m repro audit-run --seed 0 --steps 500 --sweep 3 --failover --jobs $(JOBS)

# Geo disaster-recovery gate: a two-region Global Database per seed over
# a lossy WAN, one terminal region event (region loss or split-brain
# partition) plus WAN brownouts and stream stalls, gated on zero
# sync-acked commit loss, lag-bounded async RPO, provable stale-primary
# fencing, and the 30 s RTO budget.  Even seeds run sync ack mode, odd
# seeds async (see docs/AUDIT.md "Geo disaster recovery").
audit-geo:
	$(PYTHON) -m repro audit-run --seed 0 --steps 400 --sweep 20 --geo --jobs $(JOBS)

# Serving-tier gate: per seed, a lag-aware connection-multiplexing proxy
# fronts 100k logical sessions through one writer kill, gated on zero
# acked-commit loss, zero read-your-writes violations, every session
# outage inside the 5 s recovery budget, and steady-state replica
# time-lag p95 inside the 10 ms SLO (see docs/AUDIT.md "Serving tier").
audit-proxy:
	$(PYTHON) -m repro audit-run --seed 0 --steps 400 --sweep 20 --proxy --jobs $(JOBS)

# Silent-corruption gate: seeded bit-rot / torn / lost / misdirected
# writes against the storage fleet with read-time verification, record
# scrub, and quorum-vote repair armed -- on both storage backends.
# Gated on zero corrupt reads served and every corruption repaired
# inside the exposure budget (see docs/AUDIT.md "End-to-end integrity").
audit-integrity:
	$(PYTHON) -m repro audit-run --seed 0 --steps 500 --sweep 20 --integrity --backend aurora --jobs $(JOBS)
	$(PYTHON) -m repro audit-run --seed 0 --steps 500 --sweep 20 --integrity --backend taurus --jobs $(JOBS)

# Adaptive group-commit smoke: one reduced run of every audit profile
# with group_commit=adaptive forced, so the load-derived boxcar window
# is exercised under chaos, failover, geo, proxy, and integrity schedules
# -- not just the benchmarks (see docs/PERF.md "Adaptive boxcar").
audit-adaptive:
	$(PYTHON) -m repro audit-run --seed 0 --steps 500 --group-commit adaptive
	$(PYTHON) -m repro audit-run --seed 0 --steps 300 --fleet --group-commit adaptive
	$(PYTHON) -m repro audit-run --seed 0 --steps 500 --failover --group-commit adaptive
	$(PYTHON) -m repro audit-run --seed 0 --steps 400 --geo --group-commit adaptive
	$(PYTHON) -m repro audit-run --seed 0 --steps 300 --proxy --proxy-sessions 20000 --group-commit adaptive
	$(PYTHON) -m repro audit-run --seed 0 --steps 400 --integrity --backend aurora --group-commit adaptive

# Engine perf harness: batched fast path vs an unbatched baseline of the
# same seeded workload, recorded in BENCH_engine.json; --check exits
# nonzero on a >25% throughput regression (see docs/PERF.md).
bench:
	$(PYTHON) -m repro bench-engine --jobs $(JOBS) --check

# The paper-shaped latency benchmarks (C1 commit latency, C2 boxcar
# jitter, ...) under pytest-benchmark.
bench-paper:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s
