# Convenience targets; PYTHONPATH=src mirrors the tier-1 verify command.
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test audit bench

test:
	$(PYTHON) -m pytest -x -q

# The audit gate: the full tier-1 suite, then a 20-seed chaos sweep with
# the runtime invariant auditor armed (see docs/AUDIT.md).  Exits nonzero
# if any test fails or any seed reports an invariant violation.
audit: test
	$(PYTHON) -m repro audit-run --seed 0 --steps 500 --sweep 20

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s
