"""Edge-case tests for the network and journal fault paths."""

import random

import pytest

from repro.errors import RecoveryError, SimulationError
from repro.multiwriter import MultiWriterCluster
from repro.sim.events import EventLoop
from repro.sim.network import Actor, Message, Network


class Echo(Actor):
    def on_message(self, message):
        if message.request_id is not None:
            self.network.reply(message, f"echo:{message.payload}")


class TestNetworkEdges:
    def test_reply_to_one_way_message_rejected(self):
        loop = EventLoop()
        network = Network(loop, random.Random(1))

        class BadReplier(Actor):
            def on_message(self, message):
                self.network.reply(message, "oops")

        network.attach(Echo("a"))
        network.attach(BadReplier("b"))
        network.send("a", "b", "one-way")
        with pytest.raises(SimulationError):
            loop.run()

    def test_delivery_to_actorless_node_fails_loudly(self):
        loop = EventLoop()
        network = Network(loop, random.Random(2))
        network.attach(Echo("a"))
        network.add_node("hollow")  # registered, no actor
        network.send("a", "hollow", "x")
        with pytest.raises(SimulationError, match="no actor"):
            loop.run()

    def test_late_rpc_reply_after_resolution_is_ignored(self):
        """A hedged-read-style race: two replies for one logical request
        must not double-resolve anything."""
        loop = EventLoop()
        network = Network(loop, random.Random(3))

        class DoubleReplier(Actor):
            def on_message(self, message):
                self.network.reply(message, "first")
                self.network.reply(message, "second")

        network.attach(Echo("client"))
        network.attach(DoubleReplier("server"))
        future = network.rpc("client", "server", "q")
        loop.run()
        assert future.result() == "first"

    def test_unattached_actor_loop_access_rejected(self):
        with pytest.raises(SimulationError):
            _ = Echo("floating").loop

    def test_unknown_payload_is_dropped_by_storage_node(self, cluster):
        """Nodes ignore payload types they do not understand."""
        node = cluster.nodes["pg0-a"]
        received_before = node.counters["write_batches"]
        cluster.network.send(cluster.writer.name, "pg0-a", {"weird": True})
        cluster.run_for(5)
        assert node.counters["write_batches"] == received_before


class TestJournalFaultEdges:
    def test_journal_recover_fails_below_read_quorum(self):
        mw = MultiWriterCluster(partition_count=2, seed=86)
        session = mw.session()
        for i in range(4):
            mw.failures.crash_node(f"journal-seg{i}")
        mw.journal.crash()
        future = mw.journal.recover()
        with pytest.raises((RecoveryError, SimulationError)):
            session.drive(future, max_ms=5_000)

    def test_journal_entries_survive_sequencer_amnesia(self):
        mw = MultiWriterCluster(partition_count=2, seed=87)
        session = mw.session()
        keys = {}
        i = 0
        while len(keys) < 2:
            keys.setdefault(mw.partition_of(f"k{i}"), f"k{i}")
            i += 1
        k_a, k_b = keys.values()
        txn = session.begin()
        session.put(txn, k_a, "pre-amnesia")
        session.put(txn, k_b, "pre-amnesia")
        gsn = session.commit(txn)["gsn"]
        # Total sequencer amnesia + two journal segments dead.
        mw.failures.crash_node("journal-seg0")
        mw.failures.crash_node("journal-seg3")
        mw.journal.crash()
        mw.journal.durable_gsn = 0
        mw.journal._next_gsn = 1
        recovered = session.drive(mw.journal.recover())
        assert recovered == gsn
        # Replay still works from the surviving read quorum.
        for applier in mw.appliers:
            session.drive(applier.ensure_applied(gsn))
        assert session.get(k_a) == "pre-amnesia"
