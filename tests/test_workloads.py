"""Tests for workload generation and the client drivers."""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.errors import ConfigurationError
from repro.workloads import (
    OpKind,
    WorkloadConfig,
    WorkloadGenerator,
    WorkloadRunner,
    profile,
)


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = WorkloadGenerator(WorkloadConfig(), seed=3).transactions(20)
        b = WorkloadGenerator(WorkloadConfig(), seed=3).transactions(20)
        assert a == b

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(WorkloadConfig(), seed=3).transactions(20)
        b = WorkloadGenerator(WorkloadConfig(), seed=4).transactions(20)
        assert a != b

    def test_transaction_sizes_within_bounds(self):
        config = WorkloadConfig(min_ops=2, max_ops=5)
        generator = WorkloadGenerator(config, seed=1)
        for txn in generator.transactions(100):
            assert 2 <= len(txn) <= 5

    def test_mix_fractions_roughly_hold(self):
        config = WorkloadConfig(
            write_fraction=0.6, delete_fraction=0.1, min_ops=1, max_ops=1
        )
        generator = WorkloadGenerator(config, seed=2)
        operations = [txn[0] for txn in generator.transactions(5000)]
        writes = sum(1 for op in operations if op.kind is OpKind.WRITE)
        deletes = sum(1 for op in operations if op.kind is OpKind.DELETE)
        assert 0.55 < writes / 5000 < 0.65
        assert 0.07 < deletes / 5000 < 0.13

    def test_zipf_skew_concentrates_on_hot_keys(self):
        skewed = WorkloadGenerator(
            WorkloadConfig(zipf_theta=1.2, key_count=100), seed=5
        )
        uniform = WorkloadGenerator(
            WorkloadConfig(zipf_theta=0.0, key_count=100), seed=5
        )

        def top_key_share(generator):
            from collections import Counter

            counts = Counter(
                op.key
                for txn in generator.transactions(2000)
                for op in txn
            )
            return counts.most_common(1)[0][1] / sum(counts.values())

        assert top_key_share(skewed) > 3 * top_key_share(uniform)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(write_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(min_ops=3, max_ops=2)

    def test_profiles_exist(self):
        for name in ("write_only", "read_write", "read_mostly", "hotspot",
                     "trickle"):
            assert isinstance(profile(name), WorkloadConfig)
        with pytest.raises(ConfigurationError):
            profile("nope")


class TestRunner:
    def test_closed_loop_commits_everything(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=61))
        generator = WorkloadGenerator(profile("read_write"), seed=61)
        runner = WorkloadRunner(cluster, generator)
        stats = runner.run_closed_loop(clients=3, transactions_per_client=15)
        assert stats.committed + stats.aborted == 45
        assert stats.committed >= 40
        summary = stats.summary()
        assert summary["p99_ms"] >= summary["p50_ms"] > 0

    def test_open_loop_measures_latency_under_rate(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=62))
        generator = WorkloadGenerator(profile("trickle"), seed=62)
        runner = WorkloadRunner(cluster, generator)
        stats = runner.run_open_loop(rate_per_ms=0.2, duration_ms=200.0)
        assert stats.committed > 10
        assert stats.summary()["mean_ms"] > 0

    def test_hotspot_profile_generates_aborts(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=63))
        generator = WorkloadGenerator(profile("hotspot"), seed=63)
        runner = WorkloadRunner(cluster, generator)
        stats = runner.run_closed_loop(clients=6, transactions_per_client=20)
        assert stats.committed > 0
        # With heavy skew and NO-WAIT locking, some conflicts are expected.
        assert stats.aborted > 0

    def test_runner_data_is_readable_afterwards(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=64))
        generator = WorkloadGenerator(profile("write_only"), seed=64)
        runner = WorkloadRunner(cluster, generator)
        runner.run_closed_loop(clients=2, transactions_per_client=10)
        db = cluster.session()
        results = db.scan("key00000000", "keyzzzzzzzz")
        assert len(results) > 0
