"""Unit tests for the S3 archive, metadata service, and volume geometry."""

import pytest

from repro.core.epochs import EpochStamp
from repro.core.membership import MembershipState
from repro.errors import (
    ConfigurationError,
    MembershipError,
    VolumeGeometryError,
)
from repro.storage.backup import SimulatedS3
from repro.storage.metadata import SegmentPlacement, StorageMetadataService
from repro.storage.segment import SegmentKind
from repro.storage.volume import VolumeGeometry


class TestSimulatedS3:
    def test_put_and_latest(self):
        s3 = SimulatedS3()
        s3.put_snapshot("seg0", 0, scl=5, taken_at=1.0, payload={})
        s3.put_snapshot("seg0", 0, scl=9, taken_at=2.0, payload={})
        latest = s3.latest_snapshot("seg0")
        assert latest.scl == 9
        assert len(s3) == 2

    def test_latest_of_unknown_segment(self):
        assert SimulatedS3().latest_snapshot("ghost") is None

    def test_snapshots_for_pg(self):
        s3 = SimulatedS3()
        s3.put_snapshot("a", 0, 1, 0.0, {})
        s3.put_snapshot("b", 1, 1, 0.0, {})
        assert [o.segment_id for o in s3.snapshots_for_pg(0)] == ["a"]

    def test_gc_keeps_latest_n(self):
        s3 = SimulatedS3()
        for scl in range(1, 6):
            s3.put_snapshot("seg0", 0, scl, float(scl), {})
        removed = s3.collect_garbage(keep_latest_per_segment=2)
        assert removed == 3
        remaining = sorted(o.scl for o in s3.objects.values())
        assert remaining == [4, 5]


MEMBERS = [f"m{i}" for i in range(6)]


def service():
    geometry = VolumeGeometry(blocks_per_pg=10, pg_count=2)
    metadata = StorageMetadataService(geometry)
    metadata.set_membership(0, MembershipState.initial(MEMBERS))
    for i, member in enumerate(MEMBERS):
        metadata.place_segment(
            SegmentPlacement(
                member, 0, member, f"az{i % 3 + 1}",
                SegmentKind.FULL if i % 2 == 0 else SegmentKind.TAIL,
            )
        )
    return metadata


class TestMetadataService:
    def test_membership_round_trip(self):
        metadata = service()
        assert metadata.membership(0).members == frozenset(MEMBERS)
        assert metadata.pg_indexes() == [0]

    def test_membership_epoch_must_advance(self):
        metadata = service()
        with pytest.raises(MembershipError):
            metadata.set_membership(0, MembershipState.initial(MEMBERS))

    def test_unknown_pg_rejected(self):
        with pytest.raises(ConfigurationError):
            service().membership(9)

    def test_epochs_monotonic_per_component(self):
        metadata = service()
        metadata.record_epochs(EpochStamp(volume=3))
        metadata.record_epochs(EpochStamp(membership=2))
        assert metadata.epochs.volume == 3
        assert metadata.epochs.membership == 2

    def test_placement_queries(self):
        metadata = service()
        assert metadata.placement("m0").az == "az1"
        assert len(metadata.segments_of_pg(0)) == 6
        fulls = metadata.full_segments_of_pg(0)
        assert [p.segment_id for p in fulls] == ["m0", "m2", "m4"]

    def test_peers_of(self):
        metadata = service()
        peers = metadata.peers_of("m0")
        assert "m0" not in peers
        assert len(peers) == 5

    def test_quorum_config_tracks_membership(self):
        metadata = service()
        config = metadata.quorum_config(0)
        assert config.write_satisfied(set(MEMBERS[:4]))


class TestVolumeGeometry:
    def test_block_routing(self):
        geometry = VolumeGeometry(blocks_per_pg=10, pg_count=3)
        assert geometry.pg_of_block(0) == 0
        assert geometry.pg_of_block(9) == 0
        assert geometry.pg_of_block(10) == 1
        assert geometry.pg_of_block(29) == 2
        assert geometry.total_blocks == 30

    def test_out_of_range_block_rejected(self):
        geometry = VolumeGeometry(blocks_per_pg=10, pg_count=1)
        with pytest.raises(VolumeGeometryError):
            geometry.pg_of_block(10)
        with pytest.raises(VolumeGeometryError):
            geometry.pg_of_block(-1)

    def test_blocks_of_pg(self):
        geometry = VolumeGeometry(blocks_per_pg=5, pg_count=2)
        assert list(geometry.blocks_of_pg(1)) == [5, 6, 7, 8, 9]
        with pytest.raises(VolumeGeometryError):
            geometry.blocks_of_pg(2)

    def test_grow_bumps_geometry_epoch(self):
        geometry = VolumeGeometry(blocks_per_pg=10, pg_count=1)
        epoch = geometry.grow(2)
        assert epoch == 2
        assert geometry.pg_count == 3
        assert geometry.growth_log == [(2, 3)]
        geometry.pg_of_block(25)  # now addressable

    def test_segment_count(self):
        geometry = VolumeGeometry(blocks_per_pg=10, pg_count=4)
        assert geometry.segment_count() == 24

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            VolumeGeometry(blocks_per_pg=0, pg_count=1)
        with pytest.raises(ConfigurationError):
            VolumeGeometry(blocks_per_pg=1, pg_count=1).grow(0)
