"""Unit tests for epoch stamps and the storage-node epoch registry."""

import pytest

from repro.core.epochs import EpochRegistry, EpochStamp
from repro.errors import ConfigurationError, StaleEpochError


class TestEpochStamp:
    def test_defaults_to_all_ones(self):
        stamp = EpochStamp()
        assert (stamp.volume, stamp.membership, stamp.geometry) == (1, 1, 1)

    def test_bumps_are_independent(self):
        stamp = EpochStamp().bump_volume().bump_membership()
        assert stamp.volume == 2
        assert stamp.membership == 2
        assert stamp.geometry == 1
        assert stamp.bump_geometry().geometry == 2

    def test_zero_epoch_rejected(self):
        with pytest.raises(ConfigurationError):
            EpochStamp(volume=0)

    def test_immutability(self):
        stamp = EpochStamp()
        stamp.bump_volume()
        assert stamp.volume == 1  # original unchanged


class TestEpochRegistry:
    def test_accepts_equal_epochs(self):
        registry = EpochRegistry()
        registry.check_and_learn(EpochStamp())
        assert registry.rejections == 0

    def test_rejects_stale_volume_epoch(self):
        registry = EpochRegistry(EpochStamp(volume=3))
        with pytest.raises(StaleEpochError) as excinfo:
            registry.check_and_learn(EpochStamp(volume=2))
        assert excinfo.value.kind == "volume"
        assert excinfo.value.presented == 2
        assert excinfo.value.current == 3
        assert registry.rejections == 1

    def test_rejects_stale_membership_epoch(self):
        registry = EpochRegistry(EpochStamp(membership=5))
        with pytest.raises(StaleEpochError):
            registry.check_and_learn(EpochStamp(membership=4))

    def test_learns_newer_epochs(self):
        """A request carrying a newer epoch teaches the node: the increment
        was durably recorded on a write quorum elsewhere."""
        registry = EpochRegistry()
        registry.check_and_learn(EpochStamp(volume=4, membership=2))
        assert registry.current.volume == 4
        assert registry.current.membership == 2
        # Now the old epoch is stale here too.
        with pytest.raises(StaleEpochError):
            registry.check_and_learn(EpochStamp(volume=3, membership=2))

    def test_mixed_stale_and_new_is_rejected(self):
        """Any stale component rejects the request (no partial learning)."""
        registry = EpochRegistry(EpochStamp(volume=2, membership=2))
        with pytest.raises(StaleEpochError):
            registry.check_and_learn(EpochStamp(volume=3, membership=1))
        # The newer volume epoch must NOT have been adopted.
        assert registry.current.volume == 2

    def test_advance_is_monotonic_per_component(self):
        registry = EpochRegistry(EpochStamp(volume=5))
        registry.advance(EpochStamp(volume=2, membership=7))
        assert registry.current.volume == 5
        assert registry.current.membership == 7

    def test_fencing_scenario(self):
        """The paper's crash-recovery fence: a pre-crash instance with an
        old volume epoch is boxed out after recovery bumps it."""
        node = EpochRegistry()
        old_instance_stamp = EpochStamp(volume=1)
        node.check_and_learn(old_instance_stamp)  # pre-crash write: fine
        recovered_stamp = EpochStamp(volume=2)
        node.advance(recovered_stamp)  # recovery recorded the new epoch
        with pytest.raises(StaleEpochError):
            node.check_and_learn(old_instance_stamp)  # zombie boxed out
        node.check_and_learn(recovered_stamp)  # new instance proceeds
