"""Unit + property tests for quorums and quorum sets."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quorum import (
    Quorum,
    QuorumAnd,
    QuorumConfig,
    QuorumLeaf,
    QuorumOr,
    aurora_v6_config,
    full_tail_config,
    majority_config,
    transition_config,
    v6_config,
)
from repro.errors import QuorumError

SIX = [f"s{i}" for i in range(6)]


class TestQuorum:
    def test_satisfied_at_threshold(self):
        quorum = Quorum(frozenset(SIX), 4)
        assert quorum.satisfied(set(SIX[:4]))
        assert not quorum.satisfied(set(SIX[:3]))

    def test_ignores_non_members(self):
        quorum = Quorum(frozenset(SIX[:3]), 2)
        assert not quorum.satisfied({"s0", "ghost1", "ghost2"})
        assert quorum.satisfied({"s0", "s1", "ghost"})

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(QuorumError):
            Quorum(frozenset(SIX), 0)
        with pytest.raises(QuorumError):
            Quorum(frozenset(SIX), 7)
        with pytest.raises(QuorumError):
            Quorum(frozenset(), 1)


class TestExpressions:
    def test_and_requires_all_children(self):
        expr = QuorumAnd(
            (QuorumLeaf.of(SIX[:3], 2), QuorumLeaf.of(SIX[3:], 2))
        )
        assert expr.satisfied({"s0", "s1", "s3", "s4"})
        assert not expr.satisfied({"s0", "s1", "s3"})

    def test_or_requires_any_child(self):
        expr = QuorumOr(
            (QuorumLeaf.of(SIX[:3], 3), QuorumLeaf.of(SIX[3:], 3))
        )
        assert expr.satisfied({"s3", "s4", "s5"})
        assert not expr.satisfied({"s0", "s1", "s3", "s4"})

    def test_operators_compose(self):
        left = QuorumLeaf.of(SIX[:3], 2)
        right = QuorumLeaf.of(SIX[3:], 2)
        assert (left & right).satisfied(set(SIX))
        assert (left | right).satisfied({"s0", "s1"})

    def test_members_union(self):
        expr = QuorumAnd(
            (QuorumLeaf.of(SIX[:4], 2), QuorumLeaf.of(SIX[2:], 2))
        )
        assert expr.members() == frozenset(SIX)

    def test_empty_children_rejected(self):
        with pytest.raises(QuorumError):
            QuorumAnd(())
        with pytest.raises(QuorumError):
            QuorumOr(())


class TestNamedConfigs:
    def test_aurora_v6(self):
        config = aurora_v6_config()
        members = sorted(config.members)
        assert len(members) == 6
        assert config.write_satisfied(set(members[:4]))
        assert not config.write_satisfied(set(members[:3]))
        assert config.read_satisfied(set(members[:3]))
        assert not config.read_satisfied(set(members[:2]))

    def test_v6_requires_six_members(self):
        with pytest.raises(QuorumError):
            v6_config(["a", "b", "c"])

    def test_majority_config(self):
        config = majority_config(["a", "b", "c"])
        assert config.write_satisfied({"a", "b"})
        assert not config.write_satisfied({"a"})

    def test_full_tail_write_paths(self):
        config = full_tail_config(["f0", "f1", "f2"], ["t0", "t1", "t2"])
        # 4/6 of anything:
        assert config.write_satisfied({"f0", "t0", "t1", "t2"})
        # OR 3/3 full:
        assert config.write_satisfied({"f0", "f1", "f2"})
        assert not config.write_satisfied({"t0", "t1", "t2"})

    def test_full_tail_read_needs_a_full(self):
        config = full_tail_config(["f0", "f1", "f2"], ["t0", "t1", "t2"])
        assert config.read_satisfied({"f0", "t0", "t1"})
        # 3 members but no full segment: cannot read data.
        assert not config.read_satisfied({"t0", "t1", "t2"})
        assert not config.read_satisfied({"f0", "t0"})

    def test_full_tail_shape_validation(self):
        with pytest.raises(QuorumError):
            full_tail_config(["f0", "f1"], ["t0", "t1", "t2"])
        with pytest.raises(QuorumError):
            full_tail_config(["x", "f1", "f2"], ["x", "t1", "t2"])

    def test_transition_single_group_is_plain_v6(self):
        config = transition_config([SIX])
        assert config.write_satisfied(set(SIX[:4]))
        assert config.read_satisfied(set(SIX[:3]))

    def test_transition_dual_group_write_needs_both(self):
        other = SIX[:5] + ["g"]
        config = transition_config([SIX, other])
        # ABCD(=s0..s3) is 4/6 of both groups (the paper's observation).
        assert config.write_satisfied(set(SIX[:4]))
        # 4 members including the disputed pair satisfies only one group.
        assert not config.write_satisfied({"s0", "s1", "s2", "s5"})
        # Read: 3 of either group.
        assert config.read_satisfied({"s3", "s4", "g"})

    def test_transition_quad_group_double_fault(self):
        groups = [
            SIX,
            SIX[:5] + ["g"],
            SIX[:4] + ["s5", "h"],
            SIX[:4] + ["g", "h"],
        ]
        config = transition_config(groups)
        # "simply writing to the four members ABCD meets quorum"
        assert config.write_satisfied(set(SIX[:4]))
        assert not config.write_satisfied(set(SIX[:3]) | {"s4"} - {"s3"})

    def test_transition_group_size_enforced(self):
        with pytest.raises(QuorumError):
            transition_config([SIX[:5]])
        with pytest.raises(QuorumError):
            transition_config([])


class TestOverlapProofs:
    def test_aurora_v6_proves(self):
        aurora_v6_config().prove()

    def test_disjoint_read_write_fails_proof(self):
        config = QuorumConfig(
            write_expr=QuorumLeaf.of(SIX, 2),
            read_expr=QuorumLeaf.of(SIX, 2),
        )
        with pytest.raises(QuorumError, match="overlap"):
            config.prove()

    def test_non_majority_write_fails_write_write_proof(self):
        config = QuorumConfig(
            write_expr=QuorumLeaf.of(SIX, 3),
            read_expr=QuorumLeaf.of(SIX, 4),
        )
        config.prove_read_write_overlap()  # 3 + 4 > 6: fine
        with pytest.raises(QuorumError, match="write/write"):
            config.prove_write_write_overlap()

    def test_minimal_write_quorums_of_v6(self):
        config = aurora_v6_config()
        minimal = config.minimal_write_quorums()
        assert len(minimal) == 15  # C(6, 4)
        assert all(len(q) == 4 for q in minimal)

    def test_minimal_read_quorums_of_full_tail(self):
        config = full_tail_config(["f0", "f1", "f2"], ["t0", "t1", "t2"])
        minimal = config.minimal_read_quorums()
        assert all(
            any(m.startswith("f") for m in quorum) for quorum in minimal
        )


@st.composite
def quorum_pairs(draw):
    """Random (n, write_threshold, read_threshold) plain-quorum configs."""
    n = draw(st.integers(min_value=1, max_value=8))
    vw = draw(st.integers(min_value=1, max_value=n))
    vr = draw(st.integers(min_value=1, max_value=n))
    return n, vw, vr


class TestQuorumProperties:
    @given(quorum_pairs())
    @settings(max_examples=100, deadline=None)
    def test_proof_matches_classical_conditions(self, params):
        """The exhaustive proof agrees with Vr + Vw > V and Vw > V/2."""
        n, vw, vr = params
        members = [f"m{i}" for i in range(n)]
        config = QuorumConfig(
            write_expr=QuorumLeaf.of(members, vw),
            read_expr=QuorumLeaf.of(members, vr),
        )
        rw_should_hold = vr + vw > n
        ww_should_hold = 2 * vw > n
        if rw_should_hold:
            config.prove_read_write_overlap()
        else:
            with pytest.raises(QuorumError):
                config.prove_read_write_overlap()
        if ww_should_hold:
            config.prove_write_write_overlap()
        else:
            with pytest.raises(QuorumError):
                config.prove_write_write_overlap()

    @given(st.integers(min_value=0, max_value=63))
    @settings(max_examples=64, deadline=None)
    def test_every_write_quorum_intersects_every_read_quorum(self, bits):
        """Spot-check the semantic meaning of a passing proof on v6."""
        config = aurora_v6_config()
        members = sorted(config.members)
        subset = {m for i, m in enumerate(members) if bits >> i & 1}
        complement = set(members) - subset
        # Proof passed at construction, so this can never happen:
        assert not (
            config.write_satisfied(subset)
            and config.read_satisfied(complement)
        )

    @given(
        st.lists(
            st.integers(min_value=0, max_value=5),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_transition_configs_always_prove(self, replaced_slots):
        """Any 1-2 slot replacement yields a provably-overlapping config."""
        groups = [list(SIX)]
        for slot in replaced_slots:
            groups = [g[:] for g in groups] + [
                g[:slot] + [f"new{slot}"] + g[slot + 1:] for g in groups
            ]
        transition_config(groups).prove()
