"""Integration tests for the writer instance: transactions, snapshot
isolation, locking, and the asynchronous commit pipeline."""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session
from repro.errors import (
    InstanceStateError,
    LockConflictError,
    TransactionError,
)


@pytest.fixture
def db(cluster):
    return cluster.session()


class TestBasicTransactions:
    def test_put_commit_get(self, db):
        txn = db.begin()
        db.put(txn, "a", 1)
        scn = db.commit(txn)
        assert scn > 0
        assert db.get("a") == 1

    def test_multi_key_transaction(self, db):
        txn = db.begin()
        for i in range(5):
            db.put(txn, f"k{i}", i)
        db.commit(txn)
        assert [db.get(f"k{i}") for i in range(5)] == [0, 1, 2, 3, 4]

    def test_delete(self, db):
        db.write("a", 1)
        db.remove("a")
        assert db.get("a") is None

    def test_uncommitted_writes_invisible_to_others(self, db, cluster):
        txn = db.begin()
        db.put(txn, "a", "pending")
        assert db.get("a") is None  # a fresh statement view can't see it
        assert db.get("a", txn=txn) == "pending"  # own writes visible
        db.commit(txn)
        assert db.get("a") == "pending"

    def test_rollback_restores_prior_state(self, db):
        db.write("a", "original")
        txn = db.begin()
        db.put(txn, "a", "doomed")
        db.put(txn, "b", "also-doomed")
        db.rollback(txn)
        assert db.get("a") == "original"
        assert db.get("b") is None

    def test_rolled_back_txn_is_unusable(self, db):
        txn = db.begin()
        db.put(txn, "a", 1)
        db.rollback(txn)
        with pytest.raises(TransactionError):
            db.put(txn, "a", 2)
        with pytest.raises(TransactionError):
            db.commit(txn)

    def test_read_only_commit_is_instant(self, db):
        db.write("a", 1)
        txn = db.begin()
        assert db.get("a", txn=txn) == 1
        future = db.commit_async(txn)
        assert future.done  # no record needed, no quorum wait

    def test_scan_spans_transactions(self, db):
        db.write_many({f"x{i:02d}": i for i in range(10)})
        results = db.scan("x03", "x06")
        assert results == [(f"x{i:02d}", i) for i in range(3, 7)]


class TestSnapshotIsolation:
    def test_repeatable_reads_within_txn(self, db):
        db.write("a", "v1")
        reader = db.begin()
        assert db.get("a", txn=reader) == "v1"
        db.write("a", "v2")  # concurrent committed write
        assert db.get("a", txn=reader) == "v1"  # snapshot stable
        db.commit(reader)
        assert db.get("a") == "v2"

    def test_new_statement_views_see_latest(self, db):
        db.write("a", "v1")
        assert db.get("a") == "v1"
        db.write("a", "v2")
        assert db.get("a") == "v2"

    def test_snapshot_spans_scans(self, db):
        db.write_many({"k1": 1, "k2": 2})
        reader = db.begin()
        assert len(db.scan("k0", "k9", txn=reader)) == 2
        db.write("k3", 3)
        assert len(db.scan("k0", "k9", txn=reader)) == 2
        db.commit(reader)
        assert len(db.scan("k0", "k9")) == 3

    def test_reader_does_not_block_writer(self, db):
        db.write("a", 1)
        reader = db.begin()
        db.get("a", txn=reader)
        writer = db.begin()
        db.put(writer, "a", 2)  # readers hold no locks
        db.commit(writer)
        db.commit(reader)


class TestLocking:
    def test_write_write_conflict(self, db):
        t1 = db.begin()
        t2 = db.begin()
        db.put(t1, "hot", 1)
        with pytest.raises(LockConflictError):
            db.put(t2, "hot", 2)
        db.rollback(t2)
        db.commit(t1)

    def test_locks_released_at_commit(self, db):
        t1 = db.begin()
        db.put(t1, "hot", 1)
        db.commit(t1)
        t2 = db.begin()
        db.put(t2, "hot", 2)
        db.commit(t2)
        assert db.get("hot") == 2

    def test_locks_released_at_rollback(self, db):
        t1 = db.begin()
        db.put(t1, "hot", 1)
        db.rollback(t1)
        t2 = db.begin()
        db.put(t2, "hot", 2)
        db.commit(t2)


class TestAsyncCommitPipeline:
    def test_commit_ack_requires_scn_below_vcl(self, cluster):
        """The commit future resolves only after the quorum catches up."""
        db = cluster.session()
        txn = db.begin()
        db.put(txn, "a", 1)
        future = db.commit_async(txn)
        assert not future.done  # acks have not arrived yet
        scn = db.drive(future)
        assert cluster.writer.vcl >= scn

    def test_workers_do_not_stall_on_commit(self, cluster):
        """Many commits can be in flight at once (no group-commit stall)."""
        db = cluster.session()
        futures = []
        for i in range(10):
            txn = db.begin()
            db.put(txn, f"k{i}", i)
            futures.append(db.commit_async(txn))
        in_flight = sum(1 for f in futures if not f.done)
        assert in_flight >= 5  # most are genuinely concurrent
        for future in futures:
            db.drive(future)
        assert cluster.writer.stats.commits_acknowledged >= 10

    def test_acks_arrive_in_scn_order(self, cluster):
        db = cluster.session()
        order = []
        for i in range(5):
            txn = db.begin()
            db.put(txn, f"k{i}", i)
            future = db.commit_async(txn)
            future.add_done_callback(
                lambda f: order.append(f.result())
            )
        cluster.run_for(100)
        assert order == sorted(order)
        assert len(order) == 5

    def test_commit_latency_tracked(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        assert len(cluster.writer.stats.commit_latencies) == 1
        assert cluster.writer.stats.commit_latencies[0] > 0


class TestWALInvariant:
    def test_dirty_blocks_not_evictable_until_durable(self, cluster):
        db = cluster.session()
        txn = db.begin()
        db.put(txn, "a", 1)
        writer = cluster.writer
        dirty = writer.cache.dirty_blocks(writer.vdl)
        assert dirty  # redo still in flight
        db.commit(txn)
        cluster.run_for(20)
        assert writer.cache.dirty_blocks(writer.vdl) == []


class TestCacheMissReads:
    def test_read_after_eviction_goes_to_storage(self):
        config = ClusterConfig(seed=21)
        config.instance.cache_capacity = 8  # tiny pool
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        for i in range(60):
            db.write(f"key{i:03d}", i)
        cluster.run_for(50)
        reads_before = cluster.writer.driver.stats.reads_issued
        for i in range(0, 60, 7):
            assert db.get(f"key{i:03d}") == i
        assert cluster.writer.driver.stats.reads_issued > reads_before

    def test_tiny_cache_still_correct_under_load(self):
        config = ClusterConfig(seed=22)
        config.instance.cache_capacity = 6
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        expected = {}
        for i in range(80):
            key = f"k{i % 17:02d}"
            db.write(key, i)
            expected[key] = i
        for key, value in expected.items():
            assert db.get(key) == value


class TestInstanceStateGuards:
    def test_crashed_instance_refuses_operations(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        cluster.crash_writer()
        with pytest.raises(InstanceStateError):
            cluster.writer.begin()

    def test_double_bootstrap_rejected(self, cluster):
        with pytest.raises(InstanceStateError):
            cluster.writer.bootstrap()


class TestVersionPurge:
    def test_purge_old_versions_collapses_history(self, cluster):
        db = cluster.session()
        for i in range(5):
            db.write("hot", i)
        cluster.run_for(100)
        purged = db.drive(cluster.writer.purge_old_versions())
        assert purged >= 1
        assert db.get("hot") == 4  # latest survives
