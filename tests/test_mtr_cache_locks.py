"""Unit tests for MTRs, the buffer cache's WAL invariant, and locking."""

import pytest

from repro.core.lsn import LSNAllocator, NULL_LSN
from repro.core.records import BlockPut, BlockReplace
from repro.db.buffer_cache import BufferCache
from repro.db.locks import LockManager, lock_keys_for
from repro.db.mtr import ChainState, MTRBuilder
from repro.errors import ConfigurationError, LockConflictError


class TestChainState:
    def test_threads_all_three_chains(self):
        chains = ChainState()
        assert chains.thread(5, pg_index=0, block=7) == (0, 0, 0)
        assert chains.thread(6, pg_index=1, block=7) == (5, 0, 5)
        assert chains.thread(7, pg_index=0, block=8) == (6, 5, 0)
        assert chains.thread(8, pg_index=0, block=7) == (7, 7, 6)

    def test_no_block_skips_block_chain(self):
        from repro.core.records import NO_BLOCK

        chains = ChainState()
        chains.thread(5, 0, NO_BLOCK)
        assert chains.last_block_lsn == {}

    def test_reset_to_recovered_points(self):
        chains = ChainState()
        chains.thread(5, 0, 1)
        chains.reset_to(100, {0: 99, 1: 100})
        assert chains.thread(101, 0, 1) == (100, 99, 0)


class TestMTRBuilder:
    def test_seal_allocates_contiguous_lsns(self):
        allocator = LSNAllocator()
        chains = ChainState()
        mtr = MTRBuilder(txn_id=3)
        for block in (1, 2, 3):
            mtr.change(block, 0, BlockPut(entries=(("k", block),)))
        records = mtr.seal(allocator, chains)
        assert [r.lsn for r in records] == [1, 2, 3]
        assert [r.mtr_end for r in records] == [False, False, True]
        assert all(r.txn_id == 3 for r in records)
        assert all(r.mtr_id == records[0].mtr_id for r in records)

    def test_chains_thread_through_the_batch(self):
        allocator = LSNAllocator()
        chains = ChainState()
        mtr = MTRBuilder()
        mtr.change(1, 0, BlockPut(entries=(("a", 1),)))
        mtr.change(1, 0, BlockPut(entries=(("b", 2),)))
        first, second = mtr.seal(allocator, chains)
        assert second.prev_volume_lsn == first.lsn
        assert second.prev_pg_lsn == first.lsn
        assert second.prev_block_lsn == first.lsn

    def test_empty_seal_rejected(self):
        with pytest.raises(ConfigurationError):
            MTRBuilder().seal(LSNAllocator(), ChainState())

    def test_double_seal_rejected(self):
        mtr = MTRBuilder()
        mtr.change(1, 0, BlockPut(entries=(("a", 1),)))
        mtr.seal(LSNAllocator(), ChainState())
        with pytest.raises(ConfigurationError):
            mtr.seal(LSNAllocator(), ChainState())

    def test_change_after_seal_rejected(self):
        mtr = MTRBuilder()
        mtr.change(1, 0, BlockPut(entries=(("a", 1),)))
        mtr.seal(LSNAllocator(), ChainState())
        with pytest.raises(ConfigurationError):
            mtr.change(2, 0, BlockPut(entries=(("b", 2),)))

    def test_distinct_mtr_ids(self):
        assert MTRBuilder().mtr_id != MTRBuilder().mtr_id


class TestBufferCache:
    def test_install_and_lookup(self):
        cache = BufferCache(capacity=4)
        cache.install(1, {"a": 1}, latest_lsn=5, vdl=5)
        cached = cache.lookup(1)
        assert cached.image == {"a": 1}
        assert cache.stats.hits == 1
        assert cache.lookup(2) is None
        assert cache.stats.misses == 1

    def test_wal_invariant_blocks_dirty_eviction(self):
        """A block whose redo is not yet durable may NOT be discarded."""
        cache = BufferCache(capacity=1)
        cache.install(1, {"a": 1}, latest_lsn=10, vdl=5)  # dirty: 10 > 5
        cache.install(2, {"b": 2}, latest_lsn=3, vdl=5)
        assert 1 in cache  # still there: over-filled instead of evicted
        assert cache.stats.eviction_blocked == 1
        assert len(cache) == 2

    def test_clean_blocks_evict_lru_first(self):
        cache = BufferCache(capacity=2)
        cache.install(1, {}, latest_lsn=1, vdl=10)
        cache.install(2, {}, latest_lsn=2, vdl=10)
        cache.lookup(1)  # touch 1: now 2 is LRU
        cache.install(3, {}, latest_lsn=3, vdl=10)
        assert 2 not in cache
        assert 1 in cache and 3 in cache

    def test_explicit_evict_respects_invariant(self):
        cache = BufferCache(capacity=4)
        cache.install(1, {}, latest_lsn=10, vdl=5)
        assert not cache.evict(1, vdl=5)
        assert cache.evict(1, vdl=10)
        assert 1 not in cache

    def test_pinned_blocks_never_evict(self):
        cache = BufferCache(capacity=4)
        cache.install(1, {}, latest_lsn=1, vdl=10)
        cache.pin(1)
        assert not cache.evict(1, vdl=10)
        cache.unpin(1)
        assert cache.evict(1, vdl=10)

    def test_unbalanced_unpin_rejected(self):
        cache = BufferCache()
        cache.install(1, {}, 1, 10)
        with pytest.raises(ConfigurationError):
            cache.unpin(1)

    def test_apply_change_moves_block_forward_only(self):
        cache = BufferCache()
        cache.install(1, {"v": 0}, latest_lsn=5, vdl=5)
        cache.apply_change(1, {"v": 1}, lsn=6)
        assert cache.peek(1).latest_lsn == 6
        with pytest.raises(ConfigurationError):
            cache.apply_change(1, {"v": 2}, lsn=6)

    def test_install_refresh_keeps_newest(self):
        cache = BufferCache()
        cache.install(1, {"v": "new"}, latest_lsn=9, vdl=9)
        cache.install(1, {"v": "stale"}, latest_lsn=3, vdl=9)
        assert cache.peek(1).image == {"v": "new"}

    def test_dirty_blocks_listing(self):
        cache = BufferCache()
        cache.install(1, {}, latest_lsn=10, vdl=0)
        cache.install(2, {}, latest_lsn=2, vdl=0)
        assert set(cache.dirty_blocks(vdl=5)) == {1}

    def test_drop_all_models_crash(self):
        cache = BufferCache()
        cache.install(1, {}, 1, 1)
        cache.drop_all()
        assert len(cache) == 0


class TestLockManager:
    def test_exclusive_conflict_raises(self):
        locks = LockManager()
        locks.acquire(1, "k")
        with pytest.raises(LockConflictError):
            locks.acquire(2, "k")
        assert locks.conflicts == 1

    def test_reentrant_for_owner(self):
        locks = LockManager()
        locks.acquire(1, "k")
        locks.acquire(1, "k")
        assert locks.holder("k") == 1
        assert locks.acquisitions == 1

    def test_release_all_frees_for_others(self):
        locks = LockManager()
        locks.acquire(1, "a")
        locks.acquire(1, "b")
        assert locks.release_all(1) == 2
        locks.acquire(2, "a")
        assert locks.holder("a") == 2

    def test_locks_of(self):
        locks = LockManager()
        locks.acquire(1, "a")
        locks.acquire(1, "b")
        assert locks.locks_of(1) == {"a", "b"}
        assert locks.locks_of(2) == set()

    def test_clear_models_crash(self):
        locks = LockManager()
        locks.acquire(1, "a")
        locks.clear()
        assert locks.held_count == 0
        locks.acquire(2, "a")

    def test_deterministic_lock_order(self):
        assert lock_keys_for([3, 1, 2]) == sorted([3, 1, 2], key=repr)
        assert lock_keys_for(["b", "a"]) == ["'a'", "'b'"] or lock_keys_for(
            ["b", "a"]
        ) == ["a", "b"]
