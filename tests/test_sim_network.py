"""Unit tests for the simulated network."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.events import EventLoop
from repro.sim.latency import FixedLatency
from repro.sim.network import Actor, Message, Network


class Recorder(Actor):
    """Actor that records everything it receives."""

    def __init__(self, name: str, reply_with=None) -> None:
        super().__init__(name)
        self.received: list[Message] = []
        self.reply_with = reply_with
        self.crashes = 0
        self.restarts = 0

    def on_message(self, message: Message) -> None:
        self.received.append(message)
        if message.request_id is not None and self.reply_with is not None:
            self.network.reply(message, self.reply_with)

    def on_crash(self) -> None:
        self.crashes += 1

    def on_restart(self) -> None:
        self.restarts += 1


@pytest.fixture
def net():
    loop = EventLoop()
    network = Network(
        loop,
        random.Random(5),
        intra_az=FixedLatency(0.25),
        cross_az=FixedLatency(1.0),
    )
    return loop, network


class TestDelivery:
    def test_one_way_send_delivers(self, net):
        loop, network = net
        a, b = Recorder("a"), Recorder("b")
        network.attach(a, az="az1")
        network.attach(b, az="az1")
        network.send("a", "b", "hello")
        loop.run()
        assert [m.payload for m in b.received] == ["hello"]
        assert b.received[0].src == "a"

    def test_intra_az_faster_than_cross_az(self, net):
        loop, network = net
        a = Recorder("a")
        same = Recorder("same")
        other = Recorder("other")
        network.attach(a, az="az1")
        network.attach(same, az="az1")
        network.attach(other, az="az2")
        network.send("a", "same", 1)
        network.send("a", "other", 2)
        loop.run()
        assert same.received[0].deliver_time == pytest.approx(0.25)
        assert other.received[0].deliver_time == pytest.approx(1.0)

    def test_link_override_takes_precedence(self, net):
        loop, network = net
        a, b = Recorder("a"), Recorder("b")
        network.attach(a, az="az1")
        network.attach(b, az="az2")
        network.set_link_latency("a", "b", FixedLatency(9.0))
        network.send("a", "b", "x")
        loop.run()
        assert b.received[0].deliver_time == pytest.approx(9.0)

    def test_unknown_node_rejected(self, net):
        _loop, network = net
        network.attach(Recorder("a"))
        with pytest.raises(ConfigurationError):
            network.send("a", "ghost", "x")

    def test_duplicate_node_rejected(self, net):
        _loop, network = net
        network.attach(Recorder("a"))
        with pytest.raises(ConfigurationError):
            network.add_node("a")


class TestRPC:
    def test_rpc_round_trip(self, net):
        loop, network = net
        client = Recorder("client")
        server = Recorder("server", reply_with="pong")
        network.attach(client, az="az1")
        network.attach(server, az="az1")
        future = network.rpc("client", "server", "ping")
        loop.run()
        assert future.result() == "pong"
        assert server.received[0].payload == "ping"

    def test_rpc_to_down_node_never_resolves(self, net):
        loop, network = net
        client = Recorder("client")
        server = Recorder("server", reply_with="pong")
        network.attach(client)
        network.attach(server)
        network.fail_node("server")
        future = network.rpc("client", "server", "ping")
        loop.run()
        assert not future.done

    def test_concurrent_rpcs_route_to_right_futures(self, net):
        loop, network = net
        client = Recorder("client")

        class Echo(Actor):
            def on_message(self, message):
                self.network.reply(message, f"echo:{message.payload}")

        server = Echo("server")
        network.attach(client)
        network.attach(server)
        futures = [
            network.rpc("client", "server", i) for i in range(5)
        ]
        loop.run()
        assert [f.result() for f in futures] == [f"echo:{i}" for i in range(5)]


class TestFailures:
    def test_messages_to_down_node_dropped(self, net):
        loop, network = net
        a, b = Recorder("a"), Recorder("b")
        network.attach(a)
        network.attach(b)
        network.fail_node("b")
        network.send("a", "b", "lost")
        loop.run()
        assert b.received == []
        assert network.stats.messages_dropped == 1

    def test_messages_from_down_node_dropped(self, net):
        loop, network = net
        a, b = Recorder("a"), Recorder("b")
        network.attach(a)
        network.attach(b)
        network.fail_node("a")
        network.send("a", "b", "lost")
        loop.run()
        assert b.received == []

    def test_message_in_flight_when_node_dies_is_dropped(self, net):
        loop, network = net
        a, b = Recorder("a"), Recorder("b")
        network.attach(a, az="az1")
        network.attach(b, az="az2")  # 1.0 ms away
        network.send("a", "b", "doomed")
        loop.schedule(0.5, network.fail_node, "b")
        loop.run()
        assert b.received == []

    def test_crash_and_restart_hooks_fire(self, net):
        _loop, network = net
        b = Recorder("b")
        network.attach(b)
        network.fail_node("b")
        network.fail_node("b")  # idempotent
        network.restore_node("b")
        assert b.crashes == 1
        assert b.restarts == 1

    def test_restored_node_receives_again(self, net):
        loop, network = net
        a, b = Recorder("a"), Recorder("b")
        network.attach(a)
        network.attach(b)
        network.fail_node("b")
        network.restore_node("b")
        network.send("a", "b", "back")
        loop.run()
        assert [m.payload for m in b.received] == ["back"]

    def test_partition_blocks_both_directions(self, net):
        loop, network = net
        a, b = Recorder("a"), Recorder("b")
        network.attach(a)
        network.attach(b)
        network.partition({"a"}, {"b"})
        network.send("a", "b", 1)
        network.send("b", "a", 2)
        loop.run()
        assert a.received == [] and b.received == []
        network.heal_all_partitions()
        network.send("a", "b", 3)
        loop.run()
        assert [m.payload for m in b.received] == [3]

    def test_latency_scale_slows_node(self, net):
        loop, network = net
        a = Recorder("a")
        b = Recorder("b")
        network.attach(a, az="az1")
        network.attach(b, az="az1")
        network.set_latency_scale("b", 10.0)
        network.send("a", "b", "slow")
        loop.run()
        assert b.received[0].deliver_time == pytest.approx(2.5)


class TestStats:
    def test_counts_sent_delivered_by_type(self, net):
        loop, network = net
        a, b = Recorder("a"), Recorder("b")
        network.attach(a)
        network.attach(b)
        network.send("a", "b", "text")
        network.send("a", "b", 42)
        loop.run()
        assert network.stats.messages_sent == 2
        assert network.stats.messages_delivered == 2
        assert network.stats.by_type["str"] == 1
        assert network.stats.by_type["int"] == 1

    def test_tap_sees_deliveries(self, net):
        loop, network = net
        a, b = Recorder("a"), Recorder("b")
        network.attach(a)
        network.attach(b)
        tapped = []
        network.add_tap(lambda m: tapped.append(m.payload))
        network.send("a", "b", "observed")
        loop.run()
        assert tapped == ["observed"]


class TestQuarantine:
    def test_quarantine_blocks_both_directions(self, net):
        loop, network = net
        a, b = Recorder("a"), Recorder("b")
        network.attach(a)
        network.attach(b)
        network.quarantine("a")
        network.send("a", "b", "out")
        network.send("b", "a", "in")
        loop.run()
        assert a.received == [] and b.received == []
        network.lift_quarantine("a")
        network.send("b", "a", "again")
        loop.run()
        assert [m.payload for m in a.received] == ["again"]

    def test_quarantine_allowlist_passes(self, net):
        loop, network = net
        a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
        for actor in (a, b, c):
            network.attach(actor)
        network.quarantine("a", allow={"b"})
        network.send("b", "a", "allowed")
        network.send("c", "a", "blocked")
        network.send("a", "c", "blocked too")
        loop.run()
        assert [m.payload for m in a.received] == ["allowed"]
        assert c.received == []

    def test_quarantine_covers_nodes_added_later(self, net):
        # The reason this primitive exists: a pairwise partition against a
        # snapshot of current peers cannot isolate a node from peers the
        # cluster creates afterwards (e.g. a repair's fresh candidate).
        loop, network = net
        a = Recorder("a")
        network.attach(a)
        network.quarantine("a")
        late = Recorder("late")
        network.attach(late)
        network.send("late", "a", "x")
        network.send("a", "late", "y")
        loop.run()
        assert a.received == [] and late.received == []

    def test_self_delivery_not_quarantined(self, net):
        loop, network = net
        a = Recorder("a")
        network.attach(a)
        network.quarantine("a")
        network.send("a", "a", "self")
        loop.run()
        assert [m.payload for m in a.received] == ["self"]
