"""Property tests for gossip convergence (DESIGN.md invariant:
"after quiescence all live segments in a PG have equal SCL").
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.epochs import EpochStamp
from repro.core.membership import MembershipState
from repro.core.records import BlockPut, LogRecord, RecordKind
from repro.sim.events import EventLoop
from repro.sim.latency import FixedLatency
from repro.sim.network import Network
from repro.storage.backup import SimulatedS3
from repro.storage.messages import WriteBatch
from repro.storage.metadata import SegmentPlacement, StorageMetadataService
from repro.storage.node import StorageNode, StorageNodeConfig
from repro.storage.segment import Segment, SegmentKind
from repro.storage.volume import VolumeGeometry


def build_fleet(seed):
    loop = EventLoop()
    rng = random.Random(seed)
    network = Network(
        loop, rng, intra_az=FixedLatency(0.2), cross_az=FixedLatency(0.7)
    )
    metadata = StorageMetadataService(
        VolumeGeometry(blocks_per_pg=32, pg_count=1)
    )
    names = [f"seg{i}" for i in range(6)]
    metadata.set_membership(0, MembershipState.initial(names))
    nodes = {}
    config = StorageNodeConfig(
        disk=FixedLatency(0.05),
        gossip_interval=10.0,
        backup_interval=10_000.0,   # keep backups/GC out of the way
        gc_interval=10_000.0,
        scrub_interval=10_000.0,
    )
    for i, name in enumerate(names):
        segment = Segment(name, 0)
        node = StorageNode(segment, metadata, SimulatedS3(), rng, config)
        network.attach(node, az=f"az{i % 3 + 1}")
        metadata.place_segment(
            SegmentPlacement(name, 0, name, f"az{i % 3 + 1}",
                             SegmentKind.FULL)
        )
        nodes[name] = node
    for node in nodes.values():
        node.register_peer_directory(nodes)
        node.start()

    from repro.sim.network import Actor

    class _Sink(Actor):
        def on_message(self, message):
            pass

    network.attach(_Sink("db"), az="az1")  # ack sink for WriteBatches
    return loop, network, nodes, names


def make_records(count):
    records = []
    prev = 0
    for lsn in range(1, count + 1):
        records.append(
            LogRecord(
                lsn=lsn, prev_volume_lsn=lsn - 1, prev_pg_lsn=prev,
                prev_block_lsn=0, block=lsn % 4, pg_index=0,
                kind=RecordKind.DATA,
                payload=BlockPut(entries=(("k", lsn),)),
            )
        )
        prev = lsn
    return records


class TestGossipConvergence:
    @given(
        seed=st.integers(0, 10_000),
        record_count=st.integers(1, 25),
        delivery_bits=st.integers(0, 2**30 - 1),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_partial_delivery_converges(
        self, seed, record_count, delivery_bits
    ):
        """Deliver each record to an arbitrary nonempty subset of segments;
        after quiescence, every segment's SCL equals the maximum."""
        loop, network, nodes, names = build_fleet(seed)
        records = make_records(record_count)
        for i, record in enumerate(records):
            subset_bits = (delivery_bits >> (i % 25)) & 0x3F
            subset = [
                names[j] for j in range(6) if subset_bits >> j & 1
            ] or [names[i % 6]]
            for name in subset:
                network.send(
                    "db",
                    name,
                    WriteBatch(
                        instance_id="db", pg_index=0,
                        records=(record,), epochs=EpochStamp(), pgmrpl=0,
                    ),
                )
        # At least one segment got record N only if some subset included
        # it; every record went SOMEWHERE, so the union is complete and
        # gossip must spread it everywhere.
        loop.run(until=3_000.0)
        scls = {name: nodes[name].segment.scl for name in names}
        assert len(set(scls.values())) == 1, scls
        assert max(scls.values()) == record_count

    def test_two_isolated_halves_converge_after_heal(self):
        loop, network, nodes, names = build_fleet(99)
        left, right = set(names[:3]), set(names[3:])
        network.partition(left, right)
        records = make_records(10)
        # Odd records to the left half, even to the right.
        for i, record in enumerate(records):
            targets = names[:3] if i % 2 else names[3:]
            for name in targets:
                network.send(
                    "db", name,
                    WriteBatch(
                        instance_id="db", pg_index=0,
                        records=(record,), epochs=EpochStamp(), pgmrpl=0,
                    ),
                )
        loop.run(until=500.0)
        # Halves are internally consistent but globally incomplete.
        assert all(nodes[n].segment.scl < 10 for n in names)
        network.heal_all_partitions()
        loop.run(until=3_000.0)
        assert {nodes[n].segment.scl for n in names} == {10}

    def test_gossip_is_epoch_fenced(self):
        """A segment at a newer epoch refuses gossip from a stale peer --
        but the stale peer LEARNS the epoch from the rejection's reply and
        can then participate again."""
        loop, network, nodes, names = build_fleet(7)
        nodes["seg0"].epochs.advance(EpochStamp(volume=5))
        records = make_records(3)
        for record in records:
            network.send(
                "db", "seg0",
                WriteBatch(
                    instance_id="db", pg_index=0, records=(record,),
                    epochs=EpochStamp(volume=5), pgmrpl=0,
                ),
            )
        loop.run(until=3_000.0)
        # Every node ends at the new epoch (learned through gossip).
        assert all(
            nodes[n].epochs.current.volume == 5 for n in names
        )
        assert {nodes[n].segment.scl for n in names} == {3}
