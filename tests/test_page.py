"""Unit tests for versioned block chains."""

import pytest

from repro.core.lsn import NULL_LSN
from repro.errors import ReadPointError
from repro.storage.page import BlockVersion, BlockVersionChain, image_checksum


class TestBlockVersionChain:
    def test_empty_chain_serves_empty_image(self):
        chain = BlockVersionChain(0)
        assert chain.latest_lsn == NULL_LSN
        assert chain.latest_image() == {}
        assert chain.version_at(100) is None
        assert chain.image_at(100) == {}

    def test_append_and_read_latest(self):
        chain = BlockVersionChain(0)
        chain.append(5, {"a": 1})
        chain.append(9, {"a": 2})
        assert chain.latest_lsn == 9
        assert chain.latest_image() == {"a": 2}

    def test_non_monotonic_append_rejected(self):
        chain = BlockVersionChain(0)
        chain.append(5, {})
        with pytest.raises(ReadPointError):
            chain.append(5, {})
        with pytest.raises(ReadPointError):
            chain.append(4, {})

    def test_version_at_binary_search(self):
        chain = BlockVersionChain(0)
        for lsn in (2, 5, 9, 14):
            chain.append(lsn, {"lsn": lsn})
        assert chain.version_at(1) is None
        assert chain.version_at(2).lsn == 2
        assert chain.version_at(8).lsn == 5
        assert chain.version_at(9).lsn == 9
        assert chain.version_at(100).lsn == 14

    def test_images_are_copied_out(self):
        chain = BlockVersionChain(0)
        chain.append(1, {"a": 1})
        image = chain.image_at(1)
        image["a"] = 999
        assert chain.image_at(1) == {"a": 1}

    def test_gc_keeps_newest_at_or_below_floor(self):
        chain = BlockVersionChain(0)
        for lsn in (1, 3, 5, 7):
            chain.append(lsn, {"lsn": lsn})
        removed = chain.gc_below(5)
        assert removed == 2  # versions 1 and 3
        assert chain.version_at(5).lsn == 5
        assert chain.version_at(6).lsn == 5  # base version retained
        assert chain.version_at(7).lsn == 7

    def test_gc_below_everything_keeps_latest(self):
        chain = BlockVersionChain(0)
        chain.append(1, {})
        chain.append(2, {})
        chain.gc_below(100)
        assert len(chain) == 1
        assert chain.latest_lsn == 2

    def test_truncate_above_discards_annulled_versions(self):
        chain = BlockVersionChain(0)
        for lsn in (1, 5, 9):
            chain.append(lsn, {"lsn": lsn})
        removed = chain.truncate_above(5)
        assert removed == 1
        assert chain.latest_lsn == 5

    def test_truncate_above_window_preserves_new_generation(self):
        chain = BlockVersionChain(0)
        for lsn in (1, 5, 101):
            chain.append(lsn, {"lsn": lsn})
        removed = chain.truncate_above(1, last=100)
        assert removed == 1          # only the version inside (1, 100]
        assert chain.latest_lsn == 101
        assert len(chain) == 2

    def test_scrub_detects_corruption(self):
        chain = BlockVersionChain(0)
        chain.append(1, {"a": 1})
        chain.append(2, {"a": 2})
        assert chain.scrub() == []
        chain.corrupt_latest()
        assert chain.scrub() == [2]


class TestChecksums:
    def test_order_independent(self):
        assert image_checksum({"a": 1, "b": 2}) == image_checksum(
            {"b": 2, "a": 1}
        )

    def test_value_sensitive(self):
        assert image_checksum({"a": 1}) != image_checksum({"a": 2})

    def test_verify_round_trip(self):
        version = BlockVersion.of(5, {"x": "y"})
        assert version.verify()
        version.image["x"] = "tampered"
        assert not version.verify()
