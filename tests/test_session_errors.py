"""Tests for the Session wrapper and the exception hierarchy."""

import pytest

from repro import AuroraCluster, ReproError
from repro.db.session import Session
from repro.errors import (
    ConfigurationError,
    InstanceStateError,
    LockConflictError,
    MembershipError,
    QuorumError,
    ReadPointError,
    RecoveryError,
    SegmentUnavailableError,
    SimulationError,
    StaleEpochError,
    TransactionAbortedError,
    TransactionError,
    VolumeGeometryError,
)


class TestExceptionHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc_type in (
            ConfigurationError, QuorumError, StaleEpochError,
            MembershipError, SegmentUnavailableError, ReadPointError,
            TransactionError, LockConflictError, TransactionAbortedError,
            RecoveryError, InstanceStateError, VolumeGeometryError,
            SimulationError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_lock_conflict_is_a_transaction_error(self):
        assert issubclass(LockConflictError, TransactionError)

    def test_stale_epoch_carries_structured_fields(self):
        exc = StaleEpochError("volume", presented=1, current=3)
        assert exc.kind == "volume"
        assert exc.presented == 1
        assert exc.current == 3
        assert "stale volume epoch" in str(exc)

    def test_read_point_error_carries_window(self):
        exc = ReadPointError(5, low=10, high=20)
        assert (exc.read_point, exc.low, exc.high) == (5, 10, 20)

    def test_catch_all_at_the_boundary(self, cluster):
        db = cluster.session()
        t1 = db.begin()
        t2 = db.begin()
        db.put(t1, "k", 1)
        with pytest.raises(ReproError):
            db.put(t2, "k", 2)
        db.rollback(t2)
        db.commit(t1)


class TestSession:
    def test_write_helper_is_one_txn(self, cluster):
        db = cluster.session()
        before = cluster.writer.txns.begun
        db.write("a", 1)
        assert cluster.writer.txns.begun == before + 1
        assert db.get("a") == 1

    def test_write_many_is_one_txn(self, cluster):
        db = cluster.session()
        before = cluster.writer.txns.begun
        db.write_many({"a": 1, "b": 2, "c": 3})
        assert cluster.writer.txns.begun == before + 1
        assert db.scan("a", "c") == [("a", 1), ("b", 2), ("c", 3)]

    def test_remove_helper(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        db.remove("a")
        assert db.get("a") is None

    def test_replica_session_rejects_writes(self, cluster):
        cluster.add_replica("r1")
        rs = cluster.replica_session("r1")
        with pytest.raises(SimulationError):
            rs.begin()
        with pytest.raises(SimulationError):
            rs.write("a", 1)

    def test_drive_detects_stalled_simulation(self):
        """Losing the write quorum makes commit undrivable: the session
        reports a stall instead of hanging."""
        cluster = AuroraCluster.build(seed=95)
        db = cluster.session()
        for name in ("pg0-a", "pg0-b", "pg0-c"):
            cluster.failures.crash_node(name)
        txn = db.begin()
        with pytest.raises(SimulationError, match="quorum|unreachable"):
            db.put(txn, "k", 1)
            db.commit(txn)

    def test_spawn_runs_in_background(self, cluster):
        db = cluster.session()
        process = db.spawn(cluster.writer.get("missing"))
        assert not process.finished
        cluster.run_for(5)
        assert process.finished
        assert process.result() is None

    def test_commit_async_returns_unresolved_future(self, cluster):
        db = cluster.session()
        txn = db.begin()
        db.put(txn, "a", 1)
        future = db.commit_async(txn)
        assert not future.done
        assert db.drive(future) > 0


class TestWriterStorageConnectivity:
    def test_writer_partitioned_from_two_segments_still_commits(self):
        cluster = AuroraCluster.build(seed=96)
        db = cluster.session()
        cluster.network.partition(
            {cluster.writer.name}, {"pg0-e", "pg0-f"}
        )
        db.write("during-partition", 1)  # 4/6 reachable
        assert db.get("during-partition") == 1

    def test_partition_healed_segments_catch_up_by_gossip(self):
        cluster = AuroraCluster.build(seed=97)
        db = cluster.session()
        cluster.network.partition({cluster.writer.name}, {"pg0-f"})
        db.write_many({f"k{i}": i for i in range(8)})
        lagging = cluster.nodes["pg0-f"].segment.scl
        assert lagging < max(cluster.segment_scls(0).values())
        cluster.network.heal_all_partitions()
        cluster.run_for(400)
        scls = set(cluster.segment_scls(0).values())
        assert len(scls) == 1  # converged

    def test_writer_fully_partitioned_from_storage_stalls_cleanly(self):
        cluster = AuroraCluster.build(seed=98)
        db = cluster.session()
        db.write("pre", 0)
        cluster.network.partition(
            {cluster.writer.name},
            {f"pg0-{c}" for c in "abcdef"},
        )
        txn = db.begin()
        db.put(txn, "stuck", 1)
        future = db.commit_async(txn)
        cluster.run_for(300)
        assert not future.done
        cluster.network.heal_all_partitions()
        # The records were dropped at the partition; the driver does not
        # retransmit (writes are fire-and-forget) -- but the record itself
        # reached NO segment, so gossip cannot heal it either.  The commit
        # stays pending; this is the correct conservative outcome and the
        # client never got a false acknowledgement.
        assert db.get("pre") == 0
