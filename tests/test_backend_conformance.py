"""Cross-backend conformance suite: one contract, every storage backend.

The pluggable-backend abstraction (``repro.storage.backend``) is only safe
if every backend honours the same externally observable contract.  This
suite states that contract once -- durability, commit visibility, crash
recovery, truncation, and epoch fencing -- and runs it against each
registered backend via the shared ``backend`` fixture, then closes with a
hypothesis equivalence property: the same workload trace produces the same
committed prefix on every backend.

Backend-specific *failure-edge* tests (e.g. Taurus page-store loss) live in
their own classes at the bottom; everything above is backend-agnostic.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AuroraCluster, ClusterConfig
from repro.db.instance import InstanceState
from repro.storage.node import StorageNodeConfig
from repro.db.session import Session
from repro.errors import CommitUncertainError, InstanceStateError
from repro.storage.backend import BACKENDS, resolve_backend
from repro.storage.segment import SegmentKind

from .conftest import BACKEND_NAMES


def build(backend: str, seed: int = 42, **overrides) -> AuroraCluster:
    config = ClusterConfig(seed=seed, backend=backend, **overrides)
    return AuroraCluster.build(config)


def sync_members(cluster, pg_index: int = 0) -> list[str]:
    """Members on the synchronous write path (all members for Aurora)."""
    targets = cluster.metadata.write_targets_of_pg(pg_index)
    if targets is None:
        return sorted(cluster.metadata.membership(pg_index).members)
    return sorted(targets)


def test_registry_covers_fixture():
    """The conformance fixture exercises every registered backend."""
    assert set(BACKEND_NAMES) == set(BACKENDS)


# ----------------------------------------------------------------------
# Contract 1: durability
# ----------------------------------------------------------------------
class TestDurabilityContract:
    def test_acked_commit_survives_writer_crash(self, backend):
        cluster = build(backend)
        db = Session(cluster.writer)
        for i in range(6):
            db.write(f"k{i}", f"v{i}")
        cluster.crash_writer()
        db = Session(cluster.writer)
        db.drive(cluster.recover_writer())
        for i in range(6):
            assert db.get(f"k{i}") == f"v{i}"

    def test_acked_commit_survives_max_tolerated_kills(self, backend):
        """Crash the backend's advertised worst-case number of sync-path
        segments, then crash-recover the writer: nothing acknowledged may
        be lost."""
        cluster = build(backend)
        db = Session(cluster.writer)
        for i in range(4):
            db.write(f"k{i}", f"v{i}")
        kills = cluster.backend.max_tolerated_kills()
        assert kills >= 1
        for name in sync_members(cluster)[:kills]:
            cluster.failures.crash_node(name)
        cluster.crash_writer()
        db = Session(cluster.writer)
        db.drive(cluster.recover_writer())
        for i in range(4):
            assert db.get(f"k{i}") == f"v{i}"

    def test_commits_proceed_with_tolerated_kills(self, backend):
        cluster = build(backend)
        db = Session(cluster.writer)
        kills = cluster.backend.max_tolerated_kills()
        for name in sync_members(cluster)[:kills]:
            cluster.failures.crash_node(name)
        db.write("alive", "yes")
        assert db.get("alive") == "yes"

    def test_writes_block_past_write_quorum_loss(self, backend):
        """One kill beyond the tolerated count leaves the write quorum
        unreachable: the commit stays pending, and resolves as soon as a
        quorum member returns.  No backend may acknowledge early."""
        cluster = build(backend)
        db = Session(cluster.writer)
        members = sync_members(cluster)
        losses = cluster.backend.replication().write_loss_failures
        for name in members[:losses]:
            cluster.failures.crash_node(name)
        txn = db.begin()
        db.put(txn, "blocked", "w")
        future = db.commit_async(txn)
        cluster.run_for(3_000.0)
        assert not future.done, "acknowledged without a write quorum"
        cluster.failures.restore_node(members[0])
        cluster.run_for(3_000.0)
        assert future.done and future.exception() is None
        assert db.get("blocked") == "w"


# ----------------------------------------------------------------------
# Contract 2: commit visibility
# ----------------------------------------------------------------------
class TestCommitVisibilityContract:
    def test_committed_writes_visible_immediately(self, backend_cluster):
        db = Session(backend_cluster.writer)
        txn = db.begin()
        db.put(txn, "a", "1")
        db.put(txn, "b", "2")
        db.commit(txn)
        assert db.get("a") == "1"
        assert db.get("b") == "2"

    def test_rolled_back_writes_never_visible(self, backend_cluster):
        db = Session(backend_cluster.writer)
        db.write("a", "keep")
        txn = db.begin()
        db.put(txn, "a", "discard")
        db.rollback(txn)
        assert db.get("a") == "keep"

    def test_async_commit_visible_once_acknowledged(self, backend_cluster):
        db = Session(backend_cluster.writer)
        txn = db.begin()
        db.put(txn, "later", "x")
        future = db.commit_async(txn)
        backend_cluster.run_for(2_000.0)
        assert future.done and future.exception() is None
        assert db.get("later") == "x"

    def test_overwrites_read_latest_committed(self, backend_cluster):
        db = Session(backend_cluster.writer)
        for i in range(5):
            db.write("k", f"v{i}")
        assert db.get("k") == "v4"


# ----------------------------------------------------------------------
# Contract 3: crash recovery
# ----------------------------------------------------------------------
class TestCrashRecoveryContract:
    def test_recovery_preserves_committed_prefix(self, backend):
        cluster = build(backend)
        db = Session(cluster.writer)
        expected = {}
        for i in range(8):
            db.write(f"k{i}", f"v{i}")
            expected[f"k{i}"] = f"v{i}"
        for _ in range(2):
            cluster.crash_writer()
            db = Session(cluster.writer)
            db.drive(cluster.recover_writer())
        for key, value in expected.items():
            assert db.get(key) == value

    @pytest.mark.parametrize("grace_ms", [0.0, 0.5, 1.5, 4.0])
    def test_inflight_commit_is_all_or_nothing(self, backend, grace_ms):
        """A multi-key transaction in flight at the crash is either fully
        replayed or fully annulled by recovery -- never half-applied."""
        cluster = build(backend, seed=17)
        db = Session(cluster.writer)
        db.write("base", "b")
        writer = cluster.writer
        txn = writer.begin()
        keys = [f"atomic{i}" for i in range(3)]
        for key in keys:
            db.drive(writer.put(txn, key, f"{key}.v"))
        future = writer.commit(txn)
        cluster.run_for(grace_ms)
        acked = future.done and future.exception() is None
        cluster.crash_writer()
        db = Session(cluster.writer)
        db.drive(cluster.recover_writer())
        got = {key: db.get(key) for key in keys}
        applied = [k for k, v in got.items() if v == f"{k}.v"]
        absent = [k for k, v in got.items() if v is None]
        assert len(applied) + len(absent) == len(keys), got
        assert not (applied and absent), (
            f"half-applied transaction: {got} (grace={grace_ms})"
        )
        if acked:
            assert not absent, f"acknowledged transaction lost: {got}"
        assert db.get("base") == "b"

    def test_recovered_writer_accepts_new_writes(self, backend):
        cluster = build(backend)
        db = Session(cluster.writer)
        db.write("old", "1")
        cluster.crash_writer()
        db = Session(cluster.writer)
        db.drive(cluster.recover_writer())
        db.write("new", "2")
        assert db.get("old") == "1"
        assert db.get("new") == "2"


# ----------------------------------------------------------------------
# Contract 4: truncation (the Figure-4 ragged edge)
# ----------------------------------------------------------------------
class TestTruncationContract:
    def test_unacked_suffix_annulled_then_lsns_reusable(self, backend):
        """Crash with the entire sync path down: the in-flight suffix
        cannot have met quorum, recovery truncates it, and the recovered
        writer allocates fresh LSNs over the annulled range without the
        stale records ever resurfacing."""
        cluster = build(backend, seed=23)
        db = Session(cluster.writer)
        db.write("stable", "s")
        for name in sync_members(cluster):
            cluster.failures.crash_node(name)
        writer = cluster.writer
        txn = writer.begin()
        db.drive(writer.put(txn, "doomed", "d"))
        writer.commit(txn)
        cluster.run_for(50.0)
        cluster.crash_writer()
        for name in sync_members(cluster):
            cluster.failures.restore_node(name)
        db = Session(cluster.writer)
        db.drive(cluster.recover_writer())
        assert db.get("stable") == "s"
        assert db.get("doomed") is None
        db.write("fresh", "f")
        assert db.get("fresh") == "f"
        assert db.get("doomed") is None

    def test_btree_structure_survives_truncation(self, backend):
        cluster = build(backend, seed=29)
        db = Session(cluster.writer)
        for i in range(20):
            db.write(f"key{i:02d}", f"v{i}")
        cluster.crash_writer()
        db = Session(cluster.writer)
        db.drive(cluster.recover_writer())
        leaves = db.drive(cluster.writer.btree.check_structure())
        assert leaves >= 1


# ----------------------------------------------------------------------
# Contract 5: epoch fencing
# ----------------------------------------------------------------------
class TestEpochFencingContract:
    def test_recovery_advances_the_volume_epoch(self, backend):
        cluster = build(backend)
        before = cluster.writer.driver.epochs.volume
        cluster.crash_writer()
        db = Session(cluster.writer)
        db.drive(cluster.recover_writer())
        assert cluster.writer.driver.epochs.volume > before

    def test_foreign_epoch_bump_closes_the_writer(self, backend):
        """Any volume-epoch advance the driver learns from a rejection
        means a successor exists: the writer must fence itself shut."""
        cluster = build(backend)
        writer = cluster.writer
        node = cluster.nodes[sorted(cluster.nodes)[0]]
        ahead = node.epochs.current.bump_volume()
        node.epochs.advance(ahead)
        db = Session(writer)
        with pytest.raises((CommitUncertainError, InstanceStateError)):
            db.write("fence-me", "x")
            db.write("fence-me-2", "x")
        assert writer.state is InstanceState.CLOSED
        assert writer.driver.epochs.volume == ahead.volume


# ----------------------------------------------------------------------
# Cross-backend equivalence: same trace, same committed prefix
# ----------------------------------------------------------------------
EQUIV_KEYS = [f"key{i:02d}" for i in range(8)]


@st.composite
def equivalence_traces(draw):
    """A fault-light workload trace valid on every backend: transactions
    with awaited commits, clock advances, writer crash/recover cycles, and
    crash/restore of slot 0 (within every backend's tolerated-kill count).
    """
    steps = []
    for _ in range(draw(st.integers(min_value=2, max_value=8))):
        kind = draw(
            st.sampled_from(
                ["txn", "txn", "txn", "run", "crash_recover",
                 "kill0", "restore0"]
            )
        )
        if kind == "txn":
            ops = draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(["put", "delete"]),
                        st.sampled_from(EQUIV_KEYS),
                        st.integers(0, 99),
                    ),
                    min_size=1,
                    max_size=3,
                )
            )
            steps.append(("txn", ops))
        elif kind == "run":
            steps.append(("run", draw(st.integers(1, 25))))
        else:
            steps.append((kind,))
    return draw(st.integers(0, 2**16)), steps


def run_trace(backend: str, seed: int, steps) -> dict:
    """Run one trace; returns the committed state as read back."""
    cluster = build(backend, seed=seed)
    db = Session(cluster.writer)
    slot0 = sorted(cluster.metadata.membership(0).members)[0]
    slot0_down = False
    for step in steps:
        if step[0] == "txn":
            txn = db.begin()
            for op, key, value in step[1]:
                if op == "put":
                    db.put(txn, key, value)
                else:
                    db.delete(txn, key)
            db.commit(txn)
        elif step[0] == "run":
            cluster.run_for(float(step[1]))
        elif step[0] == "kill0":
            if not slot0_down:
                cluster.failures.crash_node(slot0)
                slot0_down = True
        elif step[0] == "restore0":
            if slot0_down:
                cluster.failures.restore_node(slot0)
                slot0_down = False
        else:
            cluster.crash_writer()
            db = Session(cluster.writer)
            db.drive(cluster.recover_writer())
    cluster.crash_writer()
    db = Session(cluster.writer)
    db.drive(cluster.recover_writer())
    return {key: db.get(key) for key in EQUIV_KEYS}


class TestCrossBackendEquivalence:
    @given(equivalence_traces())
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_same_trace_same_committed_prefix(self, trace):
        """Every acknowledged commit is in the committed prefix on every
        backend, and the prefixes agree key-for-key: quorum shape and read
        routing are implementation detail, not semantics."""
        seed, steps = trace
        states = {
            name: run_trace(name, seed, steps) for name in BACKEND_NAMES
        }
        reference = states[BACKEND_NAMES[0]]
        for name, state in states.items():
            assert state == reference, (
                f"backend {name} diverged: {state} != {reference} "
                f"(seed={seed}, steps={steps})"
            )

    def test_trace_replay_is_deterministic_per_backend(self, backend):
        steps = [
            ("txn", [("put", "key00", 1), ("put", "key01", 2)]),
            ("kill0",),
            ("run", 10),
            ("txn", [("delete", "key00", 0), ("put", "key02", 3)]),
            ("crash_recover",),
            ("restore0",),
            ("txn", [("put", "key03", 4)]),
        ]
        assert run_trace(backend, 7, steps) == run_trace(backend, 7, steps)


# ----------------------------------------------------------------------
# Taurus failure edges (backend-specific, not part of the shared contract)
# ----------------------------------------------------------------------
class TestTaurusFailureEdges:
    def _taurus(self, seed: int = 5) -> AuroraCluster:
        return build("taurus", seed=seed)

    def test_layout_is_three_logs_two_pages(self):
        cluster = self._taurus()
        kinds = [p.kind for p in cluster.metadata.segments_of_pg(0)]
        assert kinds.count(SegmentKind.LOG) == 3
        assert kinds.count(SegmentKind.FULL) == 2

    def test_page_stores_hydrate_from_log_via_gossip(self):
        cluster = self._taurus()
        db = Session(cluster.writer)
        db.write("k", "v")
        pages = [
            p.segment_id
            for p in cluster.metadata.segments_of_pg(0)
            if p.kind is SegmentKind.FULL
        ]
        cluster.run_for(300.0)
        scls = cluster.segment_scls(0)
        for name in pages:
            assert scls[name] == cluster.writer.vcl, scls

    def test_one_page_store_down_reads_still_served(self):
        cluster = self._taurus()
        db = Session(cluster.writer)
        db.write("k", "v")
        cluster.run_for(200.0)
        pages = [
            p.segment_id
            for p in cluster.metadata.segments_of_pg(0)
            if p.kind is SegmentKind.FULL
        ]
        cluster.failures.crash_node(pages[0])
        assert db.get("k") == "v"

    def test_both_page_stores_down_reads_fall_back_to_log(self):
        """With no page store reachable, reads are forced back to the log
        tail: a log store materializes the block on demand."""
        cluster = self._taurus()
        db = Session(cluster.writer)
        for i in range(5):
            db.write(f"k{i}", f"v{i}")
        cluster.run_for(200.0)
        for placement in cluster.metadata.segments_of_pg(0):
            if placement.kind is SegmentKind.FULL:
                cluster.failures.crash_node(placement.segment_id)
        for i in range(5):
            assert db.get(f"k{i}") == f"v{i}"
        # And the log-served state survives a crash-recover cycle.
        cluster.crash_writer()
        db = Session(cluster.writer)
        db.drive(cluster.recover_writer())
        for i in range(5):
            assert db.get(f"k{i}") == f"v{i}"

    def test_log_store_loss_during_page_store_hydration(self):
        """Replace a page store while a log store is down: the baseline
        must come from the surviving copies, writes keep committing on the
        2/3 log majority, and reads stay correct throughout."""
        cluster = self._taurus(seed=15)
        db = Session(cluster.writer)
        for i in range(5):
            db.write(f"k{i}", f"v{i}")
        cluster.run_for(200.0)
        logs = [
            p.segment_id
            for p in cluster.metadata.segments_of_pg(0)
            if p.kind is SegmentKind.LOG
        ]
        pages = [
            p.segment_id
            for p in cluster.metadata.segments_of_pg(0)
            if p.kind is SegmentKind.FULL
        ]
        cluster.failures.crash_node(logs[1])
        db.drive(cluster.replace_segment(0, pages[1]))
        members = cluster.metadata.membership(0).members
        assert pages[1] not in members
        assert any(m.startswith(pages[1]) for m in members)
        for i in range(5):
            assert db.get(f"k{i}") == f"v{i}"
        db.write("after", "yes")
        assert db.get("after") == "yes"

    def test_log_store_replacement_keeps_quorum_safe(self):
        """Replacing a log store runs the epoch-fenced membership dance
        against the 2/3 quorum and must leave data intact."""
        cluster = self._taurus(seed=31)
        db = Session(cluster.writer)
        for i in range(4):
            db.write(f"k{i}", f"v{i}")
        logs = [
            p.segment_id
            for p in cluster.metadata.segments_of_pg(0)
            if p.kind is SegmentKind.LOG
        ]
        cluster.failures.crash_node(logs[0])
        db.drive(cluster.replace_segment(0, logs[0]))
        for i in range(4):
            assert db.get(f"k{i}") == f"v{i}"
        db.write("post-repair", "ok")
        cluster.crash_writer()
        db = Session(cluster.writer)
        db.drive(cluster.recover_writer())
        assert db.get("post-repair") == "ok"

    def test_write_amplification_is_three_not_six(self):
        """The headline Taurus economy: each redo batch fans out to the
        three log stores only; page stores learn via gossip."""
        replication = resolve_backend("taurus").replication()
        assert replication.sync_write_copies == 3
        aurora = resolve_backend("aurora").replication()
        assert aurora.sync_write_copies == 6


# ----------------------------------------------------------------------
# Contract 7: integrity under silent corruption
class TestIntegrityContract:
    """Every backend must detect injected silent corruption, never serve
    it to a reader, and repair it from surviving copies (see DESIGN.md
    section 12).  The fleet runs with read-time verification, record
    scrub, quorum-vote repair, and the integrity ledger armed -- the same
    machinery the `--integrity` audit gates on."""

    def _armed(self, backend: str) -> AuroraCluster:
        cluster = build(
            backend,
            seed=7,
            node=StorageNodeConfig(scrub_interval=400.0),
        )
        cluster.failures.attach_storage(cluster.nodes.values())
        cluster.failures.start_integrity_reconcile()
        return cluster

    def _inject_one(self, cluster, db) -> None:
        """Land one corruption on a fresh mid-chain victim (a pinned read
        view keeps the GC floor below it; see tests/test_integrity.py)."""
        injectors = (
            cluster.failures.bit_rot_any,
            cluster.failures.lost_write_any,
            cluster.failures.misdirected_write_any,
        )
        for attempt in range(20):
            view = cluster.writer.open_view()
            try:
                for i in range(4):
                    db.write(f"victim{attempt}.{i}", f"v{attempt}.{i}")
                for i in range(4):
                    db.write(f"victim{attempt}.{i}", f"w{attempt}.{i}")
                cluster.run_for(30.0)
                corruption = injectors[attempt % len(injectors)]()
            finally:
                cluster.writer.close_view(view)
            if corruption is not None:
                return
            cluster.run_for(120.0)
        raise AssertionError("injector found no eligible victim")

    def test_corruption_repaired_and_never_served(self, backend):
        cluster = self._armed(backend)
        db = Session(cluster.writer)
        expected = {}
        for i in range(10):
            db.write(f"k{i}", f"v{i}")
            expected[f"k{i}"] = f"v{i}"
        integrity = cluster.failures.integrity
        self._inject_one(cluster, db)
        assert integrity.open_count() >= 1
        for _ in range(60):
            if integrity.open_count() == 0:
                break
            cluster.run_for(500.0)
        assert integrity.open_count() == 0, integrity.open_records()
        assert integrity.corrupt_reads_served == 0
        for key, value in expected.items():
            assert db.get(key) == value
