"""Deeper fault-path tests for the consensus baselines."""

import random

import pytest

from repro.baselines.paxos import PaxosCluster, PaxosLeader
from repro.baselines.raft import RaftCluster, Role
from repro.sim.events import EventLoop
from repro.sim.network import Network


def make_env(seed):
    loop = EventLoop()
    rng = random.Random(seed)
    return loop, Network(loop, rng), rng


class TestRaftLogRepair:
    def test_lagging_follower_catches_up_via_backoff(self):
        """A follower that missed entries is repaired through the
        nextIndex backoff in AppendEntries."""
        loop, network, rng = make_env(21)
        raft = RaftCluster(loop, network, rng, node_count=5)
        leader = raft.elect_first_leader()
        laggard = next(n for n in raft.nodes if n is not leader)
        network.fail_node(laggard.name)
        futures = [leader.propose(f"v{i}") for i in range(8)]
        loop.run(until=loop.now + 1_000)
        assert all(f.done for f in futures)
        assert len(laggard.log) == 0
        network.restore_node(laggard.name)
        loop.run(until=loop.now + 2_000)  # heartbeats repair the log
        assert len(laggard.log) == len(leader.log)
        assert laggard.commit_index >= 7

    def test_old_leader_returning_steps_down(self):
        loop, network, rng = make_env(22)
        raft = RaftCluster(loop, network, rng, node_count=5)
        old_leader = raft.elect_first_leader()
        network.fail_node(old_leader.name)
        # Wait for a new leader at a higher term.
        new_leader = None
        deadline = loop.now + 30_000
        while new_leader is None and loop.now < deadline:
            loop.run(until=loop.now + 50)
            live = [
                n for n in raft.nodes
                if n.role is Role.LEADER and network.is_up(n.name)
            ]
            new_leader = live[0] if live else None
        assert new_leader is not None
        assert new_leader.term > old_leader.term
        network.restore_node(old_leader.name)
        loop.run(until=loop.now + 2_000)
        assert old_leader.role is Role.FOLLOWER
        assert old_leader.term >= new_leader.term

    def test_committed_entries_survive_leader_change(self):
        loop, network, rng = make_env(23)
        raft = RaftCluster(loop, network, rng, node_count=5)
        leader = raft.elect_first_leader()
        futures = [leader.propose(f"durable{i}") for i in range(5)]
        loop.run(until=loop.now + 1_000)
        assert all(f.done for f in futures)
        network.fail_node(leader.name)
        new_leader = None
        while new_leader is None:
            loop.run(until=loop.now + 50)
            live = [
                n for n in raft.nodes
                if n.role is Role.LEADER and network.is_up(n.name)
            ]
            new_leader = live[0] if live else None
        values = [entry.value for entry in new_leader.log[:5]]
        assert values == [f"durable{i}" for i in range(5)]


class TestPaxosBallots:
    def test_higher_ballot_preempts_and_nacks(self):
        loop, network, rng = make_env(24)
        paxos = PaxosCluster(loop, network, rng, acceptor_count=5)
        paxos.elect()
        loop.run_until_idle()
        assert paxos.leader.elected
        # A rival leader with a higher ballot takes over.
        rival = PaxosLeader(
            "paxos-rival",
            [a.name for a in paxos.acceptors],
            rng,
            ballot=paxos.leader.ballot + 1,
        )
        network.attach(rival, az="az2")
        election = rival.elect()
        loop.run_until_idle()
        assert election.result() is True
        # The old leader's next accept gets NACKed and it steps down.
        paxos.leader.propose("stale")
        loop.run_until_idle()
        assert not paxos.leader.elected

    def test_promise_reports_prior_acceptances(self):
        """Phase-1 promises carry previously accepted values (the safety
        core of Paxos: a new leader must adopt them)."""
        loop, network, rng = make_env(25)
        paxos = PaxosCluster(loop, network, rng, acceptor_count=3)
        paxos.elect()
        loop.run_until_idle()
        future = paxos.propose("chosen-before-takeover")
        loop.run_until_idle()
        assert future.done
        rival = PaxosLeader(
            "paxos-rival",
            [a.name for a in paxos.acceptors],
            rng,
            ballot=paxos.leader.ballot + 1,
        )
        network.attach(rival, az="az3")
        promises = []
        original = rival._on_promise

        def spy(promise):
            promises.append(promise)
            original(promise)

        rival._on_promise = spy
        rival.elect()
        loop.run_until_idle()
        assert any(
            any(value == "chosen-before-takeover" for _s, _b, value in p.accepted)
            for p in promises
        )


class TestFullTailMultiPG:
    def test_multi_pg_full_tail_cluster_end_to_end(self):
        from repro import AuroraCluster, ClusterConfig
        from repro.db.session import Session

        config = ClusterConfig(
            seed=26, pg_count=2, blocks_per_pg=16, full_tail=True
        )
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        for i in range(140):
            db.write(f"key{i:03d}", i)
        # Reads route only to full segments in BOTH PGs.
        cluster.run_for(30)
        for i in range(0, 140, 9):
            assert db.get(f"key{i:03d}") == i
        cluster.crash_writer()
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)
        assert db.get("key123") == 123

    def test_replica_reads_on_full_tail_cluster(self):
        from repro import AuroraCluster, ClusterConfig

        config = ClusterConfig(seed=27, full_tail=True)
        config.replica.cache_capacity = 8  # force storage reads
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        for i in range(60):
            db.write(f"key{i:03d}", i)
        cluster.run_for(30)
        cluster.add_replica("r1")
        rs = cluster.replica_session("r1")
        for i in range(0, 60, 7):
            assert rs.get(f"key{i:03d}") == i
        # Tail segments answered no block reads.
        from repro.storage.segment import SegmentKind

        for node in cluster.nodes.values():
            if node.segment.kind is SegmentKind.TAIL:
                assert node.counters["reads_answered"] == 0
