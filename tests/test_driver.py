"""Integration tests for the storage driver: boxcar modes, acknowledgement
processing, hedged reads, and quorum RPC."""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.db.driver import BoxcarMode


def build(boxcar_mode=BoxcarMode.AURORA, seed=31, **driver_overrides):
    config = ClusterConfig(seed=seed)
    config.instance.driver.boxcar_mode = boxcar_mode
    for key, value in driver_overrides.items():
        setattr(config.instance.driver, key, value)
    return AuroraCluster.build(config)


class TestBoxcarModes:
    def test_aurora_mode_batches_without_waiting(self):
        cluster = build(BoxcarMode.AURORA, submit_delay=0.05)
        db = cluster.session()
        txn = db.begin()
        for i in range(8):
            db.put(txn, f"k{i}", i)
        db.commit(txn)
        stats = cluster.writer.driver.stats
        # Every record waited at most the submit delay.
        assert stats.boxcar_delays
        assert max(stats.boxcar_delays) <= 0.05 + 1e-9

    def test_timeout_mode_waits_under_low_load(self):
        cluster = build(
            BoxcarMode.TIMEOUT, boxcar_timeout=4.0, boxcar_max_records=32
        )
        db = cluster.session()
        db.write("lonely", 1)  # single record: must wait out the timer
        stats = cluster.writer.driver.stats
        assert max(stats.boxcar_delays) >= 4.0

    def test_timeout_mode_flushes_when_full(self):
        cluster = build(
            BoxcarMode.TIMEOUT, boxcar_timeout=50.0, boxcar_max_records=4
        )
        db = cluster.session()
        txn = db.begin()
        for i in range(8):  # two full boxcars, no timer needed
            db.put(txn, f"k{i}", i)
        db.commit(txn)
        stats = cluster.writer.driver.stats
        # The data records flush on the size trigger; only the lone commit
        # record is stuck behind the boxcar timer -- exactly the
        # low-load jitter the paper criticises about timeout boxcars.
        fast = [d for d in stats.boxcar_delays if d < 50.0]
        assert len(fast) >= 8
        assert max(stats.boxcar_delays) >= 50.0

    def test_immediate_mode_never_delays(self):
        cluster = build(BoxcarMode.IMMEDIATE)
        db = cluster.session()
        txn = db.begin()
        for i in range(5):
            db.put(txn, f"k{i}", i)
        db.commit(txn)
        stats = cluster.writer.driver.stats
        assert all(d == 0.0 for d in stats.boxcar_delays)

    def test_aurora_batches_more_than_immediate(self):
        """Same workload, fewer network operations under AURORA batching."""
        def batches_for(mode):
            cluster = build(mode, seed=77)
            db = cluster.session()
            txn = db.begin()
            for i in range(20):
                db.put(txn, f"k{i}", i)
            db.commit(txn)
            return cluster.writer.driver.stats.batches_sent

        assert batches_for(BoxcarMode.AURORA) < batches_for(
            BoxcarMode.IMMEDIATE
        )


class TestAckProcessing:
    def test_pgcl_vcl_advance_from_acks(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        driver = cluster.writer.driver
        assert driver.pg_trackers[0].pgcl >= 1
        assert driver.vcl >= 1
        assert driver.vdl >= 1
        assert driver.stats.acks_received >= 4

    def test_commit_not_acked_without_quorum(self):
        """Kill three segments: 4/6 is unreachable, commits hang forever."""
        cluster = AuroraCluster.build(ClusterConfig(seed=41))
        for name in ("pg0-d", "pg0-e", "pg0-f"):
            cluster.failures.crash_node(name)
        db = cluster.session()
        txn = db.begin()
        db.put(txn, "a", 1)
        future = db.commit_async(txn)
        cluster.run_for(500)
        assert not future.done  # correctly refuses to ack below quorum

    def test_commit_resumes_when_quorum_restored(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=42))
        for name in ("pg0-d", "pg0-e", "pg0-f"):
            cluster.failures.crash_node(name)
        db = cluster.session()
        txn = db.begin()
        db.put(txn, "a", 1)
        future = db.commit_async(txn)
        cluster.run_for(100)
        assert not future.done
        cluster.failures.restore_node("pg0-d")
        cluster.run_for(300)  # gossip refills pg0-d, acks flow
        assert future.done


class TestHedgedReads:
    def _cold_cache_cluster(self, **driver_overrides):
        config = ClusterConfig(seed=88)
        config.instance.cache_capacity = 8
        for key, value in driver_overrides.items():
            setattr(config.instance.driver, key, value)
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        for i in range(200):
            db.write(f"key{i:03d}", i)
        cluster.run_for(50)
        return cluster, db

    def test_reads_are_single_io_not_quorum(self):
        cluster, db = self._cold_cache_cluster()
        stats = cluster.writer.driver.stats
        issued_before = stats.reads_issued
        completed_before = stats.reads_completed
        for i in range(0, 200, 5):
            assert db.get(f"key{i:03d}") == i
        issued = stats.reads_issued - issued_before
        completed = stats.reads_completed - completed_before
        assert completed > 0
        # Far fewer I/Os than a 3x read quorum would need.
        assert issued < completed * 1.5

    def test_hedge_caps_latency_with_a_slow_segment(self):
        cluster, db = self._cold_cache_cluster(
            hedge_multiplier=3.0, hedge_sweep_interval=0.5
        )
        # Make the currently-fastest segments slow mid-run.
        cluster.failures.slow_node("pg0-a", 100.0)
        cluster.failures.slow_node("pg0-b", 100.0)
        for i in range(0, 200, 3):
            assert db.get(f"key{i:03d}") == i
        assert cluster.writer.driver.stats.hedges_issued > 0

    def test_read_from_dead_segment_recovers_via_hedge(self):
        cluster, db = self._cold_cache_cluster(hedge_sweep_interval=0.5)
        # Warm the latency tracker so some segment is "fastest", then kill
        # whichever it is: the hedge must rescue outstanding reads.
        victim = cluster.writer.driver.latency_tracker.ranked(
            [f"pg0-{c}" for c in "abcdef"]
        )[0]
        cluster.failures.crash_node(victim)
        for i in range(0, 200, 7):
            assert db.get(f"key{i:03d}") == i

    def test_exploration_refreshes_latency_stats(self):
        cluster, db = self._cold_cache_cluster(explore_probability=0.5)
        for i in range(0, 200, 2):
            db.get(f"key{i:03d}")
        assert cluster.writer.driver.stats.explores_issued > 0


class TestQuorumRPC:
    def test_scan_collects_beyond_minimal_quorum(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        replies = db.drive(cluster.writer.driver.scan_pg(0))
        # All six answered (grace period collects everyone reachable).
        assert len(replies) == 6

    def test_scan_succeeds_with_three_nodes_down(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        for name in ("pg0-a", "pg0-b", "pg0-c"):
            cluster.failures.crash_node(name)
        replies = db.drive(cluster.writer.driver.scan_pg(0))
        assert len(replies) == 3  # exactly the read quorum

    def test_scan_fails_below_read_quorum(self, cluster):
        from repro.errors import SegmentUnavailableError

        db = cluster.session()
        db.write("a", 1)
        for name in ("pg0-a", "pg0-b", "pg0-c", "pg0-d"):
            cluster.failures.crash_node(name)
        with pytest.raises(SegmentUnavailableError):
            db.drive(cluster.writer.driver.scan_pg(0))
