"""Integration tests for the PGMRPL contract (section 3.4).

"Older versions are not garbage collected until we can assure neither the
writer instance or any replica might need to access it. ...  A storage node
may only advance its garbage collection point once PGMRPL has advanced for
all instances that have opened the volume."

These tests hold read views open while churning versions and garbage
collection, and verify that every anchored snapshot stays readable --
including through storage fetches after cache eviction.
"""

import pytest

from repro import AuroraCluster, ClusterConfig


def churny_cluster(seed, cache_capacity=None):
    config = ClusterConfig(seed=seed)
    config.node.backup_interval = 30.0
    config.node.gc_interval = 15.0
    config.instance.gc_floor_interval = 10.0
    if cache_capacity:
        config.instance.cache_capacity = cache_capacity
    return AuroraCluster.build(config)


class TestReadViewsPinGC:
    def test_open_view_sees_its_snapshot_despite_churn(self):
        cluster = churny_cluster(111)
        db = cluster.session()
        db.write("hot", "v0")
        reader = db.begin()
        assert db.get("hot", txn=reader) == "v0"
        for i in range(1, 15):
            db.write("hot", f"v{i}")
        cluster.run_for(500)  # many GC/backup cycles
        # The anchored snapshot still reads its version.
        assert db.get("hot", txn=reader) == "v0"
        db.commit(reader)
        assert db.get("hot") == "v14"

    def test_gc_floor_stalls_at_min_active_view(self):
        cluster = churny_cluster(112)
        db = cluster.session()
        db.write("a", 1)
        reader = db.begin()
        db.get("a", txn=reader)  # opens the txn's read view
        pinned_at = cluster.writer.current_pgmrpl()
        for i in range(10):
            db.write("a", i)
        cluster.run_for(300)
        # The advertised floor cannot pass the open view's anchor.
        assert cluster.writer.current_pgmrpl() == pinned_at
        for node in cluster.nodes.values():
            assert node.segment.gc_floor <= pinned_at
        db.commit(reader)
        db.write("nudge", 1)
        cluster.run_for(300)
        assert cluster.writer.current_pgmrpl() > pinned_at

    def test_version_purge_respects_open_views(self):
        cluster = churny_cluster(113)
        db = cluster.session()
        db.write("k", "old")
        reader = db.begin()
        assert db.get("k", txn=reader) == "old"
        for i in range(5):
            db.write("k", f"new{i}")
        purged = db.drive(cluster.writer.purge_old_versions())
        # The open view's version must have survived the purge.
        assert db.get("k", txn=reader) == "old"
        db.commit(reader)
        db.drive(cluster.writer.purge_old_versions())
        assert db.get("k") == "new4"
        assert purged >= 0

    def test_replica_views_pin_gc_fleet_wide(self):
        cluster = churny_cluster(114)
        db = cluster.session()
        db.write("shared", "r0")
        cluster.run_for(50)
        replica = cluster.add_replica("r1")
        cluster.run_for(50)
        view = replica.open_view()  # a long-running replica read
        pinned_at = view.read_point
        for i in range(12):
            db.write("shared", f"r{i}")
        cluster.run_for(400)
        # Storage GC floors stalled at (or below) the replica's anchor.
        for node in cluster.nodes.values():
            assert node.segment.gc_floor <= pinned_at
        replica.close_view(view)
        db.write("nudge", 1)
        cluster.run_for(400)
        floors = [n.segment.gc_floor for n in cluster.nodes.values()]
        assert max(floors) > 0

    def test_storage_rejects_reads_below_its_floor(self):
        """Once no view needs a point, storage may refuse it -- the
        [PGMRPL, SCL] window of section 3.4."""
        from repro.core.epochs import EpochStamp
        from repro.storage.messages import (
            ReadBlockRequest,
            RequestRejected,
        )

        cluster = churny_cluster(115)
        db = cluster.session()
        for i in range(20):
            db.write(f"k{i}", i)
        cluster.run_for(600)  # floors advance with no open views
        node = cluster.nodes["pg0-a"]
        assert node.segment.gc_floor > 0
        future = cluster.network.rpc(
            cluster.writer.name,
            "pg0-a",
            ReadBlockRequest(
                pg_index=0,
                block=5,
                read_point=max(0, node.segment.gc_floor - 1),
                epochs=EpochStamp(),
            ),
        )
        cluster.run_for(10)
        assert isinstance(future.result(), RequestRejected)


class TestSnapshotsAcrossEviction:
    def test_old_snapshot_readable_after_cache_eviction(self):
        """The full §3.1+§3.4 loop: a view's block version survives both
        cache eviction (WAL-invariant discard) AND storage GC, because the
        PGMRPL held storage back."""
        cluster = churny_cluster(116, cache_capacity=8)
        db = cluster.session()
        for i in range(30):
            db.write(f"key{i:02d}", f"gen0-{i}")
        cluster.run_for(100)
        reader = db.begin()
        assert db.get("key05", txn=reader) == "gen0-5"  # anchor the view
        for i in range(30):
            db.write(f"key{i:02d}", f"gen1-{i}")
        cluster.run_for(300)  # churn: eviction + GC
        # The cold read below must fetch from storage at the old anchor.
        assert db.get("key17", txn=reader) == "gen0-17"
        db.commit(reader)
        assert db.get("key17") == "gen1-17"
