"""Unit tests for log records and redo payloads."""

import pytest

from repro.core.records import (
    NO_BLOCK,
    BlockDelete,
    BlockPut,
    BlockReplace,
    ChainDigest,
    CommitPayload,
    ControlPayload,
    LogRecord,
    RecordBatch,
    RecordKind,
)


def make_record(lsn=5, **overrides):
    defaults = dict(
        lsn=lsn,
        prev_volume_lsn=lsn - 1,
        prev_pg_lsn=lsn - 2,
        prev_block_lsn=0,
        block=7,
        pg_index=0,
        kind=RecordKind.DATA,
        payload=BlockPut(entries=(("k", "v"),)),
    )
    defaults.update(overrides)
    return LogRecord(**defaults)


class TestPayloads:
    def test_block_put_overwrites_and_preserves(self):
        payload = BlockPut(entries=(("a", 1), ("b", 2)))
        image = payload.apply({"a": 0, "c": 3})
        assert image == {"a": 1, "b": 2, "c": 3}

    def test_block_put_is_pure(self):
        original = {"a": 0}
        BlockPut(entries=(("a", 1),)).apply(original)
        assert original == {"a": 0}

    def test_block_delete_ignores_missing(self):
        payload = BlockDelete(keys=("a", "ghost"))
        assert payload.apply({"a": 1, "b": 2}) == {"b": 2}

    def test_block_replace_discards_everything(self):
        payload = BlockReplace.of({"x": 1})
        assert payload.apply({"old": "gone"}) == {"x": 1}

    def test_block_replace_handles_tuple_keys(self):
        payload = BlockReplace.of({("k", 5): "v", "type": "leaf"})
        assert payload.apply({}) == {("k", 5): "v", "type": "leaf"}

    def test_commit_payload_materializes_txn_table_entry(self):
        payload = CommitPayload(txn_id=9, scn=104)
        assert payload.apply({3: 50}) == {3: 50, 9: 104}

    def test_control_payload_is_identity(self):
        assert ControlPayload("note").apply({"a": 1}) == {"a": 1}

    def test_idempotence_of_all_payloads(self):
        """Applying a payload twice equals applying it once -- required for
        'idempotent operations using local state' (section 2.3)."""
        payloads = [
            BlockPut(entries=(("a", 1),)),
            BlockDelete(keys=("b",)),
            BlockReplace.of({"c": 3}),
            CommitPayload(txn_id=1, scn=10),
        ]
        base = {"a": 0, "b": 2}
        for payload in payloads:
            once = payload.apply(base)
            twice = payload.apply(once)
            assert once == twice


class TestLogRecord:
    def test_chains_must_precede_lsn(self):
        with pytest.raises(ValueError):
            make_record(lsn=5, prev_volume_lsn=5)
        with pytest.raises(ValueError):
            make_record(lsn=5, prev_pg_lsn=6)
        with pytest.raises(ValueError):
            make_record(lsn=5, prev_block_lsn=9)

    def test_lsn_must_be_positive(self):
        with pytest.raises(ValueError):
            make_record(lsn=0, prev_volume_lsn=-1, prev_pg_lsn=-1,
                        prev_block_lsn=-1)

    def test_scn_only_on_commit_records(self):
        commit = make_record(
            kind=RecordKind.COMMIT,
            payload=CommitPayload(txn_id=1, scn=5),
            block=1,
        )
        assert commit.scn == 5
        with pytest.raises(ValueError):
            _ = make_record().scn

    def test_records_are_frozen(self):
        record = make_record()
        with pytest.raises(AttributeError):
            record.lsn = 99

    def test_no_block_constant(self):
        record = make_record(block=NO_BLOCK, kind=RecordKind.CONTROL,
                             payload=ControlPayload())
        assert record.block == NO_BLOCK


class TestChainDigest:
    def test_of_extracts_recovery_fields(self):
        record = make_record(lsn=10, prev_volume_lsn=8, mtr_end=False)
        digest = ChainDigest.of(record)
        assert digest.lsn == 10
        assert digest.prev_volume_lsn == 8
        assert digest.pg_index == 0
        assert digest.mtr_end is False


class TestRecordBatch:
    def test_accumulates_records(self):
        batch = RecordBatch(pg_index=0)
        batch.add(make_record(lsn=5))
        batch.add(make_record(lsn=6, prev_volume_lsn=5, prev_pg_lsn=4))
        assert len(batch) == 2
