"""Property tests for the multi-writer extension.

The headline invariant is conservation: a workload of random transfers
between accounts scattered across partitions, interleaved with random
participant crashes and recoveries, must never create or destroy money --
every transfer is atomic across partitions or not visible at all, and
acknowledged transfers survive every crash.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.multiwriter import MultiWriterCluster

ACCOUNTS = [f"acct{i:02d}" for i in range(8)]
INITIAL = 100


def setup_bank(seed, partitions=3):
    mw = MultiWriterCluster(partition_count=partitions, seed=seed)
    session = mw.session()
    for account in ACCOUNTS:
        session.write(account, INITIAL)
    return mw, session


def total_balance(session):
    return sum(session.get(account) or 0 for account in ACCOUNTS)


def catch_up_all(mw, session):
    for applier in mw.appliers:
        session.drive(applier.ensure_applied(mw.journal.durable_gsn))


@st.composite
def transfer_scripts(draw):
    steps = []
    for _ in range(draw(st.integers(2, 10))):
        kind = draw(st.sampled_from(["transfer", "transfer", "crash"]))
        if kind == "transfer":
            src = draw(st.sampled_from(ACCOUNTS))
            dst = draw(st.sampled_from(ACCOUNTS))
            amount = draw(st.integers(1, 30))
            steps.append(("transfer", src, dst, amount))
        else:
            steps.append(("crash", draw(st.integers(0, 2))))
    return draw(st.integers(0, 10_000)), steps


class TestConservation:
    @given(transfer_scripts())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_money_is_conserved_under_crashes(self, script):
        seed, steps = script
        mw, session = setup_bank(seed)
        expected_total = len(ACCOUNTS) * INITIAL
        crashed: set[int] = set()
        for step in steps:
            if step[0] == "transfer":
                _tag, src, dst, amount = step
                involved = {mw.partition_of(src), mw.partition_of(dst)}
                if involved & crashed:
                    continue  # that owner is down; skip the transfer
                txn = session.begin()
                src_balance = session.get(src, txn=txn)
                dst_balance = session.get(dst, txn=txn)
                if src == dst:
                    continue
                session.put(txn, src, src_balance - amount)
                session.put(txn, dst, dst_balance + amount)
                session.commit(txn)
            else:
                index = step[1] % mw.partition_count
                if index not in crashed and len(crashed) == 0:
                    mw.crash_partition(index)
                    crashed.add(index)
                    session.drive(mw.recover_partition(index))
                    crashed.discard(index)
        catch_up_all(mw, session)
        assert total_balance(session) == expected_total

    def test_transfer_is_atomic_across_partitions(self):
        mw, session = setup_bank(777)
        # Pick two accounts on different partitions.
        src = ACCOUNTS[0]
        dst = next(
            a for a in ACCOUNTS
            if mw.partition_of(a) != mw.partition_of(src)
        )
        txn = session.begin()
        session.put(txn, src, INITIAL - 40)
        session.put(txn, dst, INITIAL + 40)
        session.commit(txn)
        assert session.get(src) == 60
        assert session.get(dst) == 140
        # Crash BOTH participants; the transfer must fully survive.
        for index in {mw.partition_of(src), mw.partition_of(dst)}:
            mw.crash_partition(index)
            session.drive(mw.recover_partition(index))
        assert session.get(src) == 60
        assert session.get(dst) == 140

    def test_unsequenced_transfer_vanishes_entirely(self):
        """A cross transaction that never reached the journal is no
        transaction at all -- no partial state anywhere."""
        mw, session = setup_bank(778)
        src, dst = ACCOUNTS[0], ACCOUNTS[1]
        txn = session.begin()
        session.put(txn, src, 0)
        session.put(txn, dst, 999)
        session.rollback(txn)  # staged writes discarded client-side
        assert session.get(src) == INITIAL
        assert session.get(dst) == INITIAL
        assert total_balance(session) == len(ACCOUNTS) * INITIAL
