"""Tests for the administrative flows: heat-management migration,
quorum-model changes, and point-in-time restore."""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session
from repro.errors import ConfigurationError


class TestHeatManagementMigration:
    def test_healthy_segment_migrates_without_downtime(self, cluster):
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(15)})
        source_node = cluster.nodes["pg0-b"]
        process = cluster.migrate_segment(0, "pg0-b")
        # The incumbent keeps serving during the migration.
        assert cluster.network.is_up("pg0-b")
        db.write("during-migration", 1)
        candidate = db.drive(process)
        final = cluster.metadata.membership(0)
        assert candidate in final.members
        assert "pg0-b" not in final.members
        assert not cluster.network.is_up("pg0-b")  # decommissioned after
        for i in range(15):
            assert db.get(f"k{i}") == i
        assert db.get("during-migration") == 1
        # No durable state was discarded before the repair completed.
        assert source_node.segment.hot_log_size >= 0

    def test_migrated_candidate_carries_full_history(self, cluster):
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(10)})
        candidate = db.drive(cluster.migrate_segment(0, "pg0-c"))
        tracker = cluster.writer.driver.pg_trackers[0]
        assert cluster.nodes[candidate].segment.scl >= tracker.pgcl

    def test_serial_migrations_roll_the_whole_fleet(self, cluster):
        """The planned-software-upgrade pattern: replace all six members
        one at a time under live traffic."""
        db = cluster.session()
        db.write("seed", 0)
        for letter in "abc":  # three is plenty for the pattern
            db.drive(cluster.migrate_segment(0, f"pg0-{letter}"))
            db.write(f"after-{letter}", 1)
        members = cluster.metadata.membership(0).members
        assert all(
            f"pg0-{letter}" not in members for letter in "abc"
        )
        assert db.get("seed") == 0


class TestQuorumModelChange:
    def test_degraded_3_of_4_survives_az_plus_one(self, cluster):
        """'moving from a 4/6 write quorum to 3/4 to handle the extended
        loss of an AZ'."""
        db = cluster.session()
        db.write("pre", 0)
        cluster.failures.crash_az("az3")
        db.write("az-down", 1)  # 4/6 still works with 4 up
        config = cluster.adopt_degraded_quorum(0, "az3")
        assert config.write_satisfied(
            set(list(config.members)[:3])
        )
        # One MORE failure: under 4/6 this would stall; under 3/4 it works.
        cluster.failures.crash_node("pg0-a")
        db.write("az-plus-one", 2)
        assert db.get("az-plus-one") == 2

    def test_geometry_epoch_rides_the_change(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        epoch_before = cluster.writer.driver.epochs.geometry
        cluster.failures.crash_az("az2")
        cluster.adopt_degraded_quorum(0, "az2")
        assert cluster.writer.driver.epochs.geometry == epoch_before + 1
        cluster.failures.restore_az("az2")
        cluster.restore_standard_quorum(0)
        assert cluster.writer.driver.epochs.geometry == epoch_before + 2

    def test_restore_standard_quorum_requires_catchup(self, cluster):
        db = cluster.session()
        cluster.failures.crash_az("az1")
        cluster.adopt_degraded_quorum(0, "az1")
        db.write("degraded-write", 1)
        cluster.failures.restore_az("az1")
        cluster.run_for(300)  # gossip refills the returned AZ
        cluster.restore_standard_quorum(0)
        db.write("back-to-v6", 2)
        assert db.get("degraded-write") == 1
        assert db.get("back-to-v6") == 2

    def test_wrong_survivor_count_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.adopt_degraded_quorum(0, "no-such-az")

    def test_override_survives_crash_recovery(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        cluster.failures.crash_az("az3")
        cluster.adopt_degraded_quorum(0, "az3")
        db.write("b", 2)
        cluster.crash_writer()
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)  # recovery under the 3/4 model, AZ still down
        assert db.get("a") == 1
        assert db.get("b") == 2
        db.write("post-recovery", 3)


class TestPointInTimeRestore:
    def _source(self, seed=930):
        config = ClusterConfig(seed=seed)
        config.node.backup_interval = 50.0
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        for i in range(25):
            db.write(f"key{i:02d}", i)
        cluster.run_for(300)  # several backup cycles
        return cluster, db

    def test_restore_recovers_backed_up_data(self):
        source, _db = self._source()
        restored = AuroraCluster.restore_from_backup(source)
        db = restored.session()
        for i in range(25):
            assert db.get(f"key{i:02d}") == i

    def test_restored_cluster_accepts_new_traffic(self):
        source, _db = self._source(seed=931)
        restored = AuroraCluster.restore_from_backup(source)
        db = restored.session()
        db.write("post-restore", "ok")
        assert db.get("post-restore") == "ok"

    def test_restore_is_a_fork_not_a_takeover(self):
        """The source keeps running; the restored copy diverges."""
        source, sdb = self._source(seed=932)
        restored = AuroraCluster.restore_from_backup(source)
        rdb = restored.session()
        sdb.write("source-only", 1)
        rdb.write("restore-only", 2)
        assert rdb.get("source-only") is None
        assert sdb.get("restore-only") is None

    def test_point_in_time_cut(self):
        """Restoring as-of an early timestamp excludes later writes."""
        config = ClusterConfig(seed=933)
        config.node.backup_interval = 40.0
        source = AuroraCluster.build(config)
        db = source.session()
        for i in range(10):
            db.write(f"early{i}", i)
        source.run_for(200)
        cut = source.loop.now
        for i in range(10):
            db.write(f"late{i}", i)
        source.run_for(200)
        restored = AuroraCluster.restore_from_backup(source, as_of_ms=cut)
        rdb = restored.session()
        assert rdb.get("early5") == 5
        assert rdb.get("late5") is None

    def test_restore_survives_its_own_crash(self):
        source, _db = self._source(seed=934)
        restored = AuroraCluster.restore_from_backup(source)
        db = restored.session()
        db.write("x", 1)
        restored.crash_writer()
        process = restored.recover_writer()
        db = Session(restored.writer)
        db.drive(process)
        assert db.get("x") == 1
        assert db.get("key10") == 10
