"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.sim.events import EventLoop
from repro.sim.network import Network


#: Storage backends every conformance-parametrized test must pass on.
BACKEND_NAMES = ("aurora", "taurus")


@pytest.fixture(params=BACKEND_NAMES)
def backend(request) -> str:
    """Storage backend name; tests using this fixture run once per backend."""
    return request.param


@pytest.fixture
def backend_cluster(backend: str) -> AuroraCluster:
    """A single-PG cluster built on the parametrized storage backend."""
    return AuroraCluster.build(ClusterConfig(seed=99, backend=backend))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def loop() -> EventLoop:
    return EventLoop()


@pytest.fixture
def network(loop: EventLoop, rng: random.Random) -> Network:
    return Network(loop, rng)


@pytest.fixture
def cluster() -> AuroraCluster:
    """A small single-PG cluster with a bootstrapped writer."""
    return AuroraCluster.build(seed=99)


@pytest.fixture
def multi_pg_cluster() -> AuroraCluster:
    """Three protection groups, 16 blocks each (forces cross-PG spread)."""
    config = ClusterConfig(pg_count=3, blocks_per_pg=16, seed=77)
    return AuroraCluster.build(config)


@pytest.fixture
def full_tail_cluster() -> AuroraCluster:
    """Single PG with the section-4.2 full/tail segment mix."""
    config = ClusterConfig(full_tail=True, seed=55)
    return AuroraCluster.build(config)


def drive(cluster: AuroraCluster, awaitable):
    """Run the cluster loop until the future/process completes."""
    from repro.db.session import Session

    return Session(cluster.writer).drive(awaitable)
