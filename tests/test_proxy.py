"""Serving-tier tests: the connection-multiplexing proxy.

Covers the three envelope behaviours the proxy advertises:

- read-your-writes floors survive replica re-routing (a session's reads
  never land on a replica whose applied VDL trails its last commit SCN);
- pool exhaustion applies backpressure (FIFO queueing) instead of
  letting fan-in exceed the backend pool;
- sessions ride through a writer kill with every outage inside the 5 s
  recovery budget and no acked write lost.
"""

import pytest

from repro import AuroraCluster
from repro.db.proxy import (
    ConnectionProxy,
    LogicalSession,
    ProxyConfig,
    ReplicaLagBalancer,
)
from repro.db.instance import InstanceState
from repro.errors import ConfigurationError, LockConflictError
from repro.sim.process import Process


def _build(seed=11, replicas=2, pool_size=8, failover=False):
    cluster = AuroraCluster.build(seed=seed)
    for _ in range(replicas):
        cluster.add_replica()
    if failover:
        cluster.arm_failover()
    cluster.run_for(100.0)
    proxy = ConnectionProxy(cluster, ProxyConfig(pool_size=pool_size))
    proxy.start()
    return cluster, proxy


class TestConfig:
    def test_rejects_empty_pool(self):
        with pytest.raises(ConfigurationError):
            ProxyConfig(pool_size=0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError):
            ProxyConfig(op_budget_ms=0.0)


class TestReadYourWrites:
    def test_write_raises_the_session_floor(self):
        cluster, proxy = _build()
        session = proxy.connect()
        assert session.last_commit_scn == 0
        scn = proxy.execute_write(session, "a", 1)
        assert scn > 0
        assert session.last_commit_scn == scn
        assert proxy.execute_read(session, "a") == 1

    def test_floor_excludes_stalled_replica_on_reroute(self):
        """A replica whose stream is stalled stays online and reachable,
        but the session's floor must route its reads elsewhere."""
        cluster, proxy = _build(replicas=2)
        session = proxy.connect()
        proxy.execute_write(session, "a", 1)
        cluster.run_for(50.0)  # both replicas catch up

        # Stall replica-1's stream: it stays attached and reachable but
        # its applied VDL freezes below any future commit SCN.
        stalled = cluster.replicas["replica-1"]
        cluster.writer.publisher.detach_replica("replica-1")
        frozen_vdl = stalled.applied_vdl

        scn = proxy.execute_write(session, "a", 2)
        assert frozen_vdl < scn  # the floor is now above the stalled replica
        before = proxy.stats.floor_exclusions
        assert proxy.execute_read(session, "a") == 2
        assert proxy.stats.floor_exclusions > before

        # The balancer itself never offers the stalled replica, even
        # once the healthy one has fully caught up.
        cluster.run_for(50.0)
        name, _replica = proxy.balancer.pick(session.last_commit_scn)
        assert name == "replica-2"

        # A fresh session with no floor may still read the stalled
        # replica -- its snapshot is simply older, never wrong.
        fresh = proxy.connect()
        assert proxy.balancer.pick(fresh.last_commit_scn)[0] is not None

    def test_floor_falls_back_to_writer_when_no_replica_qualifies(self):
        cluster, proxy = _build(replicas=1)
        session = proxy.connect()
        cluster.writer.publisher.detach_replica("replica-1")
        proxy.execute_write(session, "b", 7)
        before = proxy.stats.writer_fallbacks
        assert proxy.execute_read(session, "b") == 7
        assert proxy.stats.writer_fallbacks > before


class TestBackpressure:
    def test_pool_exhaustion_queues_instead_of_oversubscribing(self):
        cluster, proxy = _build(pool_size=2)
        writer_session = proxy.connect()
        for i in range(6):
            proxy.execute_write(writer_session, f"k{i}", i)
        cluster.run_for(50.0)

        results = []

        def client(i):
            session = proxy.connect()
            value = yield from proxy.read(session, f"k{i % 6}")
            results.append((i, value))

        for i in range(12):
            Process(cluster.loop, client(i))
        cluster.run_for(500.0)

        assert len(results) == 12
        assert sorted(v for _i, v in results) == sorted(i % 6 for i in range(12))
        assert proxy.stats.peak_in_flight <= 2
        assert proxy.stats.pool_waits >= 10
        assert proxy.queue_depth == 0
        assert proxy.in_flight == 0

    def test_slot_handoff_is_fifo(self):
        cluster, proxy = _build(pool_size=1)
        order = []

        def client(i):
            session = proxy.connect()
            yield from proxy.write(session, "k", i)
            order.append(i)

        for i in range(5):
            Process(cluster.loop, client(i))
        cluster.run_for(500.0)
        assert order == [0, 1, 2, 3, 4]


class TestFailoverRecovery:
    def test_sessions_recover_within_budget_through_writer_kill(self):
        cluster, proxy = _build(seed=13, replicas=2, pool_size=16,
                                failover=True)
        sessions = [proxy.connect() for _ in range(8)]
        acked = {}
        failures = []

        def client(idx, session):
            for step in range(6):
                key = f"s{idx}"
                try:
                    yield from proxy.write(session, key, (idx, step))
                except Exception as exc:  # pragma: no cover - diagnostic
                    failures.append((idx, step, exc))
                    return
                acked[key] = (idx, step)
                value = yield from proxy.read(session, key)
                if value != (idx, step):
                    failures.append((idx, step, value))
                yield 400.0  # think time straddling the kill window

        for idx, session in enumerate(sessions):
            Process(cluster.loop, client(idx, session))

        cluster.loop.schedule(600.0, cluster.crash_writer)
        cluster.run_for(12_000.0)
        for _ in range(200):
            writer = cluster.writer
            if (cluster.failover.idle and writer is not None
                    and writer.state is InstanceState.OPEN):
                break
            cluster.run_for(25.0)

        assert not failures
        assert len(acked) == 8
        # The kill was observed at the client edge and every outage
        # resolved inside the recovery budget.
        assert proxy.stats.recovery_samples
        assert max(proxy.stats.recovery_samples) < 5_000.0
        # No acked write lost through the promotion.
        reconciler = proxy.connect()
        for key, expected in sorted(acked.items()):
            assert proxy.execute_read(reconciler, key) == expected


    def test_endpoint_return_closes_outage_window(self):
        """Regression: the outage window must close the moment the
        promoted writer accepts the parked operation -- NOT at the
        operation's eventual success.  A parked write that goes on to
        lose a post-promotion lock race (surfaced as an abort) used to
        leave its window open across the session's idle think time
        until its next visit, blowing the 5 s budget with idleness."""
        cluster, proxy = _build(seed=17, replicas=2, pool_size=8,
                                failover=True)
        session = proxy.connect()
        cluster.crash_writer()
        resumed = []

        def parked_op():
            deadline = cluster.loop.now + 30_000.0
            writer = yield from proxy._await_writer(session, deadline)
            # Deliberately no success path: the window must already be
            # closed by the endpoint return alone.
            resumed.append((cluster.loop.now, writer.name))

        Process(cluster.loop, parked_op())
        cluster.run_for(50.0)
        assert session.outage_started_at is not None  # parked = outage
        outage_began = session.outage_started_at
        cluster.run_for(12_000.0)
        for _ in range(200):
            writer = cluster.writer
            if (cluster.failover.idle and writer is not None
                    and writer.state is InstanceState.OPEN):
                break
            cluster.run_for(25.0)

        assert resumed
        assert session.outage_started_at is None
        samples = proxy.stats.recovery_samples
        assert len(samples) == 1
        # The window spans exactly park -> endpoint return, nothing more.
        assert samples[0] == pytest.approx(resumed[0][0] - outage_began)
        assert samples[0] < 3_000.0

    def test_lock_conflict_closes_outage_window(self):
        """A lock conflict is proof of service: the writer processed
        the request and the session lost a concurrency race, so any
        open outage window ends there instead of accruing think time
        until the session's next operation."""
        cluster, proxy = _build()
        db = cluster.session()
        blocker = db.begin()
        db.put(blocker, "hot", 0)  # holds the row lock

        session = proxy.connect()
        # An outage opened 500 simulated ms ago (e.g. a fault absorbed
        # by an earlier retry attempt of this visit).
        session.outage_started_at = cluster.loop.now - 500.0
        with pytest.raises(LockConflictError):
            proxy.execute_write(session, "hot", 1)
        assert session.outage_started_at is None
        assert len(proxy.stats.recovery_samples) == 1
        assert proxy.stats.recovery_samples[0] == pytest.approx(
            500.0, abs=100.0
        )


class TestLagTracker:
    def test_steady_state_time_lag_is_small(self):
        cluster, proxy = _build(replicas=2)
        session = proxy.connect()
        for i in range(10):
            proxy.execute_write(session, f"k{i}", i)
            cluster.run_for(20.0)
        samples = proxy.lag.samples
        assert samples
        steady = sorted(samples)[int(len(samples) * 0.95) - 1]
        assert steady < 10.0


class TestBalancer:
    def test_pick_prefers_least_loaded_then_name(self):
        cluster, proxy = _build(replicas=2)
        balancer = ReplicaLagBalancer(cluster)
        cluster.run_for(50.0)
        assert balancer.pick(0)[0] == "replica-1"
        balancer.lease("replica-1")
        assert balancer.pick(0)[0] == "replica-2"
        balancer.release("replica-1")
        assert balancer.pick(0)[0] == "replica-1"

    def test_unreachable_replica_is_not_a_candidate(self):
        cluster, proxy = _build(replicas=2)
        cluster.network.fail_node("replica-1")
        assert proxy.balancer.pick(0)[0] == "replica-2"

    def test_logical_sessions_hold_no_backend_state(self):
        _cluster, proxy = _build()
        sessions = [proxy.connect() for _ in range(1000)]
        assert proxy.in_flight == 0
        assert proxy.queue_depth == 0
        assert all(isinstance(s, LogicalSession) for s in sessions)
        assert len({s.session_id for s in sessions}) == 1000
