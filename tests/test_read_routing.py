"""Unit tests for read routing: latency tracking, exploration, hedging."""

import random

import pytest

from repro.core.read_routing import LatencyTracker, ReadRouter
from repro.errors import ConfigurationError, SegmentUnavailableError


class TestLatencyTracker:
    def test_first_sample_becomes_estimate(self):
        tracker = LatencyTracker()
        tracker.record("s0", 2.0)
        assert tracker.expected("s0") == 2.0

    def test_ewma_converges_toward_new_level(self):
        tracker = LatencyTracker(alpha=0.5)
        tracker.record("s0", 1.0)
        for _ in range(10):
            tracker.record("s0", 3.0)
        assert 2.9 < tracker.expected("s0") <= 3.0

    def test_unknown_segment_gets_optimistic_default(self):
        tracker = LatencyTracker(initial_estimate=1.5)
        assert tracker.expected("never-seen") == 1.5

    def test_ranked_orders_fastest_first(self):
        tracker = LatencyTracker()
        tracker.record("slow", 9.0)
        tracker.record("fast", 1.0)
        tracker.record("mid", 4.0)
        assert tracker.ranked(["slow", "fast", "mid"]) == [
            "fast", "mid", "slow",
        ]

    def test_ranked_tie_break_is_name_stable(self):
        tracker = LatencyTracker()
        tracker.record("b", 1.0)
        tracker.record("a", 1.0)
        assert tracker.ranked(["b", "a"]) == ["a", "b"]

    def test_sample_counts(self):
        tracker = LatencyTracker()
        tracker.record("s0", 1.0)
        tracker.record("s0", 1.0)
        assert tracker.sample_count("s0") == 2
        assert tracker.sample_count("s1") == 0

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyTracker(alpha=0.0)


class TestReadRouter:
    def _router(self, explore=0.0, hedge=3.0):
        tracker = LatencyTracker()
        tracker.record("fast", 1.0)
        tracker.record("mid", 3.0)
        tracker.record("slow", 10.0)
        return ReadRouter(
            tracker,
            random.Random(4),
            explore_probability=explore,
            hedge_multiplier=hedge,
        )

    def test_plan_picks_fastest_primary(self):
        plan = self._router().plan(["slow", "mid", "fast"])
        assert plan.primary == "fast"
        assert plan.explore is None
        assert plan.hedge_candidates == ["mid", "slow"]

    def test_no_candidates_raises(self):
        with pytest.raises(SegmentUnavailableError):
            self._router().plan([])

    def test_exploration_sometimes_queries_a_peer(self):
        router = self._router(explore=1.0)
        plan = router.plan(["fast", "mid", "slow"])
        assert plan.explore in ("mid", "slow")
        assert plan.explore not in plan.hedge_candidates

    def test_exploration_frequency_matches_probability(self):
        router = self._router(explore=0.25)
        explored = sum(
            1
            for _ in range(2000)
            if router.plan(["fast", "mid"]).explore is not None
        )
        assert 0.20 < explored / 2000 < 0.30

    def test_should_hedge_threshold(self):
        router = self._router(hedge=3.0)
        assert not router.should_hedge("fast", elapsed=2.9)
        assert router.should_hedge("fast", elapsed=3.1)
        # slower segment has more slack before hedging
        assert not router.should_hedge("slow", elapsed=25.0)
        assert router.should_hedge("slow", elapsed=31.0)

    def test_hedge_target_is_next_fastest(self):
        router = self._router()
        plan = router.plan(["fast", "mid", "slow"])
        assert router.hedge_target(plan) == "mid"

    def test_hedge_target_none_without_candidates(self):
        router = self._router()
        plan = router.plan(["fast"])
        assert router.hedge_target(plan) is None

    def test_invalid_parameters_rejected(self):
        tracker = LatencyTracker()
        with pytest.raises(ConfigurationError):
            ReadRouter(tracker, random.Random(1), explore_probability=1.5)
        with pytest.raises(ConfigurationError):
            ReadRouter(tracker, random.Random(1), hedge_multiplier=0.5)

    def test_adaptive_avoidance_of_degraded_segment(self):
        """After a segment degrades, new plans route away from it."""
        tracker = LatencyTracker(alpha=0.5)
        tracker.record("s0", 1.0)
        tracker.record("s1", 2.0)
        router = ReadRouter(tracker, random.Random(2))
        assert router.plan(["s0", "s1"]).primary == "s0"
        for _ in range(6):
            tracker.record("s0", 50.0)  # s0 got busy
        assert router.plan(["s0", "s1"]).primary == "s1"
