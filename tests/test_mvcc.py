"""Unit + property tests for MVCC visibility and version pruning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.mvcc import (
    TOMBSTONE,
    ReadView,
    ReadViewManager,
    TransactionStatusRegistry,
    prune_versions,
    visible_value,
)
from repro.errors import TransactionError


def registry_with(commits: dict[int, int]) -> TransactionStatusRegistry:
    registry = TransactionStatusRegistry()
    for txn_id, scn in commits.items():
        registry.record_commit(txn_id, scn)
    return registry


class TestRegistry:
    def test_commit_and_lookup(self):
        registry = registry_with({1: 10})
        assert registry.commit_scn(1) == 10
        assert registry.commit_scn(2) is None

    def test_conflicting_scn_rejected(self):
        registry = registry_with({1: 10})
        with pytest.raises(TransactionError):
            registry.record_commit(1, 11)
        registry.record_commit(1, 10)  # same SCN is idempotent

    def test_commit_after_abort_rejected(self):
        registry = TransactionStatusRegistry()
        registry.record_abort(1)
        with pytest.raises(TransactionError):
            registry.record_commit(1, 5)
        assert registry.is_aborted(1)

    def test_load_txn_table_image(self):
        registry = TransactionStatusRegistry()
        loaded = registry.load_txn_table_image({1: 10, 2: 20, "junk": "x"})
        assert loaded == 2
        assert registry.commit_scn(2) == 20

    def test_loaded_entries_do_not_override(self):
        registry = registry_with({1: 10})
        registry.load_txn_table_image({1: 999})
        assert registry.commit_scn(1) == 10


class TestVisibility:
    def test_sees_committed_at_or_below_read_point(self):
        registry = registry_with({1: 10, 2: 20})
        versions = ((1, "old"), (2, "new"))
        view_15 = ReadView(view_id=1, read_point=15)
        assert visible_value(versions, view_15, registry) == (True, "old")
        view_20 = ReadView(view_id=2, read_point=20)
        assert visible_value(versions, view_20, registry) == (True, "new")

    def test_uncommitted_versions_invisible_to_others(self):
        registry = registry_with({1: 10})
        versions = ((1, "committed"), (99, "in-flight"))
        view = ReadView(view_id=1, read_point=50)
        assert visible_value(versions, view, registry) == (True, "committed")

    def test_own_writes_visible(self):
        registry = registry_with({})
        versions = ((7, "mine"),)
        own = ReadView(view_id=1, read_point=0, txn_id=7)
        other = ReadView(view_id=2, read_point=0, txn_id=8)
        assert visible_value(versions, own, registry) == (True, "mine")
        assert visible_value(versions, other, registry) == (False, None)

    def test_tombstone_reads_as_absent(self):
        registry = registry_with({1: 10, 2: 20})
        versions = ((1, "v"), (2, TOMBSTONE))
        early = ReadView(view_id=1, read_point=15)
        late = ReadView(view_id=2, read_point=25)
        assert visible_value(versions, early, registry) == (True, "v")
        assert visible_value(versions, late, registry) == (False, None)

    def test_empty_chain_absent(self):
        assert visible_value((), ReadView(1, 100), registry_with({})) == (
            False, None,
        )

    def test_snapshot_isolation_via_scn_ordering(self):
        """A txn committing after a view opens gets an SCN above the view's
        read point, hence stays invisible -- the LSN-order argument."""
        registry = TransactionStatusRegistry()
        view = ReadView(view_id=1, read_point=100)
        # Commit happens 'later': SCN must exceed any LSN allocated before
        # the view opened, so > 100.
        registry.record_commit(5, 101)
        assert visible_value(((5, "later"),), view, registry) == (False, None)


class TestPruning:
    def test_doomed_txn_versions_removed(self):
        registry = registry_with({1: 10})
        versions = ((1, "keep"), (99, "rollback-me"))
        pruned = prune_versions(versions, 0, registry, frozenset({99}))
        assert pruned == ((1, "keep"),)

    def test_old_committed_versions_collapse_to_newest(self):
        registry = registry_with({1: 10, 2: 20, 3: 30})
        versions = ((1, "a"), (2, "b"), (3, "c"))
        pruned = prune_versions(versions, 25, registry)
        assert pruned == ((2, "b"), (3, "c"))

    def test_everything_old_keeps_only_latest(self):
        registry = registry_with({1: 10, 2: 20})
        pruned = prune_versions(((1, "a"), (2, "b")), 99, registry)
        assert pruned == ((2, "b"),)

    def test_unknown_txn_versions_kept(self):
        registry = registry_with({1: 10})
        versions = ((1, "a"), (42, "pending"))
        pruned = prune_versions(versions, 99, registry)
        assert pruned == versions

    @given(
        st.lists(
            st.tuples(st.integers(1, 8), st.integers(1, 100)),
            max_size=10,
            unique_by=lambda tv: tv[0],
        ),
        st.integers(0, 100),
    )
    @settings(max_examples=80, deadline=None)
    def test_pruning_preserves_visibility_at_and_above_floor(
        self, commits, floor
    ):
        """Property: for any read point >= the purge floor, the pruned
        chain resolves to exactly the same value as the original."""
        registry = registry_with(dict(commits))
        versions = tuple(
            (txn_id, f"value-{txn_id}") for txn_id, _ in commits
        )
        pruned = prune_versions(versions, floor, registry)
        for read_point in range(floor, 101, 7):
            view = ReadView(view_id=1, read_point=read_point)
            assert visible_value(pruned, view, registry) == visible_value(
                versions, view, registry
            )


class TestReadViewManager:
    def test_open_close_and_min(self):
        manager = ReadViewManager()
        v1 = manager.open(10)
        v2 = manager.open(20)
        assert manager.min_active_read_point() == 10
        manager.close(v1)
        assert manager.min_active_read_point() == 20
        manager.close(v2)
        assert manager.min_active_read_point() is None

    def test_double_close_rejected(self):
        manager = ReadViewManager()
        view = manager.open(10)
        manager.close(view)
        with pytest.raises(TransactionError):
            manager.close(view)

    def test_view_ids_unique(self):
        manager = ReadViewManager()
        assert manager.open(1).view_id != manager.open(1).view_id

    def test_clear(self):
        manager = ReadViewManager()
        manager.open(5)
        manager.clear()
        assert manager.active_count == 0
