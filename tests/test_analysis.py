"""Tests for the availability, durability, and cost models."""

import random

import pytest

from repro.analysis import (
    CostModel,
    DurabilityModel,
    az_failure_survival,
    quorum_availability,
    quorum_availability_under_az_failure,
)
from repro.analysis.availability import monte_carlo_availability
from repro.analysis.cost import ALL_FULL_V6, FULL_TAIL_V6, SegmentMix
from repro.core.quorum import (
    full_tail_config,
    majority_config,
    v6_config,
)
from repro.errors import ConfigurationError

SIX = [f"s{i}" for i in range(6)]
THREE = ["a", "b", "c"]
AZ6 = {m: f"az{i % 3 + 1}" for i, m in enumerate(SIX)}
AZ3 = {"a": "az1", "b": "az2", "c": "az3"}


class TestQuorumAvailability:
    def test_perfect_nodes_always_available(self):
        config = v6_config(SIX)
        assert quorum_availability(config.write_expr, 1.0) == pytest.approx(1.0)

    def test_dead_nodes_never_available(self):
        config = v6_config(SIX)
        assert quorum_availability(config.write_expr, 0.0) == pytest.approx(0.0)

    def test_matches_binomial_closed_form(self):
        """4/6 availability at p=0.9 equals sum_{k>=4} C(6,k) p^k q^(6-k)."""
        import math

        config = v6_config(SIX)
        p = 0.9
        expected = sum(
            math.comb(6, k) * p**k * (1 - p) ** (6 - k) for k in range(4, 7)
        )
        assert quorum_availability(config.write_expr, p) == pytest.approx(
            expected
        )

    def test_read_quorum_more_available_than_write(self):
        config = v6_config(SIX)
        p = 0.85
        assert quorum_availability(config.read_expr, p) > quorum_availability(
            config.write_expr, p
        )

    def test_per_member_probabilities(self):
        config = majority_config(THREE)
        availability = quorum_availability(
            config.write_expr, {"a": 1.0, "b": 1.0, "c": 0.0}
        )
        assert availability == pytest.approx(1.0)  # a+b is a majority

    def test_invalid_probability_rejected(self):
        config = majority_config(THREE)
        with pytest.raises(ConfigurationError):
            quorum_availability(config.write_expr, 1.5)


class TestFigure1:
    """The paper's core availability argument."""

    def test_2of3_writes_break_on_az_plus_one(self):
        config = majority_config(THREE)
        assert az_failure_survival(config.write_expr, AZ3, extra_failures=0)
        assert not az_failure_survival(
            config.write_expr, AZ3, extra_failures=1
        )

    def test_v6_writes_survive_az_failure(self):
        config = v6_config(SIX)
        assert az_failure_survival(config.write_expr, AZ6, extra_failures=0)
        # ... but not AZ+1 (writes degrade; that is by design).
        assert not az_failure_survival(
            config.write_expr, AZ6, extra_failures=1
        )

    def test_v6_reads_survive_az_plus_one(self):
        """The AZ+1 property: reads (and hence repair) survive an AZ loss
        plus one more node."""
        config = v6_config(SIX)
        assert az_failure_survival(config.read_expr, AZ6, extra_failures=1)
        assert not az_failure_survival(
            config.read_expr, AZ6, extra_failures=2
        )

    def test_conditional_availability_ordering(self):
        v6 = v6_config(SIX)
        m3 = majority_config(THREE)
        p = 0.99
        v6_read = quorum_availability_under_az_failure(
            v6.read_expr, AZ6, "az1", p
        )
        m3_read = quorum_availability_under_az_failure(
            m3.read_expr, AZ3, "az1", p
        )
        assert v6_read > m3_read

    def test_full_tail_preserves_az_plus_one_reads(self):
        config = full_tail_config(["f0", "f1", "f2"], ["t0", "t1", "t2"])
        az_map = {
            "f0": "az1", "t0": "az1",
            "f1": "az2", "t1": "az2",
            "f2": "az3", "t2": "az3",
        }
        assert az_failure_survival(config.write_expr, az_map, 0)
        # Reads need a full segment: AZ+1 still survivable because one
        # full segment remains outside any AZ + any single extra failure?
        # Worst case: AZ down kills one full; extra failure kills another
        # full; one full left + 3 members total needed.
        assert az_failure_survival(config.read_expr, az_map, 1)

    def test_monte_carlo_agrees_with_exact(self):
        config = v6_config(SIX)
        rng = random.Random(5)
        p_fail = 0.05
        exact = quorum_availability(config.write_expr, 1 - p_fail)
        simulated = monte_carlo_availability(
            config.write_expr, AZ6, p_node_fail=p_fail, p_az_fail=0.0,
            trials=20_000, rng=rng,
        )
        assert simulated == pytest.approx(exact, abs=0.01)


class TestDurabilityModel:
    def test_paper_arithmetic_64tb(self):
        assert DurabilityModel.segments_for_volume(64) == 38_400
        assert DurabilityModel.protection_groups_for_volume(64) == 6_400

    def test_window_probabilities_are_tiny_and_ordered(self):
        model = DurabilityModel(
            segment_mttf_hours=10_000, repair_window_s=10
        )
        p_write = model.p_write_quorum_loss()
        p_read = model.p_read_quorum_loss()
        assert 0 < p_read < p_write < 1e-9

    def test_longer_repair_window_hurts(self):
        fast = DurabilityModel(repair_window_s=10)
        slow = DurabilityModel(repair_window_s=3600)
        assert slow.p_read_quorum_loss() > fast.p_read_quorum_loss()

    def test_volume_yearly_risk_scales_with_size(self):
        model = DurabilityModel()
        assert model.p_volume_read_loss_per_year(
            64
        ) > model.p_volume_read_loss_per_year(1)

    def test_expected_degraded_quorums_fleet(self):
        """'some small number of quorums will be degraded'"""
        model = DurabilityModel(
            segment_mttf_hours=10_000, repair_window_s=30
        )
        degraded = model.expected_degraded_quorums(fleet_pgs=1_000_000)
        assert 0 < degraded < 10_000  # small relative to the fleet

    def test_az_rate_contributes(self):
        quiet = DurabilityModel(az_failures_per_year=0.0)
        noisy = DurabilityModel(az_failures_per_year=10.0)
        assert noisy.p_read_quorum_loss() > quiet.p_read_quorum_loss()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DurabilityModel(segment_mttf_hours=0)


class TestCostModel:
    def test_full_tail_roughly_halves_cost(self):
        """Section 4.2: 'cost amplification closer to three copies of the
        data rather than a full six'."""
        model = CostModel(log_to_block_ratio=0.1)
        assert model.amplification(ALL_FULL_V6) == pytest.approx(6.6)
        assert model.amplification(FULL_TAIL_V6) == pytest.approx(3.6)
        assert 3.0 <= model.amplification(FULL_TAIL_V6) <= 4.0

    def test_savings_fraction(self):
        model = CostModel(log_to_block_ratio=0.1)
        savings = model.savings_vs_all_full(FULL_TAIL_V6)
        assert 0.4 < savings < 0.5

    def test_zero_log_limit_is_exactly_3x_vs_6x(self):
        model = CostModel(log_to_block_ratio=0.0)
        assert model.amplification(ALL_FULL_V6) == 6.0
        assert model.amplification(FULL_TAIL_V6) == 3.0

    def test_price_per_user_gb(self):
        model = CostModel(log_to_block_ratio=0.1)
        assert model.price_per_user_gb(
            FULL_TAIL_V6, raw_price_per_gb_month=0.10
        ) == pytest.approx(0.36)

    def test_ratio_sweep_is_monotonic(self):
        model = CostModel()
        series = model.sweep_ratios(FULL_TAIL_V6, [0.0, 0.1, 0.2, 0.5])
        amplifications = [a for _r, a in series]
        assert amplifications == sorted(amplifications)

    def test_invalid_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentMix(full_segments=0, tail_segments=6)

    def test_measured_amplification_from_cluster(self):
        """Empirical cross-check on a real simulated cluster."""
        from repro import AuroraCluster, ClusterConfig
        from repro.analysis.cost import measured_amplification_from_cluster

        def measure(full_tail):
            cluster = AuroraCluster.build(
                ClusterConfig(seed=9, full_tail=full_tail)
            )
            db = cluster.session()
            for i in range(60):
                db.write(f"key{i:03d}", "x" * 50)
            cluster.run_for(100)
            for node in cluster.nodes.values():
                node.segment.coalesce()
            return measured_amplification_from_cluster(cluster)

        all_full = measure(False)
        mixed = measure(True)
        assert mixed["block_bytes"] < all_full["block_bytes"]
        assert mixed["amplification"] < all_full["amplification"]


class TestFleetDurability:
    def test_fast_repairs_meet_c7(self):
        from repro.analysis import fleet_durability

        report = fleet_durability([1200.0, 1500.0, 900.0], [550.0, 600.0])
        assert report.meets_c7
        assert report.samples == 3
        assert report.max_ms == 1500.0
        # A shorter observed window can only lower the loss probability.
        assert report.p_loss_mean < report.p_loss_c7
        assert report.p_loss_mean <= report.p_loss_p95 <= report.p_loss_max
        assert report.detection is not None
        assert report.detection.max_ms == 600.0

    def test_tail_beyond_c7_flags_exceeded(self):
        from repro.analysis import fleet_durability

        report = fleet_durability([1000.0, 2000.0, 60_000.0])
        assert not report.meets_c7
        assert report.p_loss_max > report.p_loss_c7
        assert "EXCEEDED" in "\n".join(report.render_lines())

    def test_needs_positive_samples(self):
        from repro.analysis import fleet_durability

        with pytest.raises(ConfigurationError):
            fleet_durability([0.0, -5.0])
