"""Unit tests for the failure injector."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.events import EventLoop
from repro.sim.failures import FailureInjector
from repro.sim.network import Actor, Network


class Dummy(Actor):
    def on_message(self, message):
        pass


@pytest.fixture
def setup():
    loop = EventLoop()
    rng = random.Random(9)
    network = Network(loop, rng)
    injector = FailureInjector(loop, network, rng)
    for i in range(6):
        network.attach(Dummy(f"n{i}"), az=f"az{i % 3 + 1}")
    injector.register_az("az1", {"n0", "n3"})
    injector.register_az("az2", {"n1", "n4"})
    injector.register_az("az3", {"n2", "n5"})
    return loop, network, injector


class TestImmediateOps:
    def test_crash_and_restore_node(self, setup):
        _loop, network, injector = setup
        injector.crash_node("n0")
        assert not network.is_up("n0")
        injector.restore_node("n0")
        assert network.is_up("n0")

    def test_crash_az_takes_both_members_down(self, setup):
        _loop, network, injector = setup
        injector.crash_az("az2")
        assert not network.is_up("n1")
        assert not network.is_up("n4")
        assert network.is_up("n0")
        injector.restore_az("az2")
        assert network.is_up("n1") and network.is_up("n4")

    def test_unknown_az_rejected(self, setup):
        _loop, _network, injector = setup
        with pytest.raises(ConfigurationError):
            injector.crash_az("az9")

    def test_slow_and_unslow(self, setup):
        _loop, network, injector = setup
        injector.slow_node("n2", 5.0)
        assert network._node("n2").latency_scale == 5.0
        injector.unslow_node("n2")
        assert network._node("n2").latency_scale == 1.0

    def test_log_records_events_with_time(self, setup):
        loop, _network, injector = setup
        loop.run(until=3.0)
        injector.crash_node("n0")
        assert injector.log == [(3.0, "crash", "n0")]


class TestScheduledOps:
    def test_crash_at_with_duration(self, setup):
        loop, network, injector = setup
        injector.crash_at(10.0, "n0", duration=5.0)
        loop.run(until=12.0)
        assert not network.is_up("n0")
        loop.run(until=16.0)
        assert network.is_up("n0")

    def test_crash_az_at(self, setup):
        loop, network, injector = setup
        injector.crash_az_at(10.0, "az1", duration=5.0)
        loop.run(until=11.0)
        assert not network.is_up("n0") and not network.is_up("n3")
        loop.run(until=20.0)
        assert network.is_up("n0") and network.is_up("n3")

    def test_slow_at_with_duration(self, setup):
        loop, network, injector = setup
        injector.slow_at(5.0, "n1", factor=4.0, duration=5.0)
        loop.run(until=6.0)
        assert network._node("n1").latency_scale == 4.0
        loop.run(until=11.0)
        assert network._node("n1").latency_scale == 1.0


class TestBackgroundFailures:
    def test_alternates_up_and_down(self, setup):
        loop, network, injector = setup
        injector.enable_background_failures(
            ["n0"], mttf_ms=50.0, mttr_ms=10.0, horizon_ms=10_000.0
        )
        crashes = sum(1 for _t, kind, _n in injector.log if kind == "crash")
        loop.run(until=10_000.0)
        crashes = sum(1 for _t, kind, _n in injector.log if kind == "crash")
        restores = sum(
            1 for _t, kind, _n in injector.log if kind == "restore"
        )
        assert crashes > 10  # roughly 10k/60 cycles
        assert crashes - restores in (0, 1)

    def test_invalid_rates_rejected(self, setup):
        _loop, _network, injector = setup
        with pytest.raises(ConfigurationError):
            injector.enable_background_failures(
                ["n0"], mttf_ms=0, mttr_ms=1, horizon_ms=10
            )

    def test_deterministic_for_seed(self):
        logs = []
        for _ in range(2):
            loop = EventLoop()
            rng = random.Random(33)
            network = Network(loop, rng)
            network.attach(Dummy("n0"))
            injector = FailureInjector(loop, network, rng)
            injector.enable_background_failures(
                ["n0"], mttf_ms=100.0, mttr_ms=20.0, horizon_ms=5_000.0
            )
            loop.run(until=5_000.0)
            logs.append(list(injector.log))
        assert logs[0] == logs[1]
