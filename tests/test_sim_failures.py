"""Unit tests for the failure injector."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.events import EventLoop
from repro.sim.failures import FailureInjector
from repro.sim.network import Actor, Network


class Dummy(Actor):
    def on_message(self, message):
        pass


@pytest.fixture
def setup():
    loop = EventLoop()
    rng = random.Random(9)
    network = Network(loop, rng)
    injector = FailureInjector(loop, network, rng)
    for i in range(6):
        network.attach(Dummy(f"n{i}"), az=f"az{i % 3 + 1}")
    injector.register_az("az1", {"n0", "n3"})
    injector.register_az("az2", {"n1", "n4"})
    injector.register_az("az3", {"n2", "n5"})
    return loop, network, injector


class TestImmediateOps:
    def test_crash_and_restore_node(self, setup):
        _loop, network, injector = setup
        injector.crash_node("n0")
        assert not network.is_up("n0")
        injector.restore_node("n0")
        assert network.is_up("n0")

    def test_crash_az_takes_both_members_down(self, setup):
        _loop, network, injector = setup
        injector.crash_az("az2")
        assert not network.is_up("n1")
        assert not network.is_up("n4")
        assert network.is_up("n0")
        injector.restore_az("az2")
        assert network.is_up("n1") and network.is_up("n4")

    def test_unknown_az_rejected(self, setup):
        _loop, _network, injector = setup
        with pytest.raises(ConfigurationError):
            injector.crash_az("az9")

    def test_slow_and_unslow(self, setup):
        _loop, network, injector = setup
        injector.slow_node("n2", 5.0)
        assert network._node("n2").latency_scale == 5.0
        injector.unslow_node("n2")
        assert network._node("n2").latency_scale == 1.0

    def test_log_records_events_with_time(self, setup):
        loop, _network, injector = setup
        loop.run(until=3.0)
        injector.crash_node("n0")
        assert injector.log == [(3.0, "crash", "n0")]


class TestScheduledOps:
    def test_crash_at_with_duration(self, setup):
        loop, network, injector = setup
        injector.crash_at(10.0, "n0", duration=5.0)
        loop.run(until=12.0)
        assert not network.is_up("n0")
        loop.run(until=16.0)
        assert network.is_up("n0")

    def test_crash_az_at(self, setup):
        loop, network, injector = setup
        injector.crash_az_at(10.0, "az1", duration=5.0)
        loop.run(until=11.0)
        assert not network.is_up("n0") and not network.is_up("n3")
        loop.run(until=20.0)
        assert network.is_up("n0") and network.is_up("n3")

    def test_slow_at_with_duration(self, setup):
        loop, network, injector = setup
        injector.slow_at(5.0, "n1", factor=4.0, duration=5.0)
        loop.run(until=6.0)
        assert network._node("n1").latency_scale == 4.0
        loop.run(until=11.0)
        assert network._node("n1").latency_scale == 1.0


class TestBackgroundFailures:
    def test_alternates_up_and_down(self, setup):
        loop, network, injector = setup
        injector.enable_background_failures(
            ["n0"], mttf_ms=50.0, mttr_ms=10.0, horizon_ms=10_000.0
        )
        crashes = sum(1 for _t, kind, _n in injector.log if kind == "crash")
        loop.run(until=10_000.0)
        crashes = sum(1 for _t, kind, _n in injector.log if kind == "crash")
        restores = sum(
            1 for _t, kind, _n in injector.log if kind == "restore"
        )
        assert crashes > 10  # roughly 10k/60 cycles
        assert crashes - restores in (0, 1)

    def test_invalid_rates_rejected(self, setup):
        _loop, _network, injector = setup
        with pytest.raises(ConfigurationError):
            injector.enable_background_failures(
                ["n0"], mttf_ms=0, mttr_ms=1, horizon_ms=10
            )

    def test_deterministic_for_seed(self):
        logs = []
        for _ in range(2):
            loop = EventLoop()
            rng = random.Random(33)
            network = Network(loop, rng)
            network.attach(Dummy("n0"))
            injector = FailureInjector(loop, network, rng)
            injector.enable_background_failures(
                ["n0"], mttf_ms=100.0, mttr_ms=20.0, horizon_ms=5_000.0
            )
            loop.run(until=5_000.0)
            logs.append(list(injector.log))
        assert logs[0] == logs[1]


class TestStaleBackgroundEvents:
    """Manual intervention invalidates pre-scheduled background events.

    The historical bug: ``restore_az`` after a staged outage left the
    node at the mercy of stale background crash/restore events scheduled
    before the intervention, which could immediately re-crash it (or
    resurrect a deliberately-downed node).  Failure generations fix it.
    """

    def test_manual_restore_cancels_pending_background_events(self, setup):
        loop, network, injector = setup
        injector.enable_background_failures(
            ["n0"], mttf_ms=30.0, mttr_ms=500.0, horizon_ms=5_000.0
        )
        # Run until a background crash lands.
        for _ in range(5_000):
            if not network.is_up("n0"):
                break
            loop.step()
        assert not network.is_up("n0")
        injector.restore_node("n0")  # operator intervention
        marker = len(injector.log)
        loop.run(until=5_000.0)
        # No stale background crash (nor stale restore) touches n0 again.
        stale = [
            (t, kind)
            for t, kind, name in injector.log[marker:]
            if name == "n0"
        ]
        assert stale == []
        assert network.is_up("n0")

    def test_restore_az_cancels_background_events_for_members(self, setup):
        loop, network, injector = setup
        injector.enable_background_failures(
            ["n0", "n3"], mttf_ms=40.0, mttr_ms=400.0, horizon_ms=4_000.0
        )
        loop.run(until=100.0)
        injector.crash_az("az1")
        assert not network.is_up("n0") and not network.is_up("n3")
        injector.restore_az("az1")
        marker = len(injector.log)
        loop.run(until=4_000.0)
        stale = [
            (t, kind, name)
            for t, kind, name in injector.log[marker:]
            if name in ("n0", "n3")
        ]
        assert stale == []  # every remaining background event was stale
        assert network.is_up("n0") and network.is_up("n3")

    def test_generation_bumps_on_manual_ops_only(self, setup):
        loop, _network, injector = setup
        assert injector.generation_of("n0") == 0
        injector.crash_node("n0")
        injector.restore_node("n0")
        assert injector.generation_of("n0") == 2
        injector.enable_background_failures(
            ["n0"], mttf_ms=20.0, mttr_ms=20.0, horizon_ms=1_000.0
        )
        loop.run(until=1_000.0)
        # Background crash/restore pairs do NOT bump the generation --
        # otherwise each pair would invalidate its own successor.
        assert injector.generation_of("n0") == 2
        crashes = sum(
            1 for _t, kind, name in injector.log
            if name == "n0" and kind == "crash"
        )
        assert crashes > 5  # the schedule kept running to the horizon

    def test_reenable_resumes_background_noise_after_intervention(self, setup):
        loop, network, injector = setup
        injector.enable_background_failures(
            ["n1"], mttf_ms=30.0, mttr_ms=30.0, horizon_ms=2_000.0
        )
        loop.run(until=500.0)
        injector.crash_node("n1")
        injector.restore_node("n1")
        marker = len(injector.log)
        injector.enable_background_failures(
            ["n1"], mttf_ms=30.0, mttr_ms=30.0, horizon_ms=2_000.0
        )
        loop.run(until=2_000.0)
        resumed = [
            kind for _t, kind, name in injector.log[marker:] if name == "n1"
        ]
        assert "crash" in resumed  # fresh schedule is live again


class TestPartitions:
    def test_partition_node_cuts_both_directions(self, setup):
        _loop, network, injector = setup
        injector.partition_node("n0", {"n1", "n2"})
        assert network.is_partitioned("n0", "n1")
        assert network.is_partitioned("n1", "n0")
        assert not network.is_partitioned("n0", "n3")
        injector.heal_node_partition("n0", {"n1", "n2"})
        assert not network.is_partitioned("n0", "n1")

    def test_partition_at_with_duration(self, setup):
        loop, network, injector = setup
        injector.partition_at(50.0, "n0", {"n1"}, duration=100.0)
        loop.run(until=60.0)
        assert network.is_partitioned("n0", "n1")
        loop.run(until=200.0)
        assert not network.is_partitioned("n0", "n1")

    def test_partition_logged(self, setup):
        loop, _network, injector = setup
        injector.partition_node("n5", {"n0"})
        injector.heal_node_partition("n5", {"n0"})
        kinds = [kind for _t, kind, name in injector.log if name == "n5"]
        assert kinds == ["partition", "heal_partition"]


class TestCondemn:
    def test_condemned_node_ignores_every_restore(self, setup):
        _loop, network, injector = setup
        injector.condemn_node("n0")
        assert not network.is_up("n0")
        injector.restore_node("n0")
        assert not network.is_up("n0")
        injector.restore_az("az1")  # n0 lives in az1
        assert not network.is_up("n0")
        # The AZ sweep still restores its non-condemned sibling.
        injector.crash_node("n3")
        injector.restore_az("az1")
        assert network.is_up("n3")

    def test_condemn_survives_scheduled_az_recovery(self, setup):
        loop, network, injector = setup
        injector.crash_az_at(10.0, "az2", duration=20.0)
        loop.run(until=15.0)
        injector.condemn_node("n1")
        loop.run()  # restore_az fires at t=30
        assert network.is_up("n4")
        assert not network.is_up("n1")

    def test_condemn_cancels_background_restore(self, setup):
        loop, _network, injector = setup
        injector.enable_background_failures(
            ["n5"], mttf_ms=5.0, mttr_ms=5.0, horizon_ms=200.0
        )
        injector.condemn_node("n5")
        loop.run()
        assert not injector.network.is_up("n5")
