"""Soak test: sustained load, background failures, mid-run recovery.

One long deterministic scenario exercising everything at once -- the kind
of run that shakes out interaction bugs unit tests cannot see.  Kept to a
few seconds of wall-clock.
"""

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session
from repro.workloads import WorkloadGenerator, WorkloadRunner, profile


class TestSoak:
    def test_long_run_with_background_failures(self):
        config = ClusterConfig(seed=424)
        config.node.backup_interval = 100.0
        config.node.gc_interval = 50.0
        cluster = AuroraCluster.build(config)
        cluster.add_replica("r1")
        # Background noise: every segment flaps occasionally, never more
        # than the fault budget at once (MTTF chosen so overlap of >2
        # simultaneous failures is essentially never hit at this horizon).
        cluster.failures.enable_background_failures(
            [f"pg0-{c}" for c in "abc"],
            mttf_ms=4_000.0,
            mttr_ms=60.0,
            horizon_ms=8_000.0,
        )
        db = cluster.session()
        oracle = {}

        def write_block(tag, count):
            for i in range(count):
                key = f"{tag}:{i % 40:02d}"
                value = f"{tag}-{i}"
                db.write(key, value)
                oracle[key] = value

        write_block("phase1", 150)
        cluster.run_for(500)

        # Mid-run crash + recovery under the background churn.
        cluster.crash_writer()
        db = Session(cluster.writer)
        db.drive(cluster.recover_writer())
        for key, value in oracle.items():
            assert db.get(key) == value

        write_block("phase2", 150)
        cluster.run_for(500)

        # A membership change under the same churn.
        cluster.failures.crash_node("pg0-f")
        db.drive(cluster.replace_segment(0, "pg0-f"))
        write_block("phase3", 100)

        # Promotion to the replica, then final verification of everything.
        cluster.run_for(200)
        cluster.crash_writer()
        new_writer, recovery = cluster.promote_replica("r1")
        db = Session(new_writer)
        db.drive(recovery)
        mismatches = [
            key for key, value in oracle.items() if db.get(key) != value
        ]
        assert mismatches == []
        # The tree survived ~400 committed transactions, churn, two
        # recoveries, and a membership change structurally intact.
        leaves = db.drive(new_writer.btree.check_structure())
        assert leaves >= 2
        stats = new_writer.stats
        assert stats.recoveries == 1

    def test_sustained_mixed_workload_with_replica_reads(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=425))
        cluster.add_replica("r1")
        generator = WorkloadGenerator(profile("read_write"), seed=425)
        runner = WorkloadRunner(cluster, generator)
        stats = runner.run_closed_loop(
            clients=6, transactions_per_client=40
        )
        assert stats.committed > 200
        cluster.run_for(100)
        replica = cluster.replicas["r1"]
        assert replica.replica_lag == 0
        # Spot-check writer/replica agreement on a scan.
        db = cluster.session()
        rs = cluster.replica_session("r1")
        writer_rows = db.scan("key00000000", "keyzzzzzzzz")
        replica_rows = rs.scan("key00000000", "keyzzzzzzzz")
        assert writer_rows == replica_rows
