"""Adaptive health cadence + fleet-scale repair campaigns.

Covers the flap-storm fixes and the fleet harness:

- the sparse-traffic regression: the adaptive monitor must cut the
  suspect/recover transition count by >= 10x versus the legacy
  fixed-constant monitor on the same replay;
- adaptive thresholds tracking observed cadence (floor under dense
  traffic, stretched under sparse, clamped at the ceiling);
- PG-wide quiet suppresses both suspicion and confirmation (workload
  idle must not kill anybody);
- detection still works under sparse traffic (slower, never never);
- hedge/timeout history is bounded on intake, not only on tick;
- terminal outcomes (stalled / rolled back) land in the resolution
  distribution so fleet MTTR is not survivorship-biased;
- >= 8 concurrent per-PG repairs plus a same-PG double fault on a live
  10-PG cluster, with per-PG serialization, monotonic watermark floors,
  and the four audited repair invariants all holding.
"""

from __future__ import annotations

import pytest

from repro import AuroraCluster
from repro.audit import Auditor
from repro.db.cluster import ClusterConfig
from repro.repair import (
    REPLACED,
    ROLLED_BACK,
    STALLED,
    HealthConfig,
    HealthMonitor,
    LatencyStats,
    RepairConfig,
    SegmentHealth,
    percentile,
)
from repro.repair.metrics import RepairRecord, RepairSummary, summarize_repairs
from repro.sim.events import EventLoop

MEMBERS = [f"pg0-{c}" for c in "abcdef"]


class _FakeMembership:
    def __init__(self, members):
        self.members = frozenset(members)


class _FakePlacement:
    def __init__(self, pg_index):
        self.pg_index = pg_index


class _FakeMetadata:
    def __init__(self, members):
        self._members = list(members)

    def pg_indexes(self):
        return [0]

    def membership(self, pg_index):
        return _FakeMembership(self._members)

    def placement(self, segment_id):
        return _FakePlacement(0)


def _monitor(**overrides):
    loop = EventLoop()
    monitor = HealthMonitor(
        loop, _FakeMetadata(MEMBERS), HealthConfig(**overrides)
    )
    monitor.start()
    return loop, monitor


def _sparse_round_robin(loop, monitor, until, period_ms=100.0):
    """One ack every ``period_ms``, rotating through the members: each
    segment is heard from only every ``period_ms * len(MEMBERS)`` ms --
    the keepalive-starved traffic shape that used to storm."""
    i = 0
    while loop.now < until:
        loop.run(until=loop.now + period_ms)
        monitor.note_ack(MEMBERS[i % len(MEMBERS)])
        i += 1


def _transitions(monitor) -> int:
    return (
        monitor.counters["suspected"]
        + monitor.counters["recovered_suspects"]
    )


# ----------------------------------------------------------------------
# Satellite 1: the flap-storm regression
# ----------------------------------------------------------------------
class TestSparseTrafficRegression:
    def test_flap_storm_suppressed_10x(self):
        # Same sparse replay against both monitors.  The legacy
        # fixed-constant monitor flaps every member once per rotation
        # (hundreds of transitions); the adaptive one must stay quiet.
        legacy_loop, legacy = _monitor(adaptive=False)
        _sparse_round_robin(legacy_loop, legacy, until=30_000.0)
        adaptive_loop, adaptive = _monitor()
        _sparse_round_robin(adaptive_loop, adaptive, until=30_000.0)

        assert _transitions(legacy) >= 100, (
            f"replay no longer reproduces the storm: {legacy.counters}"
        )
        assert _transitions(adaptive) < 10, adaptive.counters
        assert _transitions(adaptive) * 10 <= _transitions(legacy)
        # And neither monitor killed anyone: every member kept speaking.
        assert legacy.counters["confirmed_dead"] == 0
        assert adaptive.counters["confirmed_dead"] == 0

    def test_adaptive_threshold_tracks_cadence(self):
        loop, monitor = _monitor()
        cfg = monitor.config
        # Dense traffic: every member acked every 25 ms -> thresholds sit
        # at their floors, detection stays as fast as the legacy monitor.
        t = 0.0
        while t < 1_000.0:
            t += 25.0
            loop.run(until=t)
            for member in MEMBERS:
                monitor.note_ack(member)
        assert monitor.suspect_threshold_ms("pg0-a") == pytest.approx(
            cfg.suspect_silence_ms
        )
        assert monitor.confirm_window_ms("pg0-a") == pytest.approx(
            cfg.confirm_after_ms
        )
        # Sparse traffic stretches both, up to the configured ceilings.
        _sparse_round_robin(loop, monitor, until=10_000.0, period_ms=200.0)
        assert (
            monitor.suspect_threshold_ms("pg0-a") > cfg.suspect_silence_ms
        )
        assert monitor.confirm_window_ms("pg0-a") > cfg.confirm_after_ms
        assert (
            monitor.suspect_threshold_ms("pg0-a")
            <= cfg.max_suspect_silence_ms
        )
        assert monitor.confirm_window_ms("pg0-a") <= cfg.max_confirm_ms

    def test_quiet_pg_suspends_confirmation(self):
        # A member goes silent long enough to be suspected, then the
        # *whole* PG goes quiet (workload idle).  The frontier is stale:
        # confirming the suspect would be judging the observer, not the
        # segment.  The legacy monitor kills it; adaptive must not.
        outcomes = {}
        for adaptive in (False, True):
            loop, monitor = _monitor(adaptive=adaptive)
            peers = [m for m in MEMBERS if m != "pg0-f"]
            t = 0.0
            while t < 500.0:  # everyone healthy, dense
                t += 25.0
                loop.run(until=t)
                for member in MEMBERS:
                    monitor.note_ack(member)
            while t < 800.0:  # pg0-f silent while peers are heard
                t += 25.0
                loop.run(until=t)
                for member in peers:
                    monitor.note_ack(member)
            assert monitor.state_of("pg0-f") is SegmentHealth.SUSPECT
            loop.run(until=t + 10_000.0)  # total silence: workload idle
            outcomes[adaptive] = monitor.counters["confirmed_dead"]
            if adaptive:
                assert monitor.state_of("pg0-f") is SegmentHealth.SUSPECT
        assert outcomes[False] == 1  # the bug this PR fixes
        assert outcomes[True] == 0

    def test_dead_segment_still_detected_under_sparse_traffic(self):
        # Adaptive hysteresis must not turn into blindness: a member that
        # stops speaking while its peers keep the sparse cadence is still
        # confirmed dead -- later than under dense traffic, but surely.
        loop, monitor = _monitor()
        deaths = []
        monitor.on_confirmed_dead.append(
            lambda seg, failed_at, now: deaths.append(seg)
        )
        _sparse_round_robin(loop, monitor, until=5_000.0)
        peers = [m for m in MEMBERS if m != "pg0-f"]
        i = 0
        while loop.now < 40_000.0 and not deaths:
            loop.run(until=loop.now + 100.0)
            monitor.note_ack(peers[i % len(peers)])
            i += 1
        assert deaths == ["pg0-f"]
        assert monitor.state_of("pg0-f") is SegmentHealth.DEAD
        for peer in peers:
            assert monitor.state_of(peer) is not SegmentHealth.DEAD


# ----------------------------------------------------------------------
# Satellite 2: bounded signal history
# ----------------------------------------------------------------------
class TestBoundedBurstHistory:
    def test_hedge_and_timeout_history_pruned_on_intake(self):
        loop, monitor = _monitor()
        loop.run(until=50.0)  # let the first tick create segment states
        entry = monitor._states["pg0-f"]
        window = monitor.config.burst_window_ms
        monitor.stop()  # no more sweeps: intake must prune by itself
        t = loop.now
        for _ in range(400):
            t += 50.0
            loop.run(until=t)
            monitor.note_hedge("pg0-f")
            monitor.note_peer_timeout("pg0-f")
            bound = window / 50.0 + 1
            assert len(entry.hedges) <= bound
            assert len(entry.timeouts) <= bound
        # 400 signals went in; only the burst window's worth remains.
        assert len(entry.hedges) <= window / 50.0 + 1
        assert entry.hedges[0] >= loop.now - window


# ----------------------------------------------------------------------
# Satellite 3: no survivorship bias in fleet MTTR
# ----------------------------------------------------------------------
class TestResolutionDistributions:
    def _record(self, segment, outcome, finished_at):
        record = RepairRecord(
            pg_index=0, segment_id=segment, failed_at=100.0,
            confirmed_at=600.0,
        )
        record.began_at = 610.0
        record.finished_at = finished_at
        record.outcome = outcome
        return record

    def test_terminal_outcomes_land_in_resolution(self):
        replaced = self._record("pg0-a", REPLACED, 1_100.0)
        rolled = self._record("pg0-b", ROLLED_BACK, 2_100.0)
        stalled = self._record("pg0-c", STALLED, 20_100.0)
        summary = summarize_repairs([replaced, rolled, stalled])
        # MTTR stays replacement-only...
        assert summary.mttr.samples == [1_000.0]
        # ...but resolution sees every terminal outcome: the stalled
        # attempt is the tail that a finalized-only view would hide.
        assert sorted(summary.resolution.samples) == [
            1_000.0, 2_000.0, 20_000.0,
        ]
        assert summary.resolution.max == pytest.approx(20_000.0)
        assert rolled.mttr_ms is None
        assert rolled.resolution_ms == pytest.approx(2_000.0)
        assert stalled.resolution_ms == pytest.approx(20_000.0)

    def test_active_records_have_no_resolution(self):
        active = RepairRecord(
            pg_index=0, segment_id="pg0-a", failed_at=100.0,
            confirmed_at=600.0,
        )
        assert active.resolution_ms is None
        summary = summarize_repairs([active])
        assert summary.resolution.count == 0
        assert summary.active == 1

    def test_percentiles_and_merge(self):
        stats = LatencyStats(samples=[float(v) for v in range(1, 101)])
        assert stats.p50 == pytest.approx(50.0)
        assert stats.p95 == pytest.approx(95.0)
        assert stats.max == pytest.approx(100.0)
        assert percentile([], 95) is None
        other = LatencyStats(samples=[500.0])
        stats.merge(other)
        assert stats.count == 101
        assert stats.max == pytest.approx(500.0)

    def test_summary_merge_aggregates_fleet(self):
        a = summarize_repairs(
            [self._record("pg0-a", REPLACED, 1_100.0)]
        )
        b = summarize_repairs(
            [self._record("pg0-b", STALLED, 9_100.0)]
        )
        fleet = RepairSummary()
        fleet.merge(a)
        fleet.merge(b)
        assert fleet.confirmed == 2
        assert fleet.replaced == 1
        assert fleet.stalled == 1
        assert fleet.resolution.count == 2
        assert fleet.resolution.max == pytest.approx(9_000.0)

    def test_peak_concurrent_counts_overlap(self):
        # a overlaps b; c starts the instant a ends (no overlap with a).
        a = self._record("pg0-a", REPLACED, 1_000.0)
        b = self._record("pg0-b", REPLACED, 1_500.0)
        c = self._record("pg0-c", REPLACED, 2_000.0)
        a.began_at, b.began_at, c.began_at = 600.0, 900.0, 1_000.0
        summary = summarize_repairs([a, b, c])
        assert summary.peak_concurrent == 2


# ----------------------------------------------------------------------
# Satellite 4: fleet-scale campaign on a live cluster
# ----------------------------------------------------------------------
class TestFleetScaleRepairs:
    def test_concurrent_pg_repairs_with_same_pg_double_fault(self):
        cluster = AuroraCluster.build(
            config=ClusterConfig(seed=11, pg_count=10), seed=11
        )
        auditor = Auditor()
        cluster.arm_auditor(auditor)
        # A modeled bulk-copy time keeps each repair in flight long
        # enough for the storm's repairs to genuinely overlap.
        monitor, planner = cluster.arm_healer(
            repair_config=RepairConfig(baseline_transfer_ms=400.0)
        )
        session = cluster.session()
        for i in range(30):
            session.write(f"seed{i:03d}", i)
        cluster.run_for(500.0)

        # The storm: one permanent kill in each of PGs 1..8, plus a
        # second member of PG 1 (the same-PG double fault).
        killed: list[str] = []
        for pg_index in range(1, 9):
            members = sorted(cluster.metadata.membership(pg_index).members)
            target = members[-1]
            cluster.failures.crash_node(target)
            killed.append(target)
        double = sorted(
            m
            for m in cluster.metadata.membership(1).members
            if m not in killed
        )[0]
        cluster.failures.crash_node(double)
        killed.append(double)

        floors: dict[int, list[int]] = {}
        for step in range(2_500):
            done = sum(
                1 for r in planner.records if r.outcome == REPLACED
            )
            if done >= len(killed) and planner.idle:
                break
            if step % 5 == 0:
                try:
                    session.write(f"k{step:04d}", step)
                except Exception:
                    pass  # chaos-free run, but commits can still time out
            cluster.run_for(10.0)
            for pg_index, floor in planner._floor.items():
                floors.setdefault(pg_index, []).append(floor)

        summary = planner.summary()
        replaced = [r for r in planner.records if r.outcome == REPLACED]
        assert len(replaced) >= len(killed), (
            f"storm not fully repaired: {summary.render_lines()}"
        )
        assert {r.segment_id for r in replaced} >= set(killed)

        # The concurrency the fleet gate demands: >= 8 distinct-PG
        # repairs genuinely in flight at once.
        assert summary.peak_concurrent >= 8, summary.render_lines()

        # Per-PG serialization: within a PG, repairs never overlap.
        by_pg: dict[int, list] = {}
        for record in planner.records:
            if record.began_at is not None:
                by_pg.setdefault(record.pg_index, []).append(record)
        for records in by_pg.values():
            records.sort(key=lambda r: r.began_at)
            for earlier, later in zip(records, records[1:]):
                assert earlier.finished_at is not None
                assert later.began_at >= earlier.finished_at
        # The double fault queued behind the in-flight PG-1 repair.
        pg1 = [r for r in planner.records if r.pg_index == 1]
        assert len(pg1) >= 2
        assert any(
            "queued" in note for r in pg1 for note in r.notes
        )

        # Monotonic watermark floors: the finalize floor per PG never
        # moved backwards at any point during the campaign.
        assert floors
        for pg_index, series in floors.items():
            assert all(
                a <= b for a, b in zip(series, series[1:])
            ), f"floor regressed for pg{pg_index}"

        # Every membership is stable again, no victim is a member, and
        # the four audited repair invariants all held.
        for pg_index in range(10):
            state = cluster.metadata.membership(pg_index)
            assert state.is_stable
            assert not (set(killed) & set(state.members))
        assert all(session.get(f"seed{i:03d}") == i for i in range(30))
        auditor.assert_clean()
