"""Targeted tests for paths the broader suites exercise only incidentally."""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.core.consistency import PGConsistencyTracker
from repro.core.quorum import aurora_v6_config
from repro.errors import ConfigurationError


class TestPutMany:
    def test_put_many_locks_in_deterministic_order(self, cluster):
        db = cluster.session()
        txn = db.begin()
        db.drive(
            cluster.writer.put_many(
                txn, [("b", 2), ("a", 1), ("c", 3)]
            )
        )
        db.commit(txn)
        assert db.scan("a", "c") == [("a", 1), ("b", 2), ("c", 3)]

    def test_put_many_conflict_aborts_cleanly(self, cluster):
        db = cluster.session()
        holder = db.begin()
        db.put(holder, "b", 0)
        victim = db.begin()
        from repro.errors import LockConflictError

        with pytest.raises(LockConflictError):
            db.drive(cluster.writer.put_many(victim, [("a", 1), ("b", 2)]))
        db.rollback(victim)
        db.commit(holder)
        assert db.get("b") == 0
        assert db.get("a") is None


class TestDriverFlushAll:
    def test_flush_all_forces_pending_boxcars_out(self):
        from repro.db.driver import BoxcarMode

        config = ClusterConfig(seed=101)
        config.instance.driver.boxcar_mode = BoxcarMode.TIMEOUT
        config.instance.driver.boxcar_timeout = 10_000.0  # never on its own
        cluster = AuroraCluster.build(config)
        # build() already settles the bootstrap via the long timer... so
        # measure batches before/after an explicit flush of new traffic.
        db = cluster.session()
        txn = db.begin()
        process = db.spawn(cluster.writer.put(txn, "k", 1))
        cluster.run_for(1.0)
        assert process.finished
        before = cluster.writer.driver.stats.batches_sent
        cluster.writer.driver.flush_all()
        assert cluster.writer.driver.stats.batches_sent > before


class TestTrackerIntrospection:
    def test_member_scls_snapshot_is_a_copy(self):
        tracker = PGConsistencyTracker(0, aurora_v6_config())
        member = sorted(tracker.config.members)[0]
        tracker.record_ack(member, 9)
        snapshot = tracker.member_scls
        snapshot[member] = 999
        assert tracker.member_scls[member] == 9


class TestReplicaStreamEdgeCases:
    def test_duplicate_chunks_are_idempotent(self, cluster):
        """Re-delivering already-applied chunks changes nothing."""
        from repro.db.replication import MTRChunk, ReplicationFrame

        replica = cluster.add_replica("r1")
        db = cluster.session()

        # Capture the real replication chunks off the wire (the stream is
        # boxcarred, so chunks may arrive inside a ReplicationFrame).
        captured = []

        def _tap(m):
            items = (
                m.payload.items
                if isinstance(m.payload, ReplicationFrame)
                else (m.payload,)
            )
            captured.extend(i for i in items if isinstance(i, MTRChunk))

        cluster.network.add_tap(_tap)
        db.write("a", 1)
        cluster.run_for(20)
        assert captured
        applied_before = replica.stats.chunks_applied
        value_before = cluster.replica_session("r1").get("a")
        for chunk in captured:  # duplicate delivery
            replica._on_chunk(chunk)
        assert replica.stats.chunks_applied == applied_before
        assert cluster.replica_session("r1").get("a") == value_before == 1

    def test_offline_replica_misses_then_reattaches(self, cluster):
        db = cluster.session()
        replica = cluster.add_replica("r1")
        db.write("before", 1)
        cluster.run_for(20)
        cluster.network.fail_node("r1")
        db.write("while-down", 2)
        cluster.run_for(20)
        cluster.network.restore_node("r1")
        # The stream has a gap the replica can never fill by itself;
        # re-attach (the cluster-level remedy) restores service.
        cluster.remove_replica("r1")
        cluster.replicas["r1"] = replica
        replica.start()
        replica.attach(
            next_expected_lsn=cluster.writer.allocator.next_lsn,
            vdl=cluster.writer.vdl,
            pg_frontiers=cluster.writer.frontiers.frontier_at(
                cluster.writer.vdl
            ),
            commit_history=cluster.writer.registry.known_commits(),
        )
        cluster.writer.publisher.attach_replica("r1")
        rs = cluster.replica_session("r1")
        assert rs.get("while-down") == 2
        assert rs.get("before") == 1


class TestBaselineApplicationToTail:
    def test_tail_segment_hydration_skips_blocks(self):
        from repro.storage.messages import BaselineResponse
        from repro.storage.segment import SegmentKind

        cluster = AuroraCluster.build(ClusterConfig(seed=102, full_tail=True))
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(8)})
        cluster.run_for(20)
        # Build a fresh tail candidate and hydrate it from a full peer.
        cluster.failures.crash_node("pg0-b")  # a tail slot
        candidate_id = cluster.begin_segment_replacement(0, "pg0-b")
        candidate = cluster.nodes[candidate_id]
        assert candidate.segment.kind is SegmentKind.TAIL
        db.drive(cluster.hydrate_segment(0, candidate_id))
        cluster.finalize_segment_replacement(0, "pg0-b")
        assert candidate.segment.blocks == {}  # tails never materialize
        tracker = cluster.writer.driver.pg_trackers[0]
        assert candidate.segment.scl >= tracker.pgcl


class TestWorkloadStatsEdges:
    def test_percentile_of_empty_series(self):
        from repro.workloads.generator import RunnerStats

        stats = RunnerStats()
        assert stats.percentile([], 0.99) == 0.0
        assert stats.summary()["p50_ms"] == 0.0
        assert stats.summary()["peak_to_average"] == 0.0


class TestGrowVolumeGuards:
    def test_instance_refuses_addressing_beyond_geometry(self):
        config = ClusterConfig(seed=103, blocks_per_pg=12)
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        from repro.errors import SimulationError, VolumeGeometryError

        with pytest.raises((VolumeGeometryError, SimulationError)):
            for i in range(500):  # overflow the 12-block volume
                db.write(f"key{i:04d}", i)

    def test_grow_then_fill_succeeds(self):
        config = ClusterConfig(seed=104, blocks_per_pg=12)
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        cluster.grow_volume(3)
        for i in range(300):
            db.write(f"key{i:04d}", i)
        assert db.get("key0250") == 250


class TestTombstoneReplication:
    def test_deletes_replicate_to_replicas(self, cluster):
        db = cluster.session()
        cluster.add_replica("r1")
        db.write("gone", 1)
        cluster.run_for(20)
        rs = cluster.replica_session("r1")
        assert rs.get("gone") == 1
        db.remove("gone")
        cluster.run_for(20)
        assert rs.get("gone") is None
        assert db.get("gone") is None

    def test_delete_survives_crash_recovery(self, cluster):
        from repro.db.session import Session

        db = cluster.session()
        db.write("gone", 1)
        db.remove("gone")
        cluster.crash_writer()
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)
        assert db.get("gone") is None
