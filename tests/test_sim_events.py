"""Unit tests for the event loop and futures."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventLoop, Future, gather


class TestEventLoop:
    def test_starts_at_time_zero(self):
        assert EventLoop().now == 0.0

    def test_runs_scheduled_callback_at_its_time(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, fired.append, "a")
        loop.run()
        assert fired == ["a"]
        assert loop.now == 5.0

    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, fired.append, "late")
        loop.schedule(1.0, fired.append, "early")
        loop.schedule(2.0, fired.append, "middle")
        loop.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_events_fire_in_scheduling_order(self):
        loop = EventLoop()
        fired = []
        for tag in range(10):
            loop.schedule(1.0, fired.append, tag)
        loop.run()
        assert fired == list(range(10))

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule(-1.0, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, fired.append, "no")
        loop.schedule(2.0, fired.append, "yes")
        event.cancel()
        loop.run()
        assert fired == ["yes"]

    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, "a")
        loop.schedule(10.0, fired.append, "b")
        loop.run(until=5.0)
        assert fired == ["a"]
        assert loop.now == 5.0
        loop.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_even_with_no_events(self):
        loop = EventLoop()
        loop.run(until=42.0)
        assert loop.now == 42.0

    def test_callbacks_can_schedule_more_events(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.schedule(1.0, chain, n + 1)

        loop.schedule(1.0, chain, 0)
        loop.run()
        assert fired == [0, 1, 2, 3]
        assert loop.now == 4.0

    def test_event_budget_backstop(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.0, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="event budget"):
            loop.run(max_events=1000)

    def test_pending_counts_uncancelled(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert loop.pending == 2
        event.cancel()
        assert loop.pending == 1

    def test_step_returns_false_when_empty(self):
        assert EventLoop().step() is False


class TestFuture:
    def test_resolves_with_value(self):
        loop = EventLoop()
        future = Future(loop)
        future.set_result(42)
        assert future.done
        assert future.result() == 42

    def test_result_before_resolution_raises(self):
        future = Future(EventLoop())
        with pytest.raises(SimulationError):
            future.result()

    def test_double_resolution_rejected(self):
        future = Future(EventLoop())
        future.set_result(1)
        with pytest.raises(SimulationError):
            future.set_result(2)

    def test_exception_propagates_through_result(self):
        future = Future(EventLoop())
        future.set_exception(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            future.result()

    def test_callback_fires_on_resolution(self):
        future = Future(EventLoop())
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == []
        future.set_result("x")
        assert seen == ["x"]

    def test_callback_added_after_resolution_fires_immediately(self):
        future = Future(EventLoop())
        future.set_result("x")
        seen = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == ["x"]


class TestGather:
    def test_gathers_all_results_in_order(self):
        loop = EventLoop()
        futures = [Future(loop) for _ in range(3)]
        combined = gather(loop, futures)
        futures[2].set_result("c")
        futures[0].set_result("a")
        assert not combined.done
        futures[1].set_result("b")
        assert combined.result() == ["a", "b", "c"]

    def test_empty_gather_resolves_immediately(self):
        loop = EventLoop()
        assert gather(loop, []).result() == []

    def test_first_exception_wins(self):
        loop = EventLoop()
        futures = [Future(loop) for _ in range(2)]
        combined = gather(loop, futures)
        futures[0].set_exception(RuntimeError("bad"))
        with pytest.raises(RuntimeError, match="bad"):
            combined.result()


class TestHotLoopOptimisations:
    """The engine fast path: O(1) pending, lazy-deletion compaction."""

    def test_pending_is_a_live_counter(self):
        loop = EventLoop()
        events = [loop.schedule(float(i + 1), lambda: None)
                  for i in range(10)]
        assert loop.pending == 10
        events[3].cancel()
        events[7].cancel()
        assert loop.pending == 8
        events[3].cancel()  # double-cancel must not double-decrement
        assert loop.pending == 8
        loop.run()
        assert loop.pending == 0

    def test_events_executed_counts_fired_callbacks_only(self):
        loop = EventLoop()
        kept = [loop.schedule(1.0, lambda: None) for _ in range(5)]
        doomed = [loop.schedule(2.0, lambda: None) for _ in range(5)]
        for event in doomed:
            event.cancel()
        loop.run()
        assert loop.events_executed == len(kept)

    def test_mass_cancellation_compacts_the_heap(self):
        loop = EventLoop()
        keep = [loop.schedule(float(i + 1), lambda: None)
                for i in range(100)]
        doomed = [loop.schedule(1000.0 + i, lambda: None)
                  for i in range(500)]
        assert len(loop._heap) == 600
        for event in doomed:
            event.cancel()
        # Compaction swept the garbage without waiting for the pop path
        # to reach it: the heap never holds a stale majority, so at most
        # half of 500 cancellations can still linger.
        assert len(loop._heap) < 600 - 250
        assert loop._stale * 2 <= len(loop._heap)
        assert loop.pending == len(keep)
        loop.run()
        assert loop.events_executed == len(keep)

    def test_compaction_preserves_firing_order(self):
        loop = EventLoop()
        fired = []
        for i in range(300):
            loop.schedule(float(i), fired.append, i)
        doomed = [loop.schedule(1000.0 + i, lambda: None)
                  for i in range(400)]
        for event in doomed:
            event.cancel()
        loop.run()
        assert fired == list(range(300))

    def test_cancel_after_fire_is_a_noop(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        loop.run()
        event.cancel()  # already fired: must not corrupt the counters
        assert loop.pending == 0
        loop.schedule(2.0, lambda: None)
        assert loop.pending == 1

    def test_call_soon_runs_at_current_time(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: None)
        loop.run()
        fired = []
        loop.call_soon(fired.append, "now")
        assert loop.pending == 1
        loop.run()
        assert fired == ["now"] and loop.now == 5.0

    def test_event_slots_reject_ad_hoc_attributes(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        with pytest.raises(AttributeError):
            event.extra = 1  # __slots__: the hot path stays compact
