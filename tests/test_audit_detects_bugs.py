"""The auditor must actually catch bugs, not just stay quiet.

Each test plants a deliberate protocol bug -- a tracker subclass that
drops a guard the paper requires, or a direct mutation of protocol
state -- drives it through the REAL hook sites, and asserts the auditor
reports the violation under the correct invariant name.  The invariant
names are the public contract documented in :mod:`repro.audit.auditor`.
"""

import dataclasses

import pytest

from repro import AuroraCluster
from repro.audit import Auditor
from repro.core.commit import CommitQueue
from repro.core.consistency import (
    PGConsistencyTracker,
    SegmentChainTracker,
    VolumeConsistencyTracker,
)
from repro.core.epochs import EpochRegistry, EpochStamp
from repro.core.lsn import NULL_LSN
from repro.core.membership import MembershipState, verify_transition_safety
from repro.core.quorum import QuorumConfig, QuorumLeaf, v6_config
from repro.errors import MembershipError
from repro.storage.volume import VolumeGeometry

MEMBERS = [f"seg-{c}" for c in "abcdef"]


@pytest.fixture
def auditor():
    return Auditor()


def _only_invariants(auditor):
    return [v.invariant for v in auditor.violations]


# ----------------------------------------------------------------------
# SCL
# ----------------------------------------------------------------------
class BuggyRebaseChain(SegmentChainTracker):
    """Bug: rebase drops the only-forward guard (section 3.1)."""

    def rebase(self, baseline):
        old = self._scl
        self._scl = baseline
        if self.audit_probe is not None:
            self.audit_probe.on_scl(self.audit_owner, old, self._scl, "rebase")
        return True


def test_scl_regression_is_flagged(auditor):
    chain = BuggyRebaseChain()
    chain.audit_probe, chain.audit_owner = auditor, "seg-a"
    chain.offer(1, NULL_LSN)
    chain.offer(2, 1)
    chain.offer(3, 2)
    assert chain.scl == 3
    chain.rebase(1)  # the bug fires: SCL moves backwards outside truncation
    assert _only_invariants(auditor) == ["scl-monotonic"]
    assert "seg-a" in auditor.violations[0].subject


def test_truncation_below_durable_point_is_flagged(auditor):
    auditor.register_segment("seg-a", 0)
    pg = PGConsistencyTracker(
        0, v6_config(MEMBERS), audit_probe=auditor, audit_owner="writer"
    )
    for member in MEMBERS[:4]:
        pg.record_ack(member, 4)  # 4/6 durable at LSN 4
    assert pg.pgcl == 4

    chain = SegmentChainTracker()
    chain.audit_probe, chain.audit_owner = auditor, "seg-a"
    chain.offer(1, NULL_LSN)
    # Target 2 with an unbounded window annuls everything above it, and PG
    # 0's proven durable point is 4 -- committed data gone.
    chain.truncate(2)
    assert "scl-truncate-durable" in _only_invariants(auditor)


def test_late_truncation_below_new_generation_durable_is_clean(auditor):
    """A TruncateRequest delivered late annuls only its window.

    The PG's durable point has since advanced into a post-recovery
    generation (above the truncation range); the bounded window does not
    touch it, so no violation.
    """
    auditor.register_segment("seg-a", 0)
    pg = PGConsistencyTracker(
        0, v6_config(MEMBERS), audit_probe=auditor, audit_owner="writer"
    )
    for member in MEMBERS[:4]:
        pg.record_ack(member, 2_000_455)  # new-generation durable point
    chain = SegmentChainTracker()
    chain.audit_probe, chain.audit_owner = auditor, "seg-a"
    chain.offer(1_000_453, NULL_LSN)
    chain.truncate(1_000_453, last=2_000_453)  # window stops below 2_000_455
    assert auditor.ok


def test_truncation_at_durable_point_is_clean(auditor):
    auditor.register_segment("seg-a", 0)
    pg = PGConsistencyTracker(
        0, v6_config(MEMBERS), audit_probe=auditor, audit_owner="writer"
    )
    for member in MEMBERS[:4]:
        pg.record_ack(member, 4)
    chain = SegmentChainTracker()
    chain.audit_probe, chain.audit_owner = auditor, "seg-a"
    chain.truncate(4)
    assert auditor.ok


# ----------------------------------------------------------------------
# PGCL
# ----------------------------------------------------------------------
class BuggyPGTracker(PGConsistencyTracker):
    """Bug: recompute forgets the PGCL floor when the config is swapped."""

    def _recompute(self):
        best = NULL_LSN
        for candidate in set(self._member_scls.values()):
            durable_at = {
                m for m, scl in self._member_scls.items() if scl >= candidate
            }
            if candidate > best and self._config.write_satisfied(durable_at):
                best = candidate
        if best != self._pgcl:
            old = self._pgcl
            self._pgcl = best
            if self.audit_probe is not None:
                self.audit_probe.on_pgcl(
                    self.audit_owner, self.pg_index, old, best
                )
            return True
        return False


def test_pgcl_regression_on_config_swap_is_flagged(auditor):
    tracker = BuggyPGTracker(
        0, v6_config(MEMBERS), audit_probe=auditor, audit_owner="writer"
    )
    for member in MEMBERS[:4]:
        tracker.record_ack(member, 10)
    assert tracker.pgcl == 10
    # Swap to a config over mostly-fresh members (a membership change);
    # the buggy recompute re-derives PGCL from scratch and regresses.
    fresh = MEMBERS[4:] + ["seg-g", "seg-h", "seg-i"]
    tracker.set_config(
        QuorumConfig(
            write_expr=QuorumLeaf.of(fresh, 4),
            read_expr=QuorumLeaf.of(fresh, 2),
        )
    )
    assert "pgcl-monotonic" in _only_invariants(auditor)


# ----------------------------------------------------------------------
# Commit acknowledgement
# ----------------------------------------------------------------------
class BuggyCommitQueue(CommitQueue):
    """Bug: acknowledges immediately, ignoring the VCL gate (section 2.3)."""

    def enqueue(self, scn, ack, now=0.0, tag=None):
        self.stats.enqueued += 1
        self.stats.acknowledged += 1
        if self.audit_probe is not None:
            self.audit_probe.on_commit_ack(self.audit_owner, scn, self._last_vcl)
        ack()


def test_commit_ack_before_durability_is_flagged(auditor):
    queue = BuggyCommitQueue()
    queue.audit_probe, queue.audit_owner = auditor, "writer"
    queue.on_vcl_advance(5)
    acked = []
    queue.enqueue(10, lambda: acked.append(10))
    assert acked == [10]  # the bug really did release the commit
    assert _only_invariants(auditor) == ["commit-ack-durable"]


def test_commit_ack_above_vdl_is_flagged(auditor):
    # A correct queue releases at SCN <= VCL, but the auditor also holds
    # acks to the tighter paper rule: SCN <= VDL at ack time.
    volume = VolumeConsistencyTracker()
    volume.audit_probe, volume.audit_owner = auditor, "writer"
    volume.register(1, 0, mtr_end=True)
    volume.register(2, 0, mtr_end=False)  # open MTR tail: VDL stays at 1
    volume.on_pgcl(0, 2)
    assert (volume.vcl, volume.vdl) == (2, 1)

    queue = CommitQueue()
    queue.audit_probe, queue.audit_owner = auditor, "writer"
    queue.enqueue(2, lambda: None)
    queue.on_vcl_advance(2)  # SCN 2 <= VCL 2, but above VDL 1
    assert _only_invariants(auditor) == ["commit-ack-durable"]
    assert "VDL" in auditor.violations[0].detail


def test_recovery_below_acked_commit_is_flagged(auditor):
    volume = VolumeConsistencyTracker()
    volume.audit_probe, volume.audit_owner = auditor, "writer"
    volume.register(5, 0, mtr_end=True)
    volume.on_pgcl(0, 5)

    queue = CommitQueue()
    queue.audit_probe, queue.audit_owner = auditor, "writer"
    queue.on_vcl_advance(5)
    queue.enqueue(5, lambda: None)  # acked: SCN 5 is durable
    assert auditor.ok

    auditor.on_instance_crash("writer")
    volume.reset(3)  # bug in the recovery caller: recovered point lost SCN 5
    assert "durable-commit-lost" in _only_invariants(auditor)


class BuggyResetVolume(VolumeConsistencyTracker):
    """Bug: reset skips the VDL <= VCL validation."""

    def reset(self, vcl, vdl=None):
        old_vcl, old_vdl = self._vcl, self._vdl
        self._chain.clear()
        self._pgcls.clear()
        self._vcl = vcl
        self._vdl = vdl if vdl is not None else vcl
        if self.audit_probe is not None:
            self.audit_probe.on_volume_points(
                self.audit_owner, old_vcl, old_vdl, self._vcl, self._vdl,
                "reset",
            )


def test_vdl_above_vcl_is_flagged(auditor):
    volume = BuggyResetVolume()
    volume.audit_probe, volume.audit_owner = auditor, "writer"
    volume.reset(5, 7)
    assert "vdl-le-vcl" in _only_invariants(auditor)


# ----------------------------------------------------------------------
# Epochs
# ----------------------------------------------------------------------
class BuggyEpochRegistry(EpochRegistry):
    """Bug: adopts whatever stamp it is handed, even older ones."""

    def advance(self, target):
        current = self._current
        self._current = target
        if target != current and self.audit_probe is not None:
            self.audit_probe.on_epoch_change(self.audit_owner, current, target)


def test_epoch_regression_is_flagged(auditor):
    registry = BuggyEpochRegistry()
    registry.audit_probe, registry.audit_owner = auditor, "seg-a"
    registry.advance(EpochStamp(volume=2, membership=3, geometry=2))
    assert auditor.ok
    registry.advance(EpochStamp(volume=2, membership=2, geometry=2))
    assert _only_invariants(auditor) == ["epoch-monotonic"]


class LaxEpochRegistry(EpochRegistry):
    """Bug: logs the stale epoch but services the request anyway."""

    def check_and_learn(self, presented):
        current = self._current
        for kind in ("volume", "membership", "geometry"):
            have = getattr(current, kind)
            got = getattr(presented, kind)
            if got < have:
                self.rejections += 1
                if self.audit_probe is not None:
                    self.audit_probe.on_stale_epoch(
                        self.audit_owner, kind, got, have, rejected=False
                    )
                return  # BUG: should raise StaleEpochError here


def test_serviced_stale_epoch_is_flagged(auditor):
    registry = LaxEpochRegistry(EpochStamp(volume=3, membership=3, geometry=3))
    registry.audit_probe, registry.audit_owner = auditor, "seg-a"
    registry.check_and_learn(EpochStamp(volume=2, membership=3, geometry=3))
    assert _only_invariants(auditor) == ["stale-epoch-accepted"]


def test_rejected_stale_epoch_is_clean(auditor):
    registry = EpochRegistry(EpochStamp(volume=3, membership=3, geometry=3))
    registry.audit_probe, registry.audit_owner = auditor, "seg-a"
    with pytest.raises(Exception):
        registry.check_and_learn(EpochStamp(volume=2, membership=3,
                                            geometry=3))
    assert auditor.ok  # a *rejected* stale epoch is correct behaviour


# ----------------------------------------------------------------------
# Membership and geometry
# ----------------------------------------------------------------------
def test_membership_transition_without_epoch_bump_is_flagged(auditor):
    before = MembershipState.initial(MEMBERS)
    after = before.begin_replacement("seg-a", "seg-a.1")
    forged = dataclasses.replace(after, epoch=before.epoch)
    with pytest.raises(MembershipError):
        verify_transition_safety(before, forged, audit_probe=auditor)
    # The auditor flags it independently of (and before) the raise.
    assert "membership-epoch" in _only_invariants(auditor)


def test_unsafe_quorum_config_install_is_flagged(auditor):
    tracker = PGConsistencyTracker(
        0, v6_config(MEMBERS), audit_probe=auditor, audit_owner="writer"
    )
    assert auditor.ok
    # Disjoint read and write sets: reads can miss every write.
    broken = QuorumConfig(
        write_expr=QuorumLeaf.of(["w1", "w2"], 2),
        read_expr=QuorumLeaf.of(["r1", "r2"], 2),
    )
    tracker.set_config(broken)
    assert "quorum-overlap" in _only_invariants(auditor)


def test_geometry_growth_without_epoch_bump_is_flagged(auditor):
    geometry = VolumeGeometry(blocks_per_pg=16, pg_count=1)
    geometry.audit_probe = auditor
    geometry.grow()
    assert auditor.ok
    # Bug: an operator path that grows the volume but resets the epoch.
    geometry.geometry_epoch = 1
    geometry.grow()
    assert "geometry-epoch" in _only_invariants(auditor)


# ----------------------------------------------------------------------
# Replicas (full-cluster: the hook sites are the real instance paths)
# ----------------------------------------------------------------------
@pytest.fixture
def cluster_with_replica():
    cluster = AuroraCluster.build(seed=19)
    auditor = Auditor()
    cluster.arm_auditor(auditor)
    replica = cluster.add_replica("replica-1")
    db = cluster.session()
    for i in range(5):
        db.write(f"k{i}", i)
    cluster.run_for(100)
    assert auditor.ok
    return cluster, auditor, replica


def test_replica_view_above_vdl_is_flagged(cluster_with_replica):
    _cluster, auditor, replica = cluster_with_replica
    # Bug: the applied-VDL tracker runs ahead of the writer's advertised
    # durable point; the next read view exposes non-durable data.
    replica._applied_vdl = replica._writer_vdl_seen + 100
    view = replica.open_view()
    assert view.read_point > replica._writer_vdl_seen
    assert "replica-read-above-vdl" in _only_invariants(auditor)


def test_replica_apply_above_vdl_is_flagged(cluster_with_replica):
    cluster, auditor, replica = cluster_with_replica

    def buggy_drain():
        # Bug: the VDL gate of _drain_chunks is gone -- chunks apply as
        # soon as they arrive, even past the writer's advertised VDL.
        while replica._pending_chunks:
            import heapq

            _first, chunk = heapq.heappop(replica._pending_chunks)
            replica._apply_chunk(chunk)
            replica._next_expected_lsn = chunk.records[-1].lsn + 1

    replica._drain_chunks = buggy_drain
    replica._writer_vdl_seen = 0  # pretend no durability news ever arrived
    db = cluster.session()
    db.write("late", "value")
    cluster.run_for(100)
    assert "replica-apply-above-vdl" in _only_invariants(auditor)


# ----------------------------------------------------------------------
# Reporting machinery
# ----------------------------------------------------------------------
def test_assert_clean_raises_with_named_invariant(auditor):
    auditor.flag("commit-ack-durable", "writer", "synthetic")
    with pytest.raises(AssertionError, match="commit-ack-durable"):
        auditor.assert_clean()
    assert not auditor.ok
    assert auditor.violations[0].tail == ()


def test_violation_carries_event_tail(auditor):
    auditor.on_scl("seg-a", 0, 3, "chain")
    auditor.flag("scl-monotonic", "seg-a", "synthetic")
    assert any("scl seg-a 0->3" in line for line in
               auditor.violations[0].tail)
