"""Units for the shared retry/backoff policy (repro.core.retry).

Three subsystems (repair hydration, driver epoch resubmission, WAN
retransmission) walk the same exponential-backoff ladder; these tests
pin its shape so a tweak for one caller cannot silently change the
others' pacing.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.retry import Backoff, RetryPolicy
from repro.errors import ConfigurationError


class TestRetryPolicy:
    def test_delay_ladder_doubles_then_caps(self):
        policy = RetryPolicy(base_ms=20.0, cap_ms=160.0, multiplier=2.0)
        delays = [policy.delay_for(i) for i in range(6)]
        assert delays == [20.0, 40.0, 80.0, 160.0, 160.0, 160.0]

    def test_immediate_never_waits(self):
        policy = RetryPolicy.immediate()
        assert [policy.delay_for(i) for i in range(4)] == [0.0] * 4

    def test_multiplier_one_is_constant(self):
        policy = RetryPolicy(base_ms=50.0, cap_ms=500.0, multiplier=1.0)
        assert [policy.delay_for(i) for i in range(3)] == [50.0] * 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_ms": -1.0},
            {"cap_ms": -1.0},
            {"base_ms": 100.0, "cap_ms": 50.0},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_shapes_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay_for(-1)

    @given(
        base=st.floats(min_value=0.0, max_value=1000.0),
        extra=st.floats(min_value=0.0, max_value=1000.0),
        multiplier=st.floats(min_value=1.0, max_value=4.0),
        attempts=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_ladder_is_monotone_and_capped(
        self, base, extra, multiplier, attempts
    ):
        policy = RetryPolicy(
            base_ms=base, cap_ms=base + extra, multiplier=multiplier
        )
        delays = [policy.delay_for(i) for i in range(attempts + 1)]
        assert all(d <= policy.cap_ms for d in delays)
        assert all(b >= a for a, b in zip(delays, delays[1:]))


class TestBackoff:
    def test_walks_policy_sequence(self):
        backoff = Backoff(RetryPolicy(base_ms=10.0, cap_ms=40.0))
        assert [backoff.next_delay() for _ in range(4)] == [
            10.0, 20.0, 40.0, 40.0,
        ]

    def test_reset_restarts_from_base(self):
        backoff = Backoff(RetryPolicy(base_ms=10.0, cap_ms=40.0))
        backoff.next_delay()
        backoff.next_delay()
        backoff.reset()
        assert backoff.next_delay() == 10.0

    def test_peek_does_not_consume(self):
        backoff = Backoff(RetryPolicy(base_ms=10.0, cap_ms=40.0))
        assert backoff.peek() == 10.0
        assert backoff.peek() == 10.0
        assert backoff.next_delay() == 10.0
        assert backoff.peek() == 20.0

    def test_jitter_requires_rng(self):
        backoff = Backoff(RetryPolicy(jitter=0.5))
        with pytest.raises(ConfigurationError):
            backoff.next_delay()

    def test_jitter_free_policy_never_samples_rng(self):
        # Essential for byte-identical seeded replays: a jitter-free
        # Backoff must not perturb a caller's deterministic stream.
        rng = random.Random(7)
        before = rng.getstate()
        backoff = Backoff(RetryPolicy(base_ms=5.0, cap_ms=20.0), rng=rng)
        for _ in range(5):
            backoff.next_delay()
        assert rng.getstate() == before

    @given(seed=st.integers(0, 2**16), jitter=st.floats(0.05, 0.9))
    @settings(max_examples=50, deadline=None)
    def test_jitter_stays_within_spread(self, seed, jitter):
        policy = RetryPolicy(base_ms=100.0, cap_ms=800.0, jitter=jitter)
        backoff = Backoff(policy, rng=random.Random(seed))
        for attempt in range(6):
            nominal = policy.delay_for(attempt)
            delay = backoff.next_delay()
            assert nominal * (1 - jitter) <= delay <= nominal * (1 + jitter)
