"""Tests for logical replication to non-Aurora systems (section 3.2)."""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.db.logical_replication import (
    ChangeKind,
    LogicalPublisher,
    LogicalTransaction,
    RowChange,
    TableSubscriber,
    TransformingSubscriber,
)
from repro.db.session import Session


class TestLogicalPublisherUnit:
    def test_publishes_net_effects_in_key_order(self):
        publisher = LogicalPublisher()
        seen = []
        publisher.subscribe(seen.append)
        publisher.stage(1, RowChange(ChangeKind.UPSERT, "b", 1))
        publisher.stage(1, RowChange(ChangeKind.UPSERT, "a", 2))
        publisher.stage(1, RowChange(ChangeKind.UPSERT, "b", 3))  # supersedes
        publisher.publish_commit(1, scn=10)
        assert len(seen) == 1
        txn = seen[0]
        assert txn.scn == 10
        assert [(c.key, c.value) for c in txn.changes] == [
            ("a", 2), ("b", 3),
        ]

    def test_discard_suppresses_rollback(self):
        publisher = LogicalPublisher()
        seen = []
        publisher.subscribe(seen.append)
        publisher.stage(1, RowChange(ChangeKind.UPSERT, "a", 1))
        publisher.discard(1)
        publisher.publish_commit(1, scn=5)
        assert seen == []

    def test_commit_with_no_changes_publishes_nothing(self):
        publisher = LogicalPublisher()
        seen = []
        publisher.subscribe(seen.append)
        publisher.publish_commit(42, scn=5)
        assert seen == []
        assert publisher.published == 0

    def test_unsubscribe(self):
        publisher = LogicalPublisher()
        seen = []
        publisher.subscribe(seen.append)
        publisher.unsubscribe(seen.append)
        publisher.stage(1, RowChange(ChangeKind.UPSERT, "a", 1))
        publisher.publish_commit(1, scn=1)
        assert seen == []

    def test_crash_drops_staged_only(self):
        publisher = LogicalPublisher()
        publisher.stage(1, RowChange(ChangeKind.UPSERT, "a", 1))
        publisher.drop_transient_state()
        seen = []
        publisher.subscribe(seen.append)
        publisher.publish_commit(1, scn=5)
        assert seen == []  # staged changes died with the instance


class TestLogicalStreamIntegration:
    def test_table_subscriber_mirrors_committed_state(self, cluster):
        db = cluster.session()
        mirror = TableSubscriber()
        cluster.writer.logical.subscribe(mirror)
        db.write("a", 1)
        db.write("b", 2)
        db.remove("a")
        txn = db.begin()
        db.put(txn, "c", 3)
        db.rollback(txn)  # never reaches the stream
        assert mirror.table == {"b": 2}
        assert mirror.in_order

    def test_stream_is_scn_ordered_under_pipelined_commits(self, cluster):
        db = cluster.session()
        mirror = TableSubscriber()
        cluster.writer.logical.subscribe(mirror)
        futures = []
        for i in range(10):
            txn = db.begin()
            db.put(txn, f"k{i}", i)
            futures.append(db.commit_async(txn))
        for future in futures:
            db.drive(future)
        assert len(mirror.applied) == 10
        assert mirror.in_order

    def test_only_durable_transactions_reach_subscribers(self, cluster):
        """Nothing published before its commit is quorum-durable: a crash
        can never contradict what a subscriber already applied."""
        db = cluster.session()
        mirror = TableSubscriber()
        cluster.writer.logical.subscribe(mirror)
        txn = db.begin()
        db.put(txn, "doomed", 1)
        db.commit_async(txn)  # crash before the ack
        cluster.crash_writer()
        assert "doomed" not in mirror.table
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)
        # Whatever recovery decided, the subscriber was never lied to:
        if "doomed" in mirror.table:
            assert db.get("doomed") == 1

    def test_transforming_subscriber_schema_change(self, cluster):
        db = cluster.session()
        sink = TransformingSubscriber(
            transform=lambda key, value: (
                f"ext:{key}", None if value is None else value * 100
            )
        )
        cluster.writer.logical.subscribe(sink)
        db.write("x", 5)
        assert sink.table == {"ext:x": 500}
        db.remove("x")
        assert sink.table == {}

    def test_multi_statement_transaction_is_one_logical_unit(self, cluster):
        db = cluster.session()
        units = []
        cluster.writer.logical.subscribe(units.append)
        txn = db.begin()
        db.put(txn, "a", 1)
        db.put(txn, "b", 2)
        db.delete(txn, "a")
        db.commit(txn)
        assert len(units) == 1
        changes = {c.key: c.kind for c in units[0].changes}
        assert changes == {"a": ChangeKind.DELETE, "b": ChangeKind.UPSERT}
