"""CLI test for the multiwriter command."""

from repro.cli import main


def test_multiwriter_command_conserves_balance(capsys):
    assert main(
        ["--seed", "9", "multiwriter", "--partitions", "2",
         "--transfers", "6"]
    ) == 0
    out = capsys.readouterr().out
    assert "conserved: True" in out
    assert "journal:" in out
