"""Determinism guarantees: identical seeds produce identical universes.

Reproducibility is the simulator's core promise (it is what makes every
benchmark and failure scenario in this repository exactly re-runnable), so
it gets its own tests: full message traces, consistency points, and final
database states must be bit-identical across runs of the same seed, and
must diverge across different seeds.
"""

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session
from repro.sim.network import payload_type_name


def run_traced_scenario(seed):
    cluster = AuroraCluster.build(ClusterConfig(seed=seed))
    trace = []
    cluster.network.add_tap(
        lambda m: trace.append(
            (round(m.deliver_time, 9), m.src, m.dst,
             payload_type_name(m.payload))
        )
    )
    db = cluster.session()
    cluster.add_replica("r1")
    for i in range(10):
        db.write(f"key{i}", i)
    cluster.failures.crash_node("pg0-e")
    db.write("after-failure", 1)
    cluster.crash_writer()
    process = cluster.recover_writer()
    db = Session(cluster.writer)
    db.drive(process)
    state = {
        "trace_len": len(trace),
        "trace_tail": trace[-25:],
        "vcl": cluster.writer.vcl,
        "vdl": cluster.writer.vdl,
        "now": cluster.loop.now,
        "scls": cluster.segment_scls(0),
        "rows": [(f"key{i}", db.get(f"key{i}")) for i in range(10)],
        "messages": cluster.network.stats.snapshot(),
    }
    return state


class TestDeterminism:
    def test_same_seed_same_universe(self):
        first = run_traced_scenario(3141)
        second = run_traced_scenario(3141)
        assert first == second

    def test_different_seed_different_timing(self):
        first = run_traced_scenario(3141)
        second = run_traced_scenario(2718)
        # Logical outcomes agree; physical timing differs.
        assert first["rows"] == second["rows"]
        assert first["now"] != second["now"]

    def test_multiwriter_determinism(self):
        from repro.multiwriter import MultiWriterCluster

        def run(seed):
            mw = MultiWriterCluster(partition_count=2, seed=seed)
            session = mw.session()
            # Find a guaranteed-cross pair.
            keys = {}
            i = 0
            while len(keys) < 2:
                keys.setdefault(mw.partition_of(f"k{i}"), f"k{i}")
                i += 1
            k_a, k_b = keys.values()
            txn = session.begin()
            session.put(txn, k_a, 1)
            session.put(txn, k_b, 2)
            result = session.commit(txn)
            return (result, mw.loop.now, session.get(k_a), session.get(k_b))

        assert run(55) == run(55)

    def test_parallel_audit_sweep_matches_sequential(self):
        """`audit-run --jobs K` is a pure wall-clock optimisation: every
        seed derives all randomness from its own config, so reports from
        worker processes are byte-identical to the sequential run."""
        from dataclasses import replace

        from repro.audit import AuditRunConfig, run_audit_sweep

        configs = [
            AuditRunConfig(seed=seed, steps=120) for seed in range(4)
        ]
        sequential = run_audit_sweep(configs, jobs=1)
        parallel = run_audit_sweep(configs, jobs=4)

        def normalize(report):
            # wall_clock_s is host timing, the one deliberately
            # non-deterministic field; everything else must match.
            return replace(report, wall_clock_s=0.0)

        assert [normalize(r) for r in parallel] == [
            normalize(r) for r in sequential
        ]
        # The rendered sweep output (what CI diffs) is byte-identical.
        assert [r.render() for r in parallel] == [
            r.render() for r in sequential
        ]

    def test_workload_runner_determinism(self):
        from repro.workloads import (
            WorkloadGenerator,
            WorkloadRunner,
            profile,
        )

        def run():
            cluster = AuroraCluster.build(ClusterConfig(seed=808))
            generator = WorkloadGenerator(profile("read_write"), seed=808)
            runner = WorkloadRunner(cluster, generator)
            stats = runner.run_closed_loop(
                clients=3, transactions_per_client=10
            )
            return (
                stats.committed,
                stats.aborted,
                tuple(round(x, 9) for x in stats.commit_latencies),
            )

        assert run() == run()
