"""Unit tests for generator processes and the async mutex."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventLoop, Future
from repro.sim.process import Mutex, Process, sleep


class TestProcess:
    def test_delay_yields_advance_time(self):
        loop = EventLoop()

        def worker():
            yield 5.0
            yield 2.5
            return loop.now

        process = Process(loop, worker())
        loop.run()
        assert process.result() == 7.5

    def test_future_yield_returns_its_value(self):
        loop = EventLoop()
        future = Future(loop)

        def worker():
            value = yield future
            return value * 2

        process = Process(loop, worker())
        loop.schedule(3.0, future.set_result, 21)
        loop.run()
        assert process.result() == 42

    def test_future_exception_raises_inside_generator(self):
        loop = EventLoop()
        future = Future(loop)
        caught = []

        def worker():
            try:
                yield future
            except ValueError as exc:
                caught.append(str(exc))
            return "survived"

        process = Process(loop, worker())
        loop.schedule(1.0, future.set_exception, ValueError("inner"))
        loop.run()
        assert process.result() == "survived"
        assert caught == ["inner"]

    def test_nested_process_yield(self):
        loop = EventLoop()

        def child():
            yield 2.0
            return "child-done"

        def parent():
            result = yield Process(loop, child())
            return f"parent saw {result}"

        process = Process(loop, parent())
        loop.run()
        assert process.result() == "parent saw child-done"

    def test_yield_from_delegation(self):
        loop = EventLoop()

        def inner():
            yield 1.0
            return 10

        def outer():
            value = yield from inner()
            yield 1.0
            return value + 1

        process = Process(loop, outer())
        loop.run()
        assert process.result() == 11
        assert loop.now == 2.0

    def test_generator_exception_lands_in_completion(self):
        loop = EventLoop()

        def worker():
            yield 1.0
            raise RuntimeError("worker failed")

        process = Process(loop, worker())
        loop.run()
        with pytest.raises(RuntimeError, match="worker failed"):
            process.result()

    def test_unsupported_yield_value_fails_process(self):
        loop = EventLoop()

        def worker():
            yield "not-a-valid-yield"

        process = Process(loop, worker())
        loop.run()
        with pytest.raises(SimulationError, match="unsupported"):
            process.result()

    def test_non_generator_rejected(self):
        with pytest.raises(SimulationError, match="generator"):
            Process(EventLoop(), lambda: None)

    def test_sleep_helper(self):
        loop = EventLoop()
        future = sleep(loop, 4.0)
        loop.run()
        assert future.done
        assert loop.now == 4.0


class TestMutex:
    def test_uncontended_acquire_is_immediate(self):
        loop = EventLoop()
        mutex = Mutex(loop)
        assert mutex.acquire().done
        assert mutex.locked

    def test_waiters_resume_in_fifo_order(self):
        loop = EventLoop()
        mutex = Mutex(loop)
        order = []

        def worker(tag, hold_ms):
            yield mutex.acquire()
            order.append(f"{tag}-in")
            yield hold_ms
            order.append(f"{tag}-out")
            mutex.release()

        Process(loop, worker("a", 5.0))
        Process(loop, worker("b", 1.0))
        Process(loop, worker("c", 1.0))
        loop.run()
        assert order == ["a-in", "a-out", "b-in", "b-out", "c-in", "c-out"]

    def test_release_without_hold_rejected(self):
        with pytest.raises(SimulationError):
            Mutex(EventLoop()).release()

    def test_long_convoy_drains_iteratively(self):
        """Regression: release() used to resolve the next waiter's future
        on its own call stack, so a convoy of waiters with trivial
        critical sections recursed once per waiter -- deep enough
        contention (a failover backlog) overflowed the stack."""
        loop = EventLoop()
        mutex = Mutex(loop)
        done = [0]

        def holder():
            yield mutex.acquire()
            yield 1.0  # let every worker queue behind the lock
            mutex.release()

        def worker():
            yield mutex.acquire()
            done[0] += 1
            mutex.release()

        Process(loop, holder())
        for _ in range(2000):
            Process(loop, worker())
        loop.run()
        assert done[0] == 2000
        assert not mutex.locked

    def test_critical_sections_never_interleave(self):
        loop = EventLoop()
        mutex = Mutex(loop)
        inside = [0]
        max_inside = [0]

        def worker():
            yield mutex.acquire()
            inside[0] += 1
            max_inside[0] = max(max_inside[0], inside[0])
            yield 1.0
            inside[0] -= 1
            mutex.release()

        for _ in range(8):
            Process(loop, worker())
        loop.run()
        assert max_inside[0] == 1
