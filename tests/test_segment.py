"""Unit tests for segments: receive, coalesce, reads, GC, scrub, hydration."""

import pytest

from repro.core.lsn import NULL_LSN, TruncationRange
from repro.core.records import (
    BlockPut,
    CommitPayload,
    LogRecord,
    RecordKind,
)
from repro.errors import ConfigurationError, ReadPointError
from repro.storage.segment import Segment, SegmentKind


def record(lsn, prev_pg, block=0, pg=0, key="k", value=None, mtr_end=True):
    return LogRecord(
        lsn=lsn,
        prev_volume_lsn=max(0, lsn - 1),
        prev_pg_lsn=prev_pg,
        prev_block_lsn=0,
        block=block,
        pg_index=pg,
        kind=RecordKind.DATA,
        payload=BlockPut(entries=((key, value if value is not None else lsn),)),
        mtr_end=mtr_end,
    )


def fill(segment, count, block=0):
    prev = segment.scl
    for i in range(count):
        lsn = prev + 1
        segment.receive(record(lsn, prev, block=block))
        prev = lsn
    return prev


class TestReceive:
    def test_advances_scl_in_order(self):
        segment = Segment("s", 0)
        fill(segment, 3)
        assert segment.scl == 3
        assert segment.hot_log_size == 3

    def test_wrong_pg_rejected(self):
        segment = Segment("s", 0)
        with pytest.raises(ConfigurationError):
            segment.receive(record(1, 0, pg=5))

    def test_duplicates_counted_not_stored(self):
        segment = Segment("s", 0)
        r = record(1, 0)
        segment.receive(r)
        segment.receive(r)
        assert segment.stats["duplicates"] == 1
        assert segment.hot_log_size == 1

    def test_gossip_flag_counted(self):
        segment = Segment("s", 0)
        segment.receive(record(1, 0), via_gossip=True)
        assert segment.stats["records_gossiped_in"] == 1


class TestCoalesce:
    def test_materializes_chain_complete_records(self):
        segment = Segment("s", 0)
        fill(segment, 3)
        applied = segment.coalesce()
        assert applied == 3
        assert segment.blocks[0].latest_lsn == 3

    def test_does_not_apply_beyond_gap(self):
        segment = Segment("s", 0)
        segment.receive(record(1, 0))
        segment.receive(record(5, 3))  # gap at 2..3
        segment.coalesce()
        assert segment.coalesced_upto == 1
        assert segment.blocks[0].latest_lsn == 1

    def test_tail_segments_never_materialize(self):
        segment = Segment("s", 0, SegmentKind.TAIL)
        fill(segment, 3)
        assert segment.coalesce() == 0
        assert segment.blocks == {}

    def test_idempotent(self):
        segment = Segment("s", 0)
        fill(segment, 2)
        segment.coalesce()
        assert segment.coalesce() == 0

    def test_commit_records_materialize_txn_table(self):
        segment = Segment("s", 0)
        commit = LogRecord(
            lsn=1, prev_volume_lsn=0, prev_pg_lsn=0, prev_block_lsn=0,
            block=3, pg_index=0, kind=RecordKind.COMMIT,
            payload=CommitPayload(txn_id=9, scn=1), txn_id=9,
        )
        segment.receive(commit)
        segment.coalesce()
        assert segment.blocks[3].latest_image() == {9: 1}


class TestReads:
    def test_read_at_point_serves_right_version(self):
        segment = Segment("s", 0)
        fill(segment, 4)
        assert segment.read_block(0, 2) == {"k": 2}
        assert segment.read_block(0, 4) == {"k": 4}

    def test_read_beyond_scl_rejected(self):
        segment = Segment("s", 0)
        fill(segment, 2)
        with pytest.raises(ReadPointError):
            segment.read_block(0, 3)

    def test_read_below_gc_floor_rejected(self):
        segment = Segment("s", 0)
        fill(segment, 5)
        segment.advance_gc_floor(3)
        with pytest.raises(ReadPointError):
            segment.read_block(0, 2)
        assert segment.read_block(0, 3) == {"k": 3}

    def test_read_on_tail_rejected(self):
        segment = Segment("s", 0, SegmentKind.TAIL)
        fill(segment, 2)
        with pytest.raises(ReadPointError):
            segment.read_block(0, 1)

    def test_unknown_block_serves_empty(self):
        segment = Segment("s", 0)
        fill(segment, 1)
        assert segment.read_block(42, 1) == {}

    def test_on_demand_materialization(self):
        """Reads coalesce lazily -- no background tick required."""
        segment = Segment("s", 0)
        fill(segment, 3)
        assert segment.coalesced_upto == NULL_LSN
        assert segment.read_block(0, 3) == {"k": 3}
        assert segment.coalesced_upto == 3


class TestGossipSupport:
    def test_records_after_ordered_and_limited(self):
        segment = Segment("s", 0)
        fill(segment, 5)
        got = segment.records_after(2, limit=2)
        assert [r.lsn for r in got] == [3, 4]

    def test_missing_below_scl_of(self):
        segment = Segment("s", 0)
        fill(segment, 3)
        assert segment.missing_below_scl_of(5)
        assert not segment.missing_below_scl_of(3)


class TestTruncation:
    def test_annuls_records_above_pg_point(self):
        segment = Segment("s", 0)
        fill(segment, 5)
        segment.coalesce()
        dropped = segment.truncate(3, TruncationRange(first=4, last=100))
        assert dropped == 2
        assert segment.scl == 3
        assert segment.blocks[0].latest_lsn == 3
        # Post-recovery records chain from the truncation point.
        segment.receive(record(101, 3))
        assert segment.scl == 101

    def test_late_arriving_annulled_write_is_ignored(self):
        """'even if in-flight asynchronous operations complete during the
        process of crash recovery, they are ignored'"""
        segment = Segment("s", 0)
        fill(segment, 3)
        segment.truncate(3, TruncationRange(first=4, last=100))
        advanced = segment.receive(record(4, 3))  # zombie in-flight write
        assert not advanced
        assert segment.scl == 3
        assert 4 not in segment.hot_log
        assert segment.stats["annulled_refused"] == 1
        # The recovered writer's records (above the range) still chain.
        assert segment.receive(record(101, 3))

    def test_late_truncation_preserves_new_generation_records(self):
        """A TruncateRequest landing on a segment that was unreachable
        during recovery — after the segment has already received records
        from the post-recovery writer generation — annuls only its window,
        never the new generation's durable data."""
        segment = Segment("s", 0)
        fill(segment, 3)
        segment.receive(record(5, 4))    # dead-generation in-flight stray
        segment.receive(record(101, 3))  # new generation, above the range
        assert segment.scl == 101
        segment.coalesce()
        dropped = segment.truncate(3, TruncationRange(first=4, last=100))
        assert dropped == 1              # only the stray inside (3, 100]
        assert segment.scl == 101        # not regressed
        assert 101 in segment.hot_log
        assert segment.blocks[0].latest_lsn == 101
        assert segment.scl == 101


class TestGCAndBackup:
    def _prepared(self):
        segment = Segment("s", 0)
        fill(segment, 6)
        segment.coalesce()
        segment.mark_backed_up(6)
        return segment

    def test_gc_requires_floor_backup_and_coalesce(self):
        segment = self._prepared()
        records, _versions = segment.garbage_collect()
        assert records == 0  # gc floor still at 0
        segment.advance_gc_floor(4)
        records, _versions = segment.garbage_collect()
        assert records == 4
        assert sorted(segment.hot_log) == [5, 6]
        assert segment.gc_horizon == 4

    def test_gc_drops_old_block_versions(self):
        segment = self._prepared()
        segment.advance_gc_floor(4)
        _records, versions = segment.garbage_collect()
        assert versions == 3  # versions 1..3; version 4 is the base
        assert segment.blocks[0].version_at(4).lsn == 4

    def test_tail_gc_uses_backup_not_coalesce(self):
        segment = Segment("s", 0, SegmentKind.TAIL)
        fill(segment, 4)
        segment.advance_gc_floor(4)
        assert segment.garbage_collect() == (0, 0)  # not backed up yet
        segment.mark_backed_up(4)
        records, _ = segment.garbage_collect()
        assert records == 4

    def test_snapshot_for_backup_contains_blocks_and_log(self):
        segment = self._prepared()
        snapshot = segment.snapshot_for_backup()
        assert snapshot["scl"] == 6
        assert snapshot["blocks"][0] == {"k": 6}
        assert snapshot["hot_log_lsns"] == [1, 2, 3, 4, 5, 6]


class TestScrub:
    def test_detects_and_repairs_from_peer(self):
        a = Segment("a", 0)
        b = Segment("b", 0)
        for segment in (a, b):
            fill(segment, 3)
            segment.coalesce()
        assert a.scrub() == []
        a.blocks[0].corrupt_latest()
        failures = a.scrub()
        assert failures == [(0, 3)]
        repaired = a.repair_scrub_failures(b, failures)
        assert repaired == 1
        assert a.scrub() == []
        assert a.blocks[0].latest_image() == {"k": 3}


class TestHydration:
    def test_tail_hydrates_from_hot_log(self):
        source = Segment("src", 0)
        fill(source, 5)
        fresh = Segment("new", 0, SegmentKind.TAIL)
        copied = fresh.hydrate_from(source)
        assert copied == 5
        assert fresh.scl == 5

    def test_full_hydrates_blocks_past_gc_horizon(self):
        """The repair case of section 4.2: the source already GC'd early
        hot-log records; the baseline comes from materialized blocks."""
        source = Segment("src", 0)
        fill(source, 6)
        source.coalesce()
        source.mark_backed_up(6)
        source.advance_gc_floor(4)
        source.garbage_collect()
        assert sorted(source.hot_log) == [5, 6]

        fresh = Segment("new", 0, SegmentKind.FULL)
        fresh.hydrate_from(source)
        assert fresh.scl == 6
        assert fresh.read_block(0, 6) == {"k": 6}

    def test_hydration_is_incremental(self):
        source = Segment("src", 0)
        fill(source, 3)
        fresh = Segment("new", 0)
        fresh.hydrate_from(source)
        fill(source, 2)  # two more records arrive at the source
        fresh.hydrate_from(source)
        assert fresh.scl == source.scl == 5
