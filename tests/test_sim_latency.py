"""Unit tests for the latency distributions."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.latency import (
    CompositeLatency,
    ExponentialLatency,
    FixedLatency,
    LogNormalLatency,
    ScaledLatency,
    UniformLatency,
    cross_az_link,
    disk_service,
    intra_az_link,
)


@pytest.fixture
def rng():
    return random.Random(7)


class TestFixedLatency:
    def test_always_the_same(self, rng):
        model = FixedLatency(1.5)
        assert all(model.sample(rng) == 1.5 for _ in range(10))
        assert model.mean() == 1.5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(-0.1)


class TestUniformLatency:
    def test_samples_within_bounds(self, rng):
        model = UniformLatency(1.0, 2.0)
        for _ in range(200):
            assert 1.0 <= model.sample(rng) <= 2.0

    def test_mean(self):
        assert UniformLatency(1.0, 3.0).mean() == 2.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(2.0, 1.0)


class TestExponentialLatency:
    def test_never_below_base(self, rng):
        model = ExponentialLatency(base=0.5, tail_mean=1.0)
        assert all(model.sample(rng) >= 0.5 for _ in range(200))

    def test_zero_tail_degenerates_to_fixed(self, rng):
        model = ExponentialLatency(base=0.7, tail_mean=0.0)
        assert model.sample(rng) == 0.7

    def test_empirical_mean_close_to_analytic(self, rng):
        model = ExponentialLatency(base=1.0, tail_mean=2.0)
        samples = [model.sample(rng) for _ in range(20_000)]
        assert abs(sum(samples) / len(samples) - model.mean()) < 0.1


class TestLogNormalLatency:
    def test_positive_samples(self, rng):
        model = LogNormalLatency(median=1.0, sigma=0.5)
        assert all(model.sample(rng) > 0 for _ in range(200))

    def test_median_roughly_holds(self, rng):
        model = LogNormalLatency(median=2.0, sigma=0.4)
        samples = sorted(model.sample(rng) for _ in range(20_000))
        empirical_median = samples[len(samples) // 2]
        assert abs(empirical_median - 2.0) < 0.1

    def test_mean_exceeds_median(self):
        model = LogNormalLatency(median=1.0, sigma=0.8)
        assert model.mean() > 1.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            LogNormalLatency(median=0.0, sigma=0.5)


class TestCompositeLatency:
    def test_mixture_mean(self):
        model = CompositeLatency(
            fast=FixedLatency(1.0), slow=FixedLatency(11.0),
            slow_probability=0.1,
        )
        assert model.mean() == pytest.approx(2.0)

    def test_slow_fraction_roughly_matches(self, rng):
        model = CompositeLatency(
            fast=FixedLatency(1.0), slow=FixedLatency(100.0),
            slow_probability=0.05,
        )
        slow = sum(
            1 for _ in range(20_000) if model.sample(rng) == 100.0
        )
        assert 0.03 < slow / 20_000 < 0.07

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeLatency(FixedLatency(1), FixedLatency(2), 1.5)


class TestScaledLatency:
    def test_scales_samples_and_mean(self, rng):
        model = ScaledLatency(FixedLatency(2.0), factor=3.0)
        assert model.sample(rng) == 6.0
        assert model.mean() == 6.0

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaledLatency(FixedLatency(1.0), factor=0.0)


class TestDefaults:
    def test_cross_az_slower_than_intra_az(self):
        assert cross_az_link().mean() > intra_az_link().mean()

    def test_disk_fastest(self):
        assert disk_service().mean() < intra_az_link().mean()

    def test_determinism_under_same_seed(self):
        model = LogNormalLatency(median=1.0, sigma=0.5)
        a = [model.sample(random.Random(3)) for _ in range(5)]
        b = [model.sample(random.Random(3)) for _ in range(5)]
        assert a == b
