"""Boxcar write batching: protocol-level edge cases.

The driver coalesces consecutive redo records per protection group into
single WriteBatch messages under the paper's boxcar strategy (section
2.2).  Batching must never weaken the protocol: partial quorums under a
segment crash, whole-boxcar resubmission after an epoch rejection, and
the time-bound flush on an idle driver all have to behave exactly as the
unbatched path would.
"""

from repro import AuroraCluster, ClusterConfig
from repro.db.driver import BoxcarMode


def burst(db, cluster, count, prefix="k"):
    """Enqueue `count` concurrent commits so records share boxcars."""
    futures = []
    for i in range(count):
        txn = db.begin()
        db.put(txn, f"{prefix}{i:03d}", i)
        futures.append(db.commit_async(txn))
    for future in futures:
        db.drive(future)


class TestBoxcarsFill:
    def test_concurrent_commits_share_write_batches(self, cluster):
        db = cluster.session()
        burst(db, cluster, 24)
        by_type = cluster.network.stats.by_type
        batches = by_type["WriteBatch"]
        records = by_type["WriteBatch.records"]
        # More than one record per batch on average: boxcars filled.
        assert records > batches
        # The wire count matches the driver's own bookkeeping.
        assert batches == cluster.writer.driver.stats.batches_sent
        assert records == cluster.writer.driver.stats.records_sent


class TestPartialBatchAckUnderCrash:
    def test_commits_complete_on_4_of_6_with_boxcars_in_flight(
        self, cluster
    ):
        db = cluster.session()
        db.write("seed", 0)
        # Two members die with boxcars about to be in flight: their
        # batch copies are never acked, yet every commit reaches 4/6.
        cluster.failures.crash_node("pg0-e")
        cluster.failures.crash_node("pg0-f")
        burst(db, cluster, 16)
        assert all(db.get(f"k{i:03d}") == i for i in range(16))
        tracker = cluster.writer.driver.pg_trackers[0]
        scls = tracker.member_scls
        # The dead members' SCLs froze behind the survivors'.
        live_floor = min(
            scl for m, scl in scls.items() if m not in ("pg0-e", "pg0-f")
        )
        assert scls["pg0-e"] < live_floor or scls["pg0-e"] == 0
        # Restored members catch up from peer gossip, not the driver.
        cluster.failures.restore_node("pg0-e")
        cluster.failures.restore_node("pg0-f")
        cluster.run_for(400.0)
        assert len(set(cluster.segment_scls(0).values())) == 1


class TestEpochRejectedBoxcarResubmission:
    def test_whole_boxcar_resubmitted_across_membership_change(
        self, cluster
    ):
        db = cluster.session()
        db.write("seed", 0)
        # A membership change this writer has not heard about yet: every
        # storage node adopts the next membership epoch, so the writer's
        # next boxcars are rejected wholesale.
        for node in cluster.nodes.values():
            node.epochs.advance(node.epochs.current.bump_membership())
        driver = cluster.writer.driver
        before = driver.stats.batches_resubmitted
        burst(db, cluster, 12, prefix="after")
        cluster.run_for(200.0)
        assert driver.stats.rejections_seen >= 1
        assert driver.stats.batches_resubmitted > before
        # Resubmission preserved the batch: multi-record boxcars were
        # retried as units, and no record was lost or duplicated.
        assert all(db.get(f"after{i:03d}") == i for i in range(12))
        assert driver.epochs.membership == next(
            iter(cluster.nodes.values())
        ).epochs.current.membership


class TestTimeBoundFlushOnIdleDriver:
    def test_timeout_mode_flushes_a_lone_record_at_the_bound(self):
        config = ClusterConfig(seed=71)
        config.instance.driver.boxcar_mode = BoxcarMode.TIMEOUT
        config.instance.driver.boxcar_timeout = 6.0
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        sent_before = cluster.writer.driver.stats.batches_sent
        txn = db.begin()
        db.put(txn, "lonely", 1)
        future = db.commit_async(txn)
        # Idle driver, nothing else arriving: the record waits out the
        # full boxcar window...
        cluster.run_for(5.0)
        assert cluster.writer.driver.stats.batches_sent == sent_before
        assert not future.done
        # ...and the time bound (not another record) flushes it.
        cluster.run_for(30.0)
        assert cluster.writer.driver.stats.batches_sent > sent_before
        db.drive(future)
        assert db.get("lonely") == 1

    def test_aurora_mode_bounds_the_wait_by_submit_delay(self):
        config = ClusterConfig(seed=72)
        assert config.instance.driver.boxcar_mode is BoxcarMode.AURORA
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        db.write("lonely", 1)
        delays = cluster.writer.driver.stats.boxcar_delays
        assert delays
        # No record ever waits past the submit window (+ float slack).
        assert max(delays) <= config.instance.driver.submit_delay + 1e-9

    def test_max_records_cap_flushes_before_the_window(self, cluster):
        db = cluster.session()
        cap = cluster.config.instance.driver.boxcar_max_records
        burst(db, cluster, 3 * cap)
        records = cluster.network.stats.by_type["WriteBatch.records"]
        batches = cluster.network.stats.by_type["WriteBatch"]
        # No batch exceeded the cap even though arrivals outpaced it.
        assert records / batches <= cap
