"""Boxcar write batching: protocol-level edge cases.

The driver coalesces consecutive redo records per protection group into
single WriteBatch messages under the paper's boxcar strategy (section
2.2).  Batching must never weaken the protocol: partial quorums under a
segment crash, whole-boxcar resubmission after an epoch rejection, and
the time-bound flush on an idle driver all have to behave exactly as the
unbatched path would.
"""

from repro import AuroraCluster, ClusterConfig
from repro.db.driver import BoxcarMode


def burst(db, cluster, count, prefix="k"):
    """Enqueue `count` concurrent commits so records share boxcars."""
    futures = []
    for i in range(count):
        txn = db.begin()
        db.put(txn, f"{prefix}{i:03d}", i)
        futures.append(db.commit_async(txn))
    for future in futures:
        db.drive(future)


class TestBoxcarsFill:
    def test_concurrent_commits_share_write_batches(self, cluster):
        db = cluster.session()
        burst(db, cluster, 24)
        by_type = cluster.network.stats.by_type
        batches = by_type["WriteBatch"]
        records = by_type["WriteBatch.records"]
        # More than one record per batch on average: boxcars filled.
        assert records > batches
        # The wire count matches the driver's own bookkeeping.
        assert batches == cluster.writer.driver.stats.batches_sent
        assert records == cluster.writer.driver.stats.records_sent


class TestPartialBatchAckUnderCrash:
    def test_commits_complete_on_4_of_6_with_boxcars_in_flight(
        self, cluster
    ):
        db = cluster.session()
        db.write("seed", 0)
        # Two members die with boxcars about to be in flight: their
        # batch copies are never acked, yet every commit reaches 4/6.
        cluster.failures.crash_node("pg0-e")
        cluster.failures.crash_node("pg0-f")
        burst(db, cluster, 16)
        assert all(db.get(f"k{i:03d}") == i for i in range(16))
        tracker = cluster.writer.driver.pg_trackers[0]
        scls = tracker.member_scls
        # The dead members' SCLs froze behind the survivors'.
        live_floor = min(
            scl for m, scl in scls.items() if m not in ("pg0-e", "pg0-f")
        )
        assert scls["pg0-e"] < live_floor or scls["pg0-e"] == 0
        # Restored members catch up from peer gossip, not the driver.
        cluster.failures.restore_node("pg0-e")
        cluster.failures.restore_node("pg0-f")
        cluster.run_for(400.0)
        assert len(set(cluster.segment_scls(0).values())) == 1


class TestEpochRejectedBoxcarResubmission:
    def test_whole_boxcar_resubmitted_across_membership_change(
        self, cluster
    ):
        db = cluster.session()
        db.write("seed", 0)
        # A membership change this writer has not heard about yet: every
        # storage node adopts the next membership epoch, so the writer's
        # next boxcars are rejected wholesale.
        for node in cluster.nodes.values():
            node.epochs.advance(node.epochs.current.bump_membership())
        driver = cluster.writer.driver
        before = driver.stats.batches_resubmitted
        burst(db, cluster, 12, prefix="after")
        cluster.run_for(200.0)
        assert driver.stats.rejections_seen >= 1
        assert driver.stats.batches_resubmitted > before
        # Resubmission preserved the batch: multi-record boxcars were
        # retried as units, and no record was lost or duplicated.
        assert all(db.get(f"after{i:03d}") == i for i in range(12))
        assert driver.epochs.membership == next(
            iter(cluster.nodes.values())
        ).epochs.current.membership


class TestTimeBoundFlushOnIdleDriver:
    def test_timeout_mode_flushes_a_lone_record_at_the_bound(self):
        config = ClusterConfig(seed=71)
        config.instance.driver.boxcar_mode = BoxcarMode.TIMEOUT
        config.instance.driver.boxcar_timeout = 6.0
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        sent_before = cluster.writer.driver.stats.batches_sent
        txn = db.begin()
        db.put(txn, "lonely", 1)
        future = db.commit_async(txn)
        # Idle driver, nothing else arriving: the record waits out the
        # full boxcar window...
        cluster.run_for(5.0)
        assert cluster.writer.driver.stats.batches_sent == sent_before
        assert not future.done
        # ...and the time bound (not another record) flushes it.
        cluster.run_for(30.0)
        assert cluster.writer.driver.stats.batches_sent > sent_before
        db.drive(future)
        assert db.get("lonely") == 1

    def test_aurora_mode_bounds_the_wait_by_submit_delay(self):
        config = ClusterConfig(seed=72)
        assert config.instance.driver.boxcar_mode is BoxcarMode.AURORA
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        db.write("lonely", 1)
        delays = cluster.writer.driver.stats.boxcar_delays
        assert delays
        # No record ever waits past the submit window (+ float slack).
        assert max(delays) <= config.instance.driver.submit_delay + 1e-9

    def test_max_records_cap_flushes_before_the_window(self, cluster):
        db = cluster.session()
        cap = cluster.config.instance.driver.boxcar_max_records
        burst(db, cluster, 3 * cap)
        records = cluster.network.stats.by_type["WriteBatch.records"]
        batches = cluster.network.stats.by_type["WriteBatch"]
        # No batch exceeded the cap even though arrivals outpaced it.
        assert records / batches <= cap


# ----------------------------------------------------------------------
# Compressed wire format (repro.db.wire): the protocol edge cases above
# must hold when batches ship with delta-encoded LSNs and superseded
# same-transaction payloads elided.
# ----------------------------------------------------------------------
from repro.core.records import (
    BlockPut,
    BlockReplace,
    CommitPayload,
    ElidedPayload,
    LogRecord,
    NO_BLOCK,
    RecordKind,
)
from repro.db.wire import (
    batch_logical_bytes,
    batch_wire_bytes,
    elide_superseded,
)


def _rec(lsn, block=1, txn=7, kind=RecordKind.DATA, payload=None):
    if payload is None:
        payload = BlockPut(entries=((f"k{lsn}", lsn),))
    return LogRecord(
        lsn=lsn,
        prev_volume_lsn=lsn - 1,
        prev_pg_lsn=lsn - 1,
        prev_block_lsn=max(lsn - 1, 0),
        block=block,
        pg_index=0,
        kind=kind,
        payload=payload,
        txn_id=txn,
    )


class TestElideSuperseded:
    def test_same_txn_same_key_overwrite_is_elided(self):
        first = _rec(10, payload=BlockPut(entries=(("row", 1),)))
        second = _rec(11, payload=BlockPut(entries=(("row", 2),)))
        out, elided = elide_superseded((first, second))
        assert elided == 1
        assert isinstance(out[0].payload, ElidedPayload)
        assert out[0].payload.covered_by == 11
        # Everything but the payload is untouched: chains, LSN, txn.
        assert out[0].lsn == 10 and out[0].prev_pg_lsn == 9
        assert out[1] is second

    def test_block_replace_covers_all_prior_keys(self):
        first = _rec(10, payload=BlockPut(entries=(("a", 1), ("b", 2))))
        second = _rec(11, payload=BlockReplace.of({"c": 3}))
        out, elided = elide_superseded((first, second))
        assert elided == 1
        assert isinstance(out[0].payload, ElidedPayload)

    def test_cross_txn_overwrite_is_never_elided(self):
        first = _rec(10, txn=7, payload=BlockPut(entries=(("row", 1),)))
        second = _rec(11, txn=8, payload=BlockPut(entries=(("row", 2),)))
        out, elided = elide_superseded((first, second))
        assert elided == 0
        assert out == (first, second)

    def test_partial_coverage_keeps_the_record(self):
        first = _rec(10, payload=BlockPut(entries=(("a", 1), ("b", 2))))
        second = _rec(11, payload=BlockPut(entries=(("a", 9),)))  # no "b"
        _out, elided = elide_superseded((first, second))
        assert elided == 0

    def test_commit_and_control_records_are_never_elided(self):
        data = _rec(10, payload=BlockPut(entries=(("row", 1),)))
        commit = _rec(
            11, block=NO_BLOCK, kind=RecordKind.COMMIT,
            payload=CommitPayload(txn_id=7, scn=11),
        )
        covering = _rec(12, payload=BlockPut(entries=(("row", 2),)))
        out, elided = elide_superseded((data, commit, covering))
        assert elided == 1  # only the superseded DATA record
        assert out[1] is commit

    def test_different_blocks_do_not_cover_each_other(self):
        first = _rec(10, block=1, payload=BlockPut(entries=(("row", 1),)))
        second = _rec(11, block=2, payload=BlockPut(entries=(("row", 2),)))
        _out, elided = elide_superseded((first, second))
        assert elided == 0

    def test_wire_bytes_shrink_and_logical_bytes_do_not(self):
        records = tuple(
            _rec(lsn, payload=BlockPut(entries=(("row", lsn),)))
            for lsn in range(10, 18)
        )
        logical = batch_logical_bytes(records)
        compressed, elided = elide_superseded(records)
        assert elided == len(records) - 1
        wire = batch_wire_bytes(compressed)
        assert wire < logical
        # Consecutive LSNs delta-encode even without elision.
        assert batch_wire_bytes(records) < logical


class TestCompressedWireEndToEnd:
    def _compressing_cluster(self, seed=73):
        config = ClusterConfig(seed=seed)
        assert config.instance.driver.wire_compression
        return AuroraCluster.build(config)

    def multi_write_burst(self, db, count, writes_per_txn=3):
        """Transactions that overwrite their own row: elision fodder."""
        futures = []
        for i in range(count):
            txn = db.begin()
            for v in range(writes_per_txn):
                db.put(txn, f"k{i:03d}", v)
            futures.append(db.commit_async(txn))
        for future in futures:
            db.drive(future)

    def test_elision_fires_and_reads_stay_correct(self):
        cluster = self._compressing_cluster()
        db = cluster.session()
        self.multi_write_burst(db, 12)
        stats = cluster.writer.driver.stats
        assert stats.records_elided > 0
        assert 0 < stats.wire_bytes < stats.logical_bytes
        # The final value of every self-overwriting txn is what reads see.
        assert all(db.get(f"k{i:03d}") == 2 for i in range(12))

    def test_epoch_rejected_compressed_boxcars_resubmit_whole(self):
        cluster = self._compressing_cluster(seed=74)
        db = cluster.session()
        db.write("seed", 0)
        for node in cluster.nodes.values():
            node.epochs.advance(node.epochs.current.bump_membership())
        driver = cluster.writer.driver
        before = driver.stats.batches_resubmitted
        self.multi_write_burst(db, 10)
        cluster.run_for(200.0)
        assert driver.stats.rejections_seen >= 1
        assert driver.stats.batches_resubmitted > before
        assert driver.stats.records_elided > 0
        # Resubmission reships the *retained elided* batch as a unit and
        # storage converges on it: no record lost, no divergent segment.
        assert all(db.get(f"k{i:03d}") == 2 for i in range(10))
        cluster.run_for(400.0)
        assert len(set(cluster.segment_scls(0).values())) == 1

    def test_partial_batch_acks_under_crash_with_elision(self):
        cluster = self._compressing_cluster(seed=75)
        db = cluster.session()
        db.write("seed", 0)
        cluster.failures.crash_node("pg0-e")
        cluster.failures.crash_node("pg0-f")
        self.multi_write_burst(db, 8)
        driver = cluster.writer.driver
        assert driver.stats.records_elided > 0
        # 4/6 quorum carried every commit despite two unacked copies of
        # each compressed boxcar.
        assert all(db.get(f"k{i:03d}") == 2 for i in range(8))
        cluster.failures.restore_node("pg0-e")
        cluster.failures.restore_node("pg0-f")
        cluster.run_for(400.0)
        # Gossip refills the restored members from the elided hot log and
        # all six segments converge to one SCL.
        assert len(set(cluster.segment_scls(0).values())) == 1
