"""Unit tests for LSN allocation and truncation ranges."""

import pytest

from repro.core.lsn import NULL_LSN, LSNAllocator, TruncationRange
from repro.errors import ConfigurationError


class TestLSNAllocator:
    def test_starts_above_null(self):
        allocator = LSNAllocator()
        assert allocator.next_lsn == NULL_LSN + 1
        assert allocator.highest_allocated == NULL_LSN

    def test_allocations_are_dense_and_monotonic(self):
        allocator = LSNAllocator()
        first = allocator.allocate(3)
        second = allocator.allocate(2)
        assert list(first) == [1, 2, 3]
        assert list(second) == [4, 5]
        assert allocator.highest_allocated == 5

    def test_allocate_one(self):
        allocator = LSNAllocator()
        assert allocator.allocate_one() == 1
        assert allocator.allocate_one() == 2

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError):
            LSNAllocator().allocate(0)

    def test_bad_start_rejected(self):
        with pytest.raises(ConfigurationError):
            LSNAllocator(start=0)

    def test_truncation_jumps_allocation_above_range(self):
        allocator = LSNAllocator()
        allocator.allocate(10)
        allocator.apply_truncation(TruncationRange(first=8, last=500))
        assert allocator.next_lsn == 501

    def test_truncation_below_current_point_is_harmless(self):
        allocator = LSNAllocator(start=1000)
        allocator.apply_truncation(TruncationRange(first=5, last=20))
        assert allocator.next_lsn == 1000

    def test_is_annulled(self):
        allocator = LSNAllocator()
        allocator.apply_truncation(TruncationRange(first=10, last=20))
        assert allocator.is_annulled(10)
        assert allocator.is_annulled(20)
        assert not allocator.is_annulled(9)
        assert not allocator.is_annulled(21)

    def test_truncations_recorded_in_order(self):
        allocator = LSNAllocator()
        allocator.apply_truncation(TruncationRange(first=5, last=10))
        allocator.apply_truncation(TruncationRange(first=50, last=60))
        assert len(allocator.truncations) == 2


class TestTruncationRange:
    def test_contains_is_inclusive(self):
        truncation = TruncationRange(first=5, last=7)
        assert truncation.contains(5)
        assert truncation.contains(7)
        assert not truncation.contains(4)
        assert not truncation.contains(8)

    def test_single_lsn_range(self):
        truncation = TruncationRange(first=5, last=5)
        assert truncation.contains(5)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            TruncationRange(first=0, last=5)
        with pytest.raises(ConfigurationError):
            TruncationRange(first=10, last=9)
