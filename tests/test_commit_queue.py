"""Unit tests for the asynchronous commit queue (section 2.3)."""

import pytest

from repro.core.commit import CommitQueue
from repro.errors import ConfigurationError


class TestCommitQueue:
    def test_ack_fires_when_vcl_passes_scn(self):
        queue = CommitQueue()
        acked = []
        queue.enqueue(10, lambda: acked.append(10))
        queue.enqueue(20, lambda: acked.append(20))
        assert acked == []
        released = queue.on_vcl_advance(15)
        assert released == 1
        assert acked == [10]
        queue.on_vcl_advance(25)
        assert acked == [10, 20]

    def test_acks_fire_in_scn_order(self):
        queue = CommitQueue()
        acked = []
        for scn in (30, 10, 20):
            queue.enqueue(scn, lambda s=scn: acked.append(s))
        queue.on_vcl_advance(100)
        assert acked == [10, 20, 30]

    def test_scn_equal_to_vcl_is_durable(self):
        queue = CommitQueue()
        acked = []
        queue.enqueue(10, lambda: acked.append(10))
        queue.on_vcl_advance(10)
        assert acked == [10]

    def test_already_durable_scn_acks_immediately(self):
        queue = CommitQueue()
        queue.on_vcl_advance(50)
        acked = []
        queue.enqueue(40, lambda: acked.append(40))
        assert acked == [40]
        assert queue.depth == 0

    def test_vcl_never_effectively_regresses(self):
        queue = CommitQueue()
        acked = []
        queue.on_vcl_advance(50)
        queue.on_vcl_advance(30)  # stale advance: ignored
        queue.enqueue(40, lambda: acked.append(40))
        assert acked == [40]

    def test_invalid_scn_rejected(self):
        with pytest.raises(ConfigurationError):
            CommitQueue().enqueue(0, lambda: None)

    def test_wait_statistics(self):
        queue = CommitQueue()
        queue.enqueue(10, lambda: None, now=1.0)
        queue.enqueue(20, lambda: None, now=2.0)
        queue.on_vcl_advance(25, now=5.0)
        assert queue.stats.acknowledged == 2
        assert queue.stats.mean_wait == pytest.approx((4.0 + 3.0) / 2)
        assert queue.stats.max_queue_depth == 2

    def test_drain_pending_returns_tags_in_scn_order(self):
        queue = CommitQueue()
        queue.enqueue(30, lambda: None, tag="t30")
        queue.enqueue(10, lambda: None, tag="t10")
        assert queue.drain_pending() == ["t10", "t30"]
        assert queue.depth == 0

    def test_oldest_pending_scn(self):
        queue = CommitQueue()
        assert queue.oldest_pending_scn is None
        queue.enqueue(12, lambda: None)
        queue.enqueue(7, lambda: None)
        assert queue.oldest_pending_scn == 7
