"""End-to-end integrity: silent corruption, verification, and repair.

Covers the DESIGN.md section 12 machinery at three levels:

- segment/chain units: the general corruption-injection API, record
  scrub, verified coalescing, and ship-path verification;
- storage-node fleets: read-time interception (a corrupt version is
  never served), the quorum vote under peer crashes, and the baseline
  rehydration fallback for records no peer can restore;
- whole clusters: each injector kind is detected and repaired under a
  live workload on both storage backends, the corruption bookkeeping
  reconciles entries destroyed by GC, and the chaos schedule stays
  byte-identical for legacy configs with the integrity kinds disabled.
"""

from __future__ import annotations

import random
from dataclasses import replace as dc_replace

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.core.epochs import EpochStamp
from repro.core.records import BlockPut, LogRecord, RecordKind
from repro.db.session import Session
from repro.errors import CorruptVersionError
from repro.sim.chaos import (
    BIT_ROT,
    LOST_WRITE,
    MISDIRECTED_WRITE,
    STORAGE_TARGET,
    TORN_WRITE,
    ChaosConfig,
    ChaosSchedule,
    integrity_chaos_config,
)
from repro.sim.events import EventLoop
from repro.sim.latency import FixedLatency
from repro.sim.network import Actor, Network
from repro.storage.backup import SimulatedS3
from repro.storage.messages import (
    ReadBlockRequest,
    ReadBlockResponse,
    RequestRejected,
    WriteAck,
    WriteBatch,
)
from repro.storage.metadata import SegmentPlacement, StorageMetadataService
from repro.storage.node import StorageNode, StorageNodeConfig
from repro.storage.page import BlockVersionChain
from repro.storage.segment import Segment, SegmentKind
from repro.storage.volume import VolumeGeometry
from repro.core.membership import MembershipState


# ----------------------------------------------------------------------
# Local fleet helpers (mirrors test_storage_node.py's idiom)
# ----------------------------------------------------------------------
class FakeInstance(Actor):
    def __init__(self, name="db"):
        super().__init__(name)
        self.acks = []
        self.reads = []
        self.rejections = []

    def on_message(self, message):
        payload = message.payload
        if isinstance(payload, WriteAck):
            self.acks.append(payload)
        elif isinstance(payload, ReadBlockResponse):
            self.reads.append(payload)
        elif isinstance(payload, RequestRejected):
            self.rejections.append(payload)


def build_fleet(node_count=6, background=False, scrub_interval=500.0):
    loop = EventLoop()
    rng = random.Random(17)
    network = Network(
        loop, rng, intra_az=FixedLatency(0.2), cross_az=FixedLatency(0.8)
    )
    geometry = VolumeGeometry(blocks_per_pg=64, pg_count=1)
    metadata = StorageMetadataService(geometry)
    s3 = SimulatedS3()
    names = [f"seg{i}" for i in range(node_count)]
    metadata.set_membership(0, MembershipState.initial(names))
    nodes = {}
    config = StorageNodeConfig(
        disk=FixedLatency(0.05),
        enable_background=background,
        scrub_interval=scrub_interval,
    )
    for i, name in enumerate(names):
        segment = Segment(name, 0)
        node = StorageNode(segment, metadata, s3, rng, config)
        network.attach(node, az=f"az{i % 3 + 1}")
        metadata.place_segment(
            SegmentPlacement(name, 0, name, f"az{i % 3 + 1}",
                             SegmentKind.FULL)
        )
        nodes[name] = node
    for node in nodes.values():
        node.register_peer_directory(nodes)
        node.start()
    instance = FakeInstance()
    network.attach(instance, az="az1")
    return loop, network, metadata, nodes, instance


def make_record(lsn, prev_pg, block=0):
    return LogRecord(
        lsn=lsn, prev_volume_lsn=lsn - 1, prev_pg_lsn=prev_pg,
        prev_block_lsn=0, block=block, pg_index=0, kind=RecordKind.DATA,
        payload=BlockPut(entries=(("k", lsn),)),
    )


def batch(records, epochs=None, pgmrpl=0):
    return WriteBatch(
        instance_id="db", pg_index=0, records=tuple(records),
        epochs=epochs or EpochStamp(), pgmrpl=pgmrpl,
    )


def feed_all(network, nodes, records, pgmrpl=0):
    for name in nodes:
        network.send("db", name, batch(records, pgmrpl=pgmrpl))


# ----------------------------------------------------------------------
# The general corruption-injection API (and its back-compat shim)
# ----------------------------------------------------------------------
class TestCorruptionApi:
    def _chain(self):
        chain = BlockVersionChain(0)
        for lsn in (1, 2, 3):
            chain.append(lsn, {"k": lsn})
        return chain

    def test_corrupt_version_targets_specific_lsn(self):
        chain = self._chain()
        chain.corrupt_version(2)
        by_lsn = {v.lsn: v for v in chain.versions}
        assert not by_lsn[2].verify()
        assert by_lsn[1].verify() and by_lsn[3].verify()

    def test_corrupt_version_defaults_to_newest(self):
        chain = self._chain()
        chain.corrupt_version()
        assert not max(chain.versions, key=lambda v: v.lsn).verify()

    def test_valid_checksum_corruption_passes_local_verification(self):
        chain = self._chain()
        chain.corrupt_version(2, valid_checksum=True)
        damaged = next(v for v in chain.versions if v.lsn == 2)
        # The image changed but the checksum was recomputed over the
        # bogus content: only a cross-peer vote can expose this.
        assert damaged.verify()
        assert damaged.image != {"k": 2}

    def test_corrupt_latest_shim_matches_corrupt_version(self):
        a, b = self._chain(), self._chain()
        a.corrupt_latest()
        b.corrupt_version()
        failed_a = [v.lsn for v in a.versions if not v.verify()]
        failed_b = [v.lsn for v in b.versions if not v.verify()]
        assert failed_a == failed_b == [3]


# ----------------------------------------------------------------------
# Record scrub, verified coalescing, ship-path verification
# ----------------------------------------------------------------------
class TestRecordIntegrity:
    def _segment(self):
        seg = Segment("s", 0)
        for lsn in (1, 2, 3):
            seg.receive(make_record(lsn, lsn - 1))
        return seg

    def test_scrub_records_detects_bit_rot(self):
        seg = self._segment()
        assert seg.scrub_records() == []
        seg.corrupt_record(2)
        assert seg.scrub_records() == [2]
        assert seg.stats["record_scrub_failures"] == 1

    def test_coalesce_stalls_below_corrupt_record(self):
        seg = self._segment()
        seg.corrupt_record(2)
        applied = seg.coalesce()
        assert applied == 1
        assert seg.coalesced_upto == 1
        assert 2 in seg.corrupt_record_lsns
        # The stall never materializes the rotted payload.
        assert seg.blocks[0].latest_lsn == 1

    def test_read_refuses_while_corrupt_record_blocks_the_point(self):
        seg = self._segment()
        seg.corrupt_record(2)
        with pytest.raises(CorruptVersionError):
            seg.read_version(0, 3)

    def test_records_after_withholds_corrupt_records(self):
        seg = self._segment()
        seg.corrupt_record(2)
        shipped = [r.lsn for r in seg.records_after(0)]
        # The rotted record is withheld from gossip/baseline shipping and
        # flagged for repair, instead of propagating to a lagging peer.
        assert shipped == [1, 3]
        assert 2 in seg.corrupt_record_lsns

    def test_restore_record_clears_corruption_and_unstalls(self):
        seg = self._segment()
        clean = seg.hot_log[2]
        seg.corrupt_record(2)
        seg.coalesce()
        assert seg.coalesced_upto == 1
        assert seg.restore_record(clean)
        assert 2 not in seg.corrupt_record_lsns
        seg.coalesce()
        assert seg.coalesced_upto == 3
        assert seg.read_version(0, 3).image == {"k": 3}


# ----------------------------------------------------------------------
# Read-time interception: a corrupt version is never served
# ----------------------------------------------------------------------
class TestReadInterception:
    def test_corrupt_version_intercepted_and_repaired_inline(self):
        loop, network, _m, nodes, instance = build_fleet()
        records = [make_record(i, i - 1) for i in range(1, 4)]
        feed_all(network, nodes, records)
        loop.run(until=50.0)
        for node in nodes.values():
            node.segment.coalesce()
        victim = nodes["seg0"]
        victim.segment.blocks[0].corrupt_version(3)
        future = network.rpc(
            "db", "seg0",
            ReadBlockRequest(
                pg_index=0, block=0, read_point=3, epochs=EpochStamp()
            ),
        )
        loop.run(until=2_000.0)
        assert victim.counters["reads_intercepted"] >= 1
        # The reply is either the repaired clean image or a rejection
        # (driver reroutes) -- never the corrupt bytes.
        assert future.done and future.exception() is None
        reply = future.result()
        assert isinstance(reply, ReadBlockResponse)
        assert dict(reply.image) == {"k": 3}
        assert victim.segment.read_version(0, 3).image == {"k": 3}

    def test_vote_round_survives_peer_crash(self):
        loop, network, _m, nodes, instance = build_fleet()
        records = [make_record(i, i - 1) for i in range(1, 4)]
        feed_all(network, nodes, records)
        loop.run(until=50.0)
        for node in nodes.values():
            node.segment.coalesce()
        network.fail_node("seg1")
        network.fail_node("seg2")
        victim = nodes["seg0"]
        victim.segment.blocks[0].corrupt_version(3)
        network.rpc(
            "db", "seg0",
            ReadBlockRequest(
                pg_index=0, block=0, read_point=3, epochs=EpochStamp()
            ),
        )
        loop.run(until=3_000.0)
        # Crashed peers simply never vote; the surviving majority still
        # repairs, and the client still gets the clean image.
        assert victim.segment.read_version(0, 3).image == {"k": 3}

    def test_scrub_reply_ignores_failed_future(self):
        """Regression: a scrub-repair RPC whose future completed with an
        exception (peer crashed mid-RPC) must be ignored, not raise out
        of the callback."""
        loop, network, _m, nodes, _instance = build_fleet()

        class FailedFuture:
            def exception(self):
                return RuntimeError("peer crashed mid-RPC")

            def result(self):
                raise AssertionError(
                    "result() must not be called on a failed future"
                )

        nodes["seg0"]._on_scrub_reply(FailedFuture())  # must not raise


# ----------------------------------------------------------------------
# Baseline rehydration fallback: records no peer can restore
# ----------------------------------------------------------------------
class TestRehydrationFallback:
    def test_unrecoverable_record_unwedged_by_baseline(self):
        """A corrupt hot-log record whose clean copies every peer has
        already GC'd can never be restored by vote; after two dry rounds
        the node rehydrates a coalesced baseline in place and resumes."""
        loop, network, _m, nodes, _instance = build_fleet(
            background=True, scrub_interval=400.0
        )
        records = [make_record(i, i - 1) for i in range(1, 4)]
        feed_all(network, nodes, records)
        # Records are delivered (sub-ms latency) but the first coalesce
        # tick (10ms) has not fired yet: the rot lands pre-materialization.
        loop.run(until=2.0)
        victim = nodes["seg0"]
        victim.segment.corrupt_record(2)
        # Peers materialize, back up, and GC their hot logs entirely:
        # no clean copy of record 2 survives anywhere.
        for name, node in nodes.items():
            if name == "seg0":
                continue
            seg = node.segment
            seg.coalesce()
            seg.mark_backed_up(3)
            seg.advance_gc_floor(3)
            seg.garbage_collect()
            assert 2 not in seg.hot_log
        # The read floor has moved past the stall (as PGMRPL updates do
        # in a live cluster): the wedge is now exactly seed-shaped --
        # coalesce pinned below the rot, no peer able to restore it.
        victim.segment.advance_gc_floor(3)
        assert victim.segment.coalesce() == 1  # stalls below the rot
        loop.run(until=30_000.0)
        seg = victim.segment
        assert seg.coalesced_upto >= 3
        assert 2 not in seg.corrupt_record_lsns
        assert seg.read_version(0, 3).image == {"k": 3}


# ----------------------------------------------------------------------
# Cluster-level: every injector kind repaired under a live workload
# ----------------------------------------------------------------------
def _integrity_cluster(backend: str = "aurora", seed: int = 5):
    config = ClusterConfig(
        seed=seed,
        backend=backend,
        node=StorageNodeConfig(scrub_interval=400.0),
    )
    cluster = AuroraCluster.build(config)
    cluster.failures.attach_storage(cluster.nodes.values())
    cluster.failures.start_integrity_reconcile()
    return cluster


def _inject_with_fresh_writes(cluster, db, inject, attempts=20):
    """Write fresh victims, then inject while a pinned read view holds
    the GC floor below them (the injectors refuse victims no instance
    could ever read; PGMRPL is the minimum open read point, so an open
    view keeps the floor from riding past the new records).  Each key is
    written twice so the earlier version sits mid-chain -- lost and
    misdirected writes only accept such victims -- and a short quiet run
    lets coalesce materialize the chains before the draw."""
    for attempt in range(attempts):
        view = cluster.writer.open_view()
        try:
            for i in range(4):
                db.write(f"fresh{attempt}.{i}", f"v{attempt}.{i}")
            for i in range(4):
                db.write(f"fresh{attempt}.{i}", f"w{attempt}.{i}")
            cluster.run_for(30.0)
            corruption = inject()
        finally:
            cluster.writer.close_view(view)
        if corruption is not None:
            return corruption
        cluster.run_for(120.0)
    raise AssertionError("injector found no eligible victim")


class TestClusterRepair:
    @pytest.mark.parametrize(
        "kind", ["bit_rot", "lost_write", "misdirected_write", "torn_write"]
    )
    def test_injected_corruption_detected_and_repaired(self, kind):
        cluster = _integrity_cluster()
        db = Session(cluster.writer)
        expected = {}
        for i in range(12):
            db.write(f"k{i}", f"v{i}")
            expected[f"k{i}"] = f"v{i}"
        integrity = cluster.failures.integrity
        inject = getattr(cluster.failures, f"{kind}_any")
        _inject_with_fresh_writes(cluster, db, inject)
        assert integrity.open_count() >= 1
        for _ in range(40):
            if integrity.open_count() == 0:
                break
            cluster.run_for(500.0)
        assert integrity.open_count() == 0, (
            f"unrepaired after settling: {integrity.open_records()}"
        )
        assert integrity.corrupt_reads_served == 0
        for key, value in expected.items():
            assert db.get(key) == value

    def test_reconcile_closes_corruption_destroyed_by_gc(self):
        """GC can drop a rotted record (its redo was already applied)
        without any repair hook firing; the reconcile sweep must close
        the book entry instead of counting it unrepaired forever."""
        cluster = _integrity_cluster()
        db = Session(cluster.writer)
        for i in range(6):
            db.write(f"k{i}", f"v{i}")
        integrity = cluster.failures.integrity
        name, node = next(iter(sorted(cluster.nodes.items())))
        seg = node.segment
        eligible = [lsn for lsn in sorted(seg.hot_log)
                    if lsn > seg.gc_horizon]
        assert eligible, "no hot-log records to corrupt"
        lsn = eligible[0]
        block = seg.hot_log[lsn].block
        seg.corrupt_record(lsn)
        record = integrity.inject("bit_rot_record", name, block, lsn)
        # Destroy the rotted bytes outside the repair path, as GC would.
        seg.hot_log.pop(lsn)
        pos = seg._lsn_index.index(lsn)
        del seg._lsn_index[pos]
        del seg._records[pos]
        del seg._digests[pos]
        seg._corrupt_record_lsns.discard(lsn)
        closed = integrity.reconcile({name: node})
        assert closed == 1
        assert not record.open
        assert integrity.open_count() == 0


# ----------------------------------------------------------------------
# Taurus edges: the log/page split under corruption
# ----------------------------------------------------------------------
class TestTaurusIntegrity:
    def _log_and_page_stores(self, cluster):
        logs = sorted(
            n for n, node in cluster.nodes.items()
            if node.segment.kind is SegmentKind.LOG
        )
        pages = sorted(
            n for n, node in cluster.nodes.items()
            if node.segment.kind is SegmentKind.FULL
        )
        return logs, pages

    def test_log_record_rot_never_reaches_page_stores(self):
        """A rotted redo record on a log store must not be shipped to the
        asynchronously-draining page stores, which would materialize it
        under a valid image checksum."""
        cluster = _integrity_cluster(backend="taurus")
        db = Session(cluster.writer)
        logs, pages = self._log_and_page_stores(cluster)
        expected = {}

        def rot_a_log_record():
            seg = cluster.nodes[logs[0]].segment
            eligible = [lsn for lsn in sorted(seg.hot_log)
                        if lsn > max(seg.gc_horizon, seg.gc_floor)]
            if not eligible:
                return None
            lsn = eligible[-1]
            mangled = seg.corrupt_record(lsn)
            return cluster.failures.integrity.inject(
                "bit_rot_record", logs[0], mangled.block, lsn
            )

        for i in range(8):
            db.write(f"k{i}", f"v{i}")
            expected[f"k{i}"] = f"v{i}"
        _inject_with_fresh_writes(cluster, db, rot_a_log_record)
        integrity = cluster.failures.integrity
        for _ in range(40):
            if integrity.open_count() == 0:
                break
            cluster.run_for(500.0)
        assert integrity.open_count() == 0
        # Page stores never materialized the rotted payload: every
        # committed value reads back correct (reads route to them).
        for key, value in expected.items():
            assert db.get(key) == value
        for name in pages:
            seg = cluster.nodes[name].segment
            for chain in seg.blocks.values():
                for version in chain.versions:
                    assert version.verify()

    def test_page_store_divergence_broken_by_log_tail_replay(self):
        """With only two page stores, a misdirected write on one creates
        a 1-1 structural tie; a log store's on-demand materialization of
        its tail must break it in favour of the clean copy."""
        cluster = _integrity_cluster(backend="taurus")
        db = Session(cluster.writer)
        _logs, pages = self._log_and_page_stores(cluster)
        expected = {}
        for i in range(10):
            db.write(f"k{i}", f"v{i}")
            expected[f"k{i}"] = f"v{i}"
        cluster.run_for(600.0)  # let the page stores drain + coalesce
        integrity = cluster.failures.integrity
        _inject_with_fresh_writes(
            cluster, db,
            lambda: cluster.failures.misdirected_write(pages[0]),
        )
        for _ in range(40):
            if integrity.open_count() == 0:
                break
            cluster.run_for(500.0)
        assert integrity.open_count() == 0, (
            f"unrepaired: {integrity.open_records()}"
        )
        assert integrity.corrupt_reads_served == 0
        for key, value in expected.items():
            assert db.get(key) == value


# ----------------------------------------------------------------------
# Chaos schedule determinism: legacy configs replay byte-identically
# ----------------------------------------------------------------------
class TestChaosDeterminism:
    NODES = [f"pg0-{c}" for c in "abcdef"]
    AZS = {
        "az1": {"pg0-a", "pg0-d"},
        "az2": {"pg0-b", "pg0-e"},
        "az3": {"pg0-c", "pg0-f"},
    }

    def test_disabled_integrity_kinds_draw_nothing(self):
        """The silent-corruption kinds draw last and only when enabled:
        a schedule generated from a legacy config is event-for-event
        identical to the non-storage prefix of one with them enabled."""
        base = ChaosConfig()
        enabled = dc_replace(
            base,
            bit_rot_period_ms=900.0,
            torn_write_period_ms=4000.0,
            lost_write_period_ms=2500.0,
            misdirected_write_period_ms=2800.0,
        )
        for seed in range(6):
            legacy = ChaosSchedule.generate(
                seed, self.NODES, self.AZS, 20_000.0, config=base
            )
            with_storage = ChaosSchedule.generate(
                seed, self.NODES, self.AZS, 20_000.0, config=enabled
            )
            assert legacy.events == [
                e for e in with_storage.events
                if e.target != STORAGE_TARGET
            ]

    def test_integrity_profile_draws_all_four_kinds(self):
        schedule = ChaosSchedule.generate(
            3, self.NODES, self.AZS, 30_000.0,
            config=integrity_chaos_config(),
        )
        kinds = {e.kind for e in schedule.events if e.target == STORAGE_TARGET}
        assert kinds == {BIT_ROT, TORN_WRITE, LOST_WRITE, MISDIRECTED_WRITE}

    def test_schedule_reproducible_for_seed(self):
        a = ChaosSchedule.generate(
            7, self.NODES, self.AZS, 20_000.0,
            config=integrity_chaos_config(),
        )
        b = ChaosSchedule.generate(
            7, self.NODES, self.AZS, 20_000.0,
            config=integrity_chaos_config(),
        )
        assert a.events == b.events
