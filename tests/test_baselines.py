"""Tests for the consensus/replication baselines."""

import random

import pytest

from repro.baselines import (
    AriesRecoveryModel,
    LeaseFencing,
    MirroredCluster,
    PaxosCluster,
    RaftCluster,
    TwoPhaseCommitCluster,
)
from repro.baselines.raft import Role
from repro.errors import ConfigurationError
from repro.sim.events import EventLoop
from repro.sim.network import Network


def make_env(seed=7):
    loop = EventLoop()
    rng = random.Random(seed)
    return loop, Network(loop, rng), rng


class TestTwoPhaseCommit:
    def test_commit_completes_with_all_yes(self):
        loop, network, rng = make_env()
        tpc = TwoPhaseCommitCluster(loop, network, rng, participant_count=4)
        future = tpc.commit()
        loop.run_until_idle()
        txn_id, committed = future.result()
        assert committed
        assert all(
            txn_id in p.committed for p in tpc.participants
        )

    def test_one_no_vote_aborts_everywhere(self):
        loop, network, rng = make_env()
        tpc = TwoPhaseCommitCluster(loop, network, rng, participant_count=3)
        tpc.participants[1].vote_yes = False
        future = tpc.commit()
        loop.run_until_idle()
        _txn, committed = future.result()
        assert not committed
        assert all(not p.committed for p in tpc.participants)

    def test_latency_is_two_round_trips_plus_disk(self):
        loop, network, rng = make_env()
        tpc = TwoPhaseCommitCluster(loop, network, rng)
        future = tpc.commit()
        loop.run_until_idle()
        assert future.done
        latency = tpc.coordinator.commit_latencies[0]
        assert latency > 1.0  # 2x cross-AZ RTT + forced writes

    def test_coordinator_crash_blocks_participants(self):
        """The blocking window the paper's design avoids."""
        loop, network, rng = make_env()
        tpc = TwoPhaseCommitCluster(loop, network, rng, participant_count=4)
        future = tpc.commit()
        loop.run(until=1.2)  # prepares delivered, votes in flight
        tpc.crash_coordinator()
        loop.run(until=10_000.0)
        assert not future.done
        assert tpc.blocked_transaction_count() == 4  # stuck prepared

    def test_messages_per_commit(self):
        loop, network, rng = make_env()
        tpc = TwoPhaseCommitCluster(loop, network, rng, participant_count=6)
        tpc.commit()
        loop.run_until_idle()
        # prepare + vote + decision + ack per participant = 4 * 6.
        assert network.stats.messages_sent == 24


class TestPaxos:
    def test_election_then_chosen_values(self):
        loop, network, rng = make_env()
        paxos = PaxosCluster(loop, network, rng, acceptor_count=5)
        election = paxos.elect()
        loop.run_until_idle()
        assert election.result() is True
        futures = [paxos.propose(f"v{i}") for i in range(10)]
        loop.run_until_idle()
        assert [f.result() for f in futures] == list(range(10))

    def test_propose_before_election_rejected(self):
        loop, network, rng = make_env()
        paxos = PaxosCluster(loop, network, rng)
        with pytest.raises(RuntimeError):
            paxos.propose("too-early")

    def test_values_applied_in_slot_order(self):
        """In-order commit: a slow early slot holds back later ones."""
        loop, network, rng = make_env()
        paxos = PaxosCluster(loop, network, rng, acceptor_count=5)
        election = paxos.elect()
        loop.run_until_idle()
        order = []
        for i in range(5):
            paxos.propose(i).add_done_callback(
                lambda f: order.append(f.result())
            )
        loop.run_until_idle()
        assert order == sorted(order)

    def test_tolerates_minority_acceptor_failure(self):
        loop, network, rng = make_env()
        paxos = PaxosCluster(loop, network, rng, acceptor_count=5)
        election = paxos.elect()
        loop.run_until_idle()
        network.fail_node("paxos-a0")
        network.fail_node("paxos-a1")
        future = paxos.propose("survives")
        loop.run_until_idle()
        assert future.done

    def test_blocks_on_majority_failure(self):
        loop, network, rng = make_env()
        paxos = PaxosCluster(loop, network, rng, acceptor_count=5)
        paxos.elect()
        loop.run_until_idle()
        for i in range(3):
            network.fail_node(f"paxos-a{i}")
        future = paxos.propose("stuck")
        loop.run(until=1_000.0)
        assert not future.done


class TestRaft:
    def test_elects_exactly_one_leader(self):
        loop, network, rng = make_env(seed=11)
        raft = RaftCluster(loop, network, rng, node_count=5)
        leader = raft.elect_first_leader()
        loop.run(until=loop.now + 500)
        leaders = [n for n in raft.nodes if n.role is Role.LEADER]
        assert len(leaders) == 1
        assert leaders[0] is leader

    def test_replicates_and_commits(self):
        loop, network, rng = make_env(seed=12)
        raft = RaftCluster(loop, network, rng, node_count=5)
        leader = raft.elect_first_leader()
        futures = [leader.propose(f"cmd{i}") for i in range(5)]
        loop.run(until=loop.now + 1_000)
        assert all(f.done for f in futures)
        for node in raft.nodes:
            assert node.commit_index >= 4 or node.role is Role.LEADER

    def test_leader_crash_causes_election_gap_then_recovers(self):
        """The availability stall Aurora's epochs avoid."""
        loop, network, rng = make_env(seed=13)
        raft = RaftCluster(loop, network, rng, node_count=5)
        leader = raft.elect_first_leader()
        future = leader.propose("before-crash")
        loop.run(until=loop.now + 500)
        assert future.done
        crash_time = loop.now
        network.fail_node(leader.name)
        new_leader = None
        while new_leader is None:
            loop.run(until=loop.now + 50)
            candidates = [
                n for n in raft.nodes
                if n.role is Role.LEADER and network.is_up(n.name)
            ]
            new_leader = candidates[0] if candidates else None
            assert loop.now < crash_time + 30_000
        gap = new_leader.became_leader_at - crash_time
        assert gap >= 100.0  # at least an election timeout of dead air
        future = new_leader.propose("after-failover")
        loop.run(until=loop.now + 1_000)
        assert future.done

    def test_follower_rejects_stale_term(self):
        loop, network, rng = make_env(seed=14)
        raft = RaftCluster(loop, network, rng, node_count=3)
        leader = raft.elect_first_leader()
        follower = next(n for n in raft.nodes if n is not leader)
        assert follower.term >= leader.term


class TestMirrored:
    def test_write_all_read_one(self):
        loop, network, rng = make_env()
        mirrored = MirroredCluster(loop, network, rng, mirror_count=2)
        future = mirrored.write("k", "v")
        loop.run_until_idle()
        assert future.done
        assert mirrored.primary.read("k") == "v"
        assert all(m.data["k"] == "v" for m in mirrored.mirrors)

    def test_single_dead_mirror_stalls_all_writes(self):
        """The write-availability weakness of write-all replication."""
        loop, network, rng = make_env()
        mirrored = MirroredCluster(loop, network, rng, mirror_count=3)
        network.fail_node("mirror-1")
        future = mirrored.write("k", "v")
        loop.run(until=5_000.0)
        assert not future.done
        assert mirrored.primary.stalled_writes == 1

    def test_slow_mirror_sets_write_latency(self):
        loop, network, rng = make_env()
        mirrored = MirroredCluster(loop, network, rng, mirror_count=3)
        network.set_latency_scale("mirror-2", 40.0)
        future = mirrored.write("k", "v")
        loop.run_until_idle()
        assert mirrored.primary.write_latencies[0] > 10.0


class TestAriesModel:
    def test_recovery_time_proportional_to_log(self):
        model = AriesRecoveryModel()
        assert model.recovery_time_ms(0) == 0.0
        t1 = model.recovery_time_ms(100_000)
        t2 = model.recovery_time_ms(1_000_000)
        assert t2 == pytest.approx(10 * t1)

    def test_checkpoint_tradeoff(self):
        model = AriesRecoveryModel()
        short = model.checkpoint_interval_tradeoff(
            write_rate_per_s=10_000, checkpoint_cost_ms=500, interval_s=30
        )
        long = model.checkpoint_interval_tradeoff(
            write_rate_per_s=10_000, checkpoint_cost_ms=500, interval_s=300
        )
        assert short["worst_case_recovery_ms"] < long["worst_case_recovery_ms"]
        assert short["checkpoint_overhead_pct"] > long["checkpoint_overhead_pct"]

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            AriesRecoveryModel(redo_apply_us=-1)


class TestLeaseFencing:
    def test_fencing_must_wait_out_the_lease(self):
        lease = LeaseFencing(lease_duration_ms=30_000)
        lease.acquire("writer-1", now=0.0)
        assert lease.fencing_wait_ms(now=10_000.0) == 20_000.0
        assert lease.fencing_wait_ms(now=30_000.0) == 0.0

    def test_renewal_extends(self):
        lease = LeaseFencing(lease_duration_ms=10_000)
        lease.acquire("w", now=0.0)
        lease.renew("w", now=8_000.0)
        assert lease.fencing_wait_ms(now=10_000.0) == 8_000.0

    def test_conflicting_acquire_rejected(self):
        lease = LeaseFencing(lease_duration_ms=10_000)
        lease.acquire("w1", now=0.0)
        with pytest.raises(ConfigurationError):
            lease.acquire("w2", now=5_000.0)
        lease.acquire("w2", now=10_000.0)  # expired: fine

    def test_failover_dead_time(self):
        lease = LeaseFencing(lease_duration_ms=30_000)
        lease.renew_interval_ms = 10_000
        lease.acquire("w", now=0.0)
        lease.renew("w", now=9_000.0)  # lease now runs to 39s
        dead = lease.failover_dead_time_ms(
            holder_crash_at=10_000.0, detection_delay_ms=2_000.0
        )
        # 2s detection + 27s residual lease.
        assert dead == pytest.approx(29_000.0)

    def test_expired_renewal_rejected(self):
        lease = LeaseFencing(lease_duration_ms=1_000)
        lease.acquire("w", now=0.0)
        with pytest.raises(ConfigurationError):
            lease.renew("w", now=2_000.0)
