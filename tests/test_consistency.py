"""Unit + property tests for the consistency-point trackers.

Includes the exact Figure 3 scenario from the paper.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.consistency import (
    MinReadPointTracker,
    PGConsistencyTracker,
    PGFrontierHistory,
    SegmentChainTracker,
    VolumeConsistencyTracker,
)
from repro.core.lsn import NULL_LSN
from repro.core.quorum import aurora_v6_config, v6_config
from repro.errors import ConfigurationError


class TestSegmentChainTracker:
    def test_in_order_arrival_advances(self):
        chain = SegmentChainTracker()
        assert chain.offer(1, 0)
        assert chain.offer(3, 1)
        assert chain.offer(7, 3)
        assert chain.scl == 7
        assert not chain.has_gap

    def test_gap_blocks_advancement(self):
        chain = SegmentChainTracker()
        chain.offer(1, 0)
        advanced = chain.offer(7, 3)  # record 3 missing
        assert not advanced
        assert chain.scl == 1
        assert chain.has_gap
        assert chain.max_received == 7

    def test_gap_fill_links_pending_records(self):
        chain = SegmentChainTracker()
        chain.offer(1, 0)
        chain.offer(7, 3)
        chain.offer(9, 7)
        assert chain.scl == 1
        assert chain.offer(3, 1)  # the hole (gossip fill-in)
        assert chain.scl == 9
        assert chain.pending_count() == 0

    def test_out_of_order_storm(self):
        chain = SegmentChainTracker()
        lsns = [2, 4, 6, 8, 10]
        prevs = [0, 2, 4, 6, 8]
        for lsn, prev in reversed(list(zip(lsns, prevs))):
            chain.offer(lsn, prev)
        assert chain.scl == 10

    def test_duplicate_below_scl_ignored(self):
        chain = SegmentChainTracker()
        chain.offer(1, 0)
        chain.offer(2, 1)
        assert not chain.offer(1, 0)
        assert chain.scl == 2

    def test_truncate_clamps_and_drops_pending(self):
        chain = SegmentChainTracker()
        chain.offer(1, 0)
        chain.offer(2, 1)
        chain.offer(9, 5)  # beyond the coming truncation
        chain.truncate(2)
        assert chain.scl == 2
        assert chain.max_received == 2
        assert chain.pending_count() == 0
        # Post-truncation records chain from the surviving point.
        assert chain.offer(10, 2)
        assert chain.scl == 10

    def test_truncate_window_relinks_new_generation_pending(self):
        chain = SegmentChainTracker()
        chain.offer(1, 0)
        chain.offer(2, 1)        # dead-generation record, inside the window
        chain.offer(101, 1)      # post-recovery record, above the window
        assert chain.scl == 2
        chain.truncate(1, last=100)
        # The window (1, 100] is annulled; the new-generation record
        # relinks through the surviving anchor.
        assert chain.scl == 101
        assert chain.max_received == 101

    def test_truncate_window_is_noop_past_new_generation_scl(self):
        chain = SegmentChainTracker()
        chain.offer(1, 0)
        chain.offer(5, 3)        # dead-generation stray, never chained
        chain.offer(101, 1)      # already chain-complete in the new gen
        assert chain.scl == 101
        chain.truncate(1, last=100)  # late-delivered truncation
        assert chain.scl == 101      # not regressed
        assert chain.pending_count() == 0  # the stray was annulled

    def test_rebase_jumps_forward(self):
        chain = SegmentChainTracker()
        chain.offer(9, 7)  # above the hydration baseline
        assert chain.rebase(7)
        assert chain.scl == 9

    def test_rebase_spanning_link(self):
        """Baseline between two chain records (e.g. a global coalesce
        point): the spanning record re-links at the baseline."""
        chain = SegmentChainTracker()
        chain.offer(9, 5)
        assert chain.rebase(7)  # 5 < 7 < 9
        assert chain.scl == 9

    def test_rebase_backwards_is_noop(self):
        chain = SegmentChainTracker()
        chain.offer(5, 0)
        assert not chain.rebase(3)
        assert chain.scl == 5


class TestPGConsistencyTracker:
    def test_pgcl_advances_at_write_quorum(self):
        tracker = PGConsistencyTracker(0, aurora_v6_config())
        members = sorted(tracker.config.members)
        for member in members[:3]:
            assert not tracker.record_ack(member, 10) or tracker.pgcl == 0
        assert tracker.pgcl == NULL_LSN
        assert tracker.record_ack(members[3], 10)  # 4th ack
        assert tracker.pgcl == 10

    def test_pgcl_is_the_fourth_highest_scl(self):
        tracker = PGConsistencyTracker(0, aurora_v6_config())
        members = sorted(tracker.config.members)
        scls = [20, 18, 15, 12, 7, 3]
        for member, scl in zip(members, scls):
            tracker.record_ack(member, scl)
        assert tracker.pgcl == 12

    def test_pgcl_never_regresses(self):
        tracker = PGConsistencyTracker(0, aurora_v6_config())
        members = sorted(tracker.config.members)
        for member in members[:4]:
            tracker.record_ack(member, 10)
        assert tracker.pgcl == 10
        # Stale/lower acks change nothing.
        tracker.record_ack(members[0], 5)
        assert tracker.pgcl == 10

    def test_ack_from_evicted_member_ignored(self):
        tracker = PGConsistencyTracker(0, aurora_v6_config())
        assert not tracker.record_ack("stranger", 100)
        assert tracker.pgcl == NULL_LSN

    def test_config_swap_preserves_known_scls(self):
        members = [f"s{i}" for i in range(6)]
        tracker = PGConsistencyTracker(0, v6_config(members))
        for member in members[:4]:
            tracker.record_ack(member, 10)
        from repro.core.quorum import transition_config

        dual = transition_config([members, members[:5] + ["g"]])
        tracker.set_config(dual)
        # Old acks meet 4/6 of the old group but not 4/6 of the new one.
        assert tracker.pgcl == NULL_LSN or tracker.pgcl == 10
        # PGCL may not regress below what was already observed... but the
        # new AND-quorum needs g too:
        tracker.record_ack("g", 10)
        assert tracker.pgcl == 10

    def test_durable_members_at(self):
        tracker = PGConsistencyTracker(0, aurora_v6_config())
        members = sorted(tracker.config.members)
        tracker.record_ack(members[0], 20)
        tracker.record_ack(members[1], 10)
        assert tracker.durable_members_at(15) == {members[0]}
        assert tracker.durable_members_at(10) == {members[0], members[1]}


class TestVolumeConsistencyTracker:
    def test_figure_3_scenario(self):
        """Reproduce Figure 3 exactly: odd records -> PG1, even -> PG2;
        105 and 106 not yet at quorum; PGCL1=103, PGCL2=104, VCL=104."""
        volume = VolumeConsistencyTracker()
        for lsn in range(101, 107):
            pg = 1 if lsn % 2 else 2
            volume.register(lsn, pg, mtr_end=True)
        volume.on_pgcl(1, 103)
        volume.on_pgcl(2, 104)
        assert volume.vcl == 104
        assert volume.vdl == 104
        # 105 reaches quorum: VCL moves through 105... and 106 needs PG2.
        volume.on_pgcl(1, 105)
        assert volume.vcl == 105
        volume.on_pgcl(2, 106)
        assert volume.vcl == 106

    def test_vdl_sticks_to_mtr_boundaries(self):
        volume = VolumeConsistencyTracker()
        volume.register(1, 0, mtr_end=False)
        volume.register(2, 0, mtr_end=False)
        volume.register(3, 0, mtr_end=True)
        volume.register(4, 0, mtr_end=False)
        volume.on_pgcl(0, 2)
        assert volume.vcl == 2
        assert volume.vdl == NULL_LSN  # no MTR completed yet
        volume.on_pgcl(0, 4)
        assert volume.vcl == 4
        assert volume.vdl == 3  # the only MTR boundary

    def test_registration_must_be_ordered(self):
        volume = VolumeConsistencyTracker()
        volume.register(5, 0, True)
        with pytest.raises(ConfigurationError):
            volume.register(4, 0, True)

    def test_pgcl_regression_ignored(self):
        volume = VolumeConsistencyTracker()
        volume.register(1, 0, True)
        volume.on_pgcl(0, 1)
        assert volume.on_pgcl(0, 1) == (False, False)

    def test_reset_installs_recovered_points(self):
        volume = VolumeConsistencyTracker()
        volume.register(1, 0, True)
        volume.reset(vcl=50, vdl=48)
        assert volume.vcl == 50
        assert volume.vdl == 48
        assert volume.lag == 0

    def test_reset_vdl_defaults_to_vcl(self):
        volume = VolumeConsistencyTracker()
        volume.reset(vcl=7)
        assert volume.vcl == 7
        assert volume.vdl == 7

    def test_reset_rejects_vdl_above_vcl(self):
        # VDL is by definition the last MTR completion at or below VCL;
        # a recovery handing in the opposite ordering is a caller bug.
        volume = VolumeConsistencyTracker()
        with pytest.raises(ConfigurationError):
            volume.reset(vcl=5, vdl=7)

    def test_reset_below_current_points_is_allowed(self):
        # Recovery may truncate the uncommitted tail of a dead generation:
        # the recovered points can sit below where the old generation's
        # trackers had advanced (loss above VCL is legal, section 3.3).
        volume = VolumeConsistencyTracker()
        for lsn in (1, 2, 3):
            volume.register(lsn, 0, True)
        volume.on_pgcl(0, 3)
        assert volume.vcl == 3
        volume.reset(vcl=2, vdl=2)
        assert (volume.vcl, volume.vdl) == (2, 2)
        assert volume.lag == 0

    def test_reset_keeps_registration_high_water(self):
        # The LSN allocator does not rewind on recovery: re-registering an
        # LSN from the dead generation must still be rejected even when
        # the recovered VCL is lower.
        volume = VolumeConsistencyTracker()
        for lsn in (1, 2, 3):
            volume.register(lsn, 0, True)
        volume.reset(vcl=1)
        with pytest.raises(ConfigurationError):
            volume.register(3, 0, True)
        volume.register(4, 0, True)  # fresh LSNs continue fine
        assert volume.lag == 1

    def test_reset_discards_in_flight_mtr_tail(self):
        # An open MTR (no mtr_end yet) straddling the crash: the recovered
        # chain is cleared, and stale PGCL echoes from the old generation
        # cannot resurrect the annulled tail.
        volume = VolumeConsistencyTracker()
        volume.register(1, 0, True)
        volume.register(2, 0, False)
        volume.register(3, 1, False)  # MTR still open at crash time
        volume.on_pgcl(0, 2)
        assert (volume.vcl, volume.vdl) == (2, 1)
        volume.reset(vcl=1, vdl=1)
        assert volume.lag == 0
        assert volume.on_pgcl(0, 3) == (False, False)
        assert volume.on_pgcl(1, 3) == (False, False)
        assert (volume.vcl, volume.vdl) == (1, 1)

    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_vcl_vdl_monotonic_under_any_ack_order(self, assignments):
        """Property: however PGCLs advance, VCL/VDL only move forward and
        VDL <= VCL always, with VDL on an MTR boundary."""
        volume = VolumeConsistencyTracker()
        mtr_ends = {}
        for lsn, (pg, end) in enumerate(assignments, start=1):
            volume.register(lsn, pg, end)
            mtr_ends[lsn] = end
        last_vcl, last_vdl = 0, 0
        import random as _random

        order = list(range(1, len(assignments) + 1))
        _random.Random(42).shuffle(order)
        for lsn in order:
            pg = assignments[lsn - 1][0]
            volume.on_pgcl(pg, lsn)
            assert volume.vcl >= last_vcl
            assert volume.vdl >= last_vdl
            assert volume.vdl <= volume.vcl
            if volume.vdl > 0:
                assert mtr_ends[volume.vdl]
            last_vcl, last_vdl = volume.vcl, volume.vdl


class TestPGFrontierHistory:
    def test_translates_global_points_to_pg_points(self):
        history = PGFrontierHistory()
        history.record(1, 0)
        history.record(2, 1)
        history.record(3, 0)
        history.advance_vdl(3)
        assert history.pg_read_point(0, 3) == 3
        assert history.pg_read_point(1, 3) == 2
        assert history.pg_read_point(2, 3) == NULL_LSN

    def test_snapshots_per_vdl_point(self):
        history = PGFrontierHistory()
        history.record(1, 0)
        history.advance_vdl(1)
        history.record(2, 1)
        history.advance_vdl(2)
        assert history.frontier_at(1) == {0: 1}
        assert history.frontier_at(2) == {0: 1, 1: 2}

    def test_unknown_read_point_rejected(self):
        history = PGFrontierHistory()
        with pytest.raises(ConfigurationError):
            history.frontier_at(17)

    def test_null_point_always_known(self):
        assert PGFrontierHistory().frontier_at(NULL_LSN) == {}

    def test_prune_keeps_floor_and_latest(self):
        history = PGFrontierHistory()
        for lsn in range(1, 6):
            history.record(lsn, 0)
            history.advance_vdl(lsn)
        history.prune_below(4)
        assert history.frontier_at(4) == {0: 4}
        assert history.frontier_at(5) == {0: 5}
        with pytest.raises(ConfigurationError):
            history.frontier_at(2)

    def test_out_of_order_record_rejected(self):
        history = PGFrontierHistory()
        history.record(5, 0)
        with pytest.raises(ConfigurationError):
            history.record(4, 0)

    def test_reset_installs_recovered_frontier(self):
        history = PGFrontierHistory()
        history.reset(vdl=100, frontiers={0: 99, 1: 100})
        assert history.pg_read_point(0, 100) == 99
        assert history.pg_read_point(1, 100) == 100


class TestMinReadPointTracker:
    def test_idle_reports_floor(self):
        tracker = MinReadPointTracker()
        tracker.advance_floor(10)
        assert tracker.current() == 10

    def test_active_views_pin_the_minimum(self):
        tracker = MinReadPointTracker()
        tracker.advance_floor(10)
        tracker.register(10)
        tracker.advance_floor(50)
        assert tracker.current() == 10  # old view pins PGMRPL
        tracker.release(10)
        assert tracker.current() == 50

    def test_refcounting_same_point(self):
        tracker = MinReadPointTracker()
        tracker.register(5)
        tracker.register(5)
        tracker.release(5)
        assert tracker.current() == 5
        tracker.release(5)
        assert tracker.current() == NULL_LSN

    def test_register_below_floor_rejected(self):
        tracker = MinReadPointTracker()
        tracker.advance_floor(10)
        with pytest.raises(ConfigurationError):
            tracker.register(5)

    def test_release_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            MinReadPointTracker().release(1)

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_pgmrpl_is_monotonic(self, points):
        """Property: opening views at non-decreasing durable points and
        closing them in any order never moves PGMRPL backwards."""
        tracker = MinReadPointTracker()
        reported = [tracker.current()]
        open_views = []
        floor = 0
        for point in sorted(points):
            floor = max(floor, point)
            tracker.advance_floor(floor)
            tracker.register(point if point >= floor else floor)
            open_views.append(point if point >= floor else floor)
            reported.append(tracker.current())
        import random as _random

        _random.Random(7).shuffle(open_views)
        for point in open_views:
            tracker.release(point)
            reported.append(tracker.current())
        assert reported == sorted(reported)
