"""The geo-replicated Global Database tier, end to end.

Covers the whole disaster story on the simulated WAN: steady-state redo
shipping in both ack modes, region loss with session continuity through
promotion, split-brain fencing (the lease self-fence provably beats the
secondary's promotion), chaos that must NOT promote (stalls, brownouts),
the geo chaos-schedule generator, the RPO/RTO analysis, and the audited
gates of ``audit-run --geo``.
"""

import random

import pytest

from repro.audit.runner import AuditRunConfig, run_audit
from repro.db.instance import InstanceState
from repro.errors import (
    ConfigurationError,
    RegionUnavailableError,
    ReplicationLagExceededError,
)
from repro.analysis.rpo_rto import (
    rpo_rto_from_records,
    rpo_rto_report,
)
from repro.geo import ASYNC, SYNC, GeoCluster, GeoConfig
from repro.geo.failover import (
    GEO_TERMINAL,
    PROMOTED,
    GeoFailoverRecord,
    summarize_geo_failovers,
)
from repro.repair import HealthMonitor
from repro.sim.chaos import (
    REGION_LOSS,
    REGION_PARTITION,
    STREAM_STALL,
    WAN_BROWNOUT,
    ChaosConfig,
    ChaosSchedule,
    geo_chaos_config,
)
from repro.sim.events import EventLoop
from repro.sim.failures import FailureInjector
from repro.sim.network import Network

MODES = (ASYNC, SYNC)


def _steady(mode: str, seed: int = 7, writes: int = 30):
    geo = GeoCluster.build(GeoConfig(seed=seed, ack_mode=mode))
    geo.arm_geo_failover()
    db = geo.session()
    committed = {}
    for i in range(writes):
        db.write(f"k{i}", f"v{i}")
        committed[f"k{i}"] = f"v{i}"
        geo.run_for(5.0)
    geo.run_for(500.0)
    return geo, db, committed


# ----------------------------------------------------------------------
# Steady state: the secondary volume tracks the primary's durable VDL
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
def test_steady_replication_converges_to_zero_lag(mode):
    geo, db, _ = _steady(mode)
    assert geo.applier.applied_vdl > 0
    assert geo.applier.lag == 0
    assert geo.applier.chunks_applied > 0
    # The frontier made it back to the primary on WAN acks.
    assert geo.sender.remote_applied_vdl == geo.applier.applied_vdl
    # The audited invariant held structurally throughout.
    assert geo.applier.applied_vdl <= geo.applier.primary_vdl


# ----------------------------------------------------------------------
# Region loss: promotion, session continuity, the sync RPO-zero claim
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
def test_region_loss_promotes_secondary_with_session_continuity(mode):
    geo, db, committed = _steady(mode)
    geo.lose_region()
    # The same client session keeps working: it sees the typed
    # RegionUnavailableError internally and retries through promotion.
    scn = db.write("after", "loss")
    assert geo.promoted
    assert scn > 0
    record = geo.promoted_record
    assert record.outcome == PROMOTED
    assert record.ack_mode == mode
    assert record.promotion_attempts >= 1
    assert record.applied_vdl > 0
    assert record.rto_ms is not None and record.rto_ms < 30_000.0
    assert record.detection_ms > 0
    if mode == SYNC:
        # RPO zero: every sync-acked commit survives on the promoted
        # region (that is what the commit gate bought).
        lost = [k for k, v in committed.items() if db.get(k) != v]
        assert not lost
    assert db.get("after") == "loss"
    # Fencing: the deposed primary never acked at/after promotion.
    last_ack = geo.primary.writer.stats.last_commit_ack_at
    assert last_ack is None or last_ack < record.promoted_at
    auditor = _FlagRecorder()
    geo.check_fencing(auditor)
    assert auditor.flags == []


class _FlagRecorder:
    def __init__(self):
        self.flags = []

    def flag(self, kind, target, detail):
        self.flags.append((kind, target, detail))


# ----------------------------------------------------------------------
# Split brain: both regions alive, WAN cut -- exactly one writer survives
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
def test_split_brain_lease_fence_beats_promotion(mode):
    geo, db, _ = _steady(mode, seed=11, writes=10)
    geo.partition_regions()
    # Async: the primary keeps acking locally until its lease expires.
    # Sync: gated commits fail retryably, the session waits out the
    # fence and re-applies on the promoted region.
    db.write("split", "brain")
    geo.run_for(8000.0)
    assert geo.promoted
    assert geo.sender.self_fenced_at is not None
    record = geo.promoted_record
    # The fence provably preceded the promotion.
    assert geo.sender.self_fenced_at < record.promoted_at
    last_ack = geo.primary.writer.stats.last_commit_ack_at
    assert last_ack is not None and last_ack < record.promoted_at
    if mode == SYNC:
        assert geo.sender.commits_lag_failed >= 1
    # Idempotent re-apply lands on the promoted region.
    db.write("split", "brain")
    assert db.get("split") == "brain"
    # Healing the WAN must not resurrect the stale primary: it stays
    # closed and its last commit ack stays frozen pre-promotion.
    geo.heal_regions()
    geo.run_for(2000.0)
    assert geo.primary.writer.state is InstanceState.CLOSED
    assert geo.primary.writer.stats.last_commit_ack_at == last_ack
    auditor = _FlagRecorder()
    geo.check_fencing(auditor)
    assert auditor.flags == []


# ----------------------------------------------------------------------
# Degraded-but-alive chaos must not trigger disaster recovery
# ----------------------------------------------------------------------
def test_stream_stall_and_brownout_do_not_promote():
    geo = GeoCluster.build(GeoConfig(seed=13))
    geo.arm_geo_failover()
    db = geo.session()
    for i in range(5):
        db.write(f"k{i}", f"v{i}")
    geo.stall_stream(800.0)
    geo.run_for(2000.0)
    assert not geo.promoted and geo.geo_failover.idle
    geo.wan_brownout(0.5, 3.0, duration_ms=1200.0)
    geo.run_for(4000.0)
    assert not geo.promoted
    # The tier is still fully live afterwards: writes replicate and the
    # lag frontier drains back to zero.
    db.write("still", "here")
    geo.run_for(1000.0)
    assert geo.applier.lag == 0
    # Any failover the monitor did start must have stood down.
    assert all(r.outcome in GEO_TERMINAL for r in geo.geo_failover.records)
    assert not any(r.outcome == PROMOTED for r in geo.geo_failover.records)


# ----------------------------------------------------------------------
# The typed error surface sessions retry on
# ----------------------------------------------------------------------
def test_session_surfaces_typed_region_unavailable():
    geo = GeoCluster.build(GeoConfig(seed=3))
    session = geo.session()
    geo.region_unavailable = True
    with pytest.raises(RegionUnavailableError):
        session.instance
    geo.region_unavailable = False
    assert session.instance is geo.primary.writer


def test_replication_lag_error_is_session_retryable():
    from repro.db.session import ClusterSession

    assert ReplicationLagExceededError in ClusterSession.RETRYABLE
    assert RegionUnavailableError in ClusterSession.RETRYABLE


# ----------------------------------------------------------------------
# HealthMonitor.retire: teardown is permanent, not a death judgment
# ----------------------------------------------------------------------
def test_retired_segment_never_resurrected_or_judged():
    geo = GeoCluster.build(GeoConfig(seed=5))
    monitor = HealthMonitor(geo.loop, geo.primary.metadata)
    for node in geo.primary.nodes.values():
        node.health_probe = monitor
    monitor.start()
    db = geo.session()
    for i in range(5):
        db.write(f"k{i}", f"v{i}")
    geo.run_for(2000.0)
    victim = sorted(geo.primary.nodes)[0]
    assert monitor.last_alive(victim) is not None
    monitor.retire(victim)
    assert monitor.is_retired(victim)
    assert monitor.last_alive(victim) is None
    # The node keeps gossiping (teardown, not death) -- late signals
    # must be ignored, and metadata still listing it must not re-track
    # it on the sweep's membership re-scan.
    for i in range(5):
        db.write(f"r{i}", f"v{i}")
        geo.run_for(1000.0)
    assert monitor.last_alive(victim) is None
    assert victim not in monitor._states
    # And silence from it is never judged: no ghost confirmations.
    assert not any(victim == target for _, _, target in monitor.events)
    assert monitor.counters["confirmed_dead"] == 0


# ----------------------------------------------------------------------
# The geo chaos profile
# ----------------------------------------------------------------------
NODES = ["n1", "n2", "n3", "n4", "n5", "n6"]
AZS = {
    "az1": {"n1", "n2"},
    "az2": {"n3", "n4"},
    "az3": {"n5", "n6"},
}
GEO_KINDS = (REGION_LOSS, REGION_PARTITION, WAN_BROWNOUT, STREAM_STALL)


@pytest.mark.parametrize("seed", range(8))
def test_geo_schedule_has_exactly_one_terminal_region_event(seed):
    horizon = 30_000.0
    schedule = ChaosSchedule.generate(
        seed, NODES, AZS, horizon, geo_chaos_config()
    )
    terminal = [
        e for e in schedule.events
        if e.kind in (REGION_LOSS, REGION_PARTITION)
    ]
    assert len(terminal) == 1
    # Placed mid-run: late enough for steady state, early enough that
    # promotion and reconciliation finish inside the horizon.
    assert 0.45 * horizon <= terminal[0].at <= 0.7 * horizon
    # WAN degradation (non-terminal) rides along.
    assert any(e.kind == WAN_BROWNOUT for e in schedule.events)
    assert any(e.kind == STREAM_STALL for e in schedule.events)


def test_geo_schedule_is_deterministic_per_seed():
    a = ChaosSchedule.generate(9, NODES, AZS, 30_000.0, geo_chaos_config())
    b = ChaosSchedule.generate(9, NODES, AZS, 30_000.0, geo_chaos_config())
    assert [str(e) for e in a.events] == [str(e) for e in b.events]


def test_default_chaos_profile_stays_geo_free():
    # Pre-geo schedules must replay unchanged: the default config never
    # emits region or WAN events (the geo kinds are drawn from the RNG
    # last, and only when enabled).
    for seed in range(6):
        schedule = ChaosSchedule.generate(
            seed, NODES, AZS, 30_000.0, ChaosConfig()
        )
        assert not any(e.kind in GEO_KINDS for e in schedule.events)


def test_install_requires_geo_callbacks():
    loop = EventLoop()
    injector = FailureInjector(loop, Network(loop, random.Random(0)),
                               random.Random(0))
    for az, members in AZS.items():
        injector.register_az(az, members)
    schedule = ChaosSchedule.generate(
        0, NODES, AZS, 30_000.0, geo_chaos_config()
    )
    with pytest.raises(ConfigurationError):
        schedule.install(injector)


# ----------------------------------------------------------------------
# RPO/RTO analysis
# ----------------------------------------------------------------------
def _record(mode, failed_at, promoted_at, lost=0, rpo=0.0):
    return GeoFailoverRecord(
        primary_id="writer-0",
        ack_mode=mode,
        failed_at=failed_at,
        confirmed_at=failed_at + 900.0,
        began_at=failed_at + 2800.0,
        promoted_at=promoted_at,
        finished_at=promoted_at,
        outcome=PROMOTED,
        promotion_attempts=1,
        applied_vdl=200,
        primary_vdl_seen=220,
        recovered_vdl=1_000_200,
        lost_commits=lost,
        rpo_ms=rpo,
    )


def test_rpo_rto_report_requires_rto_samples():
    with pytest.raises(ConfigurationError):
        rpo_rto_report(rto_samples_ms=[])
    with pytest.raises(ConfigurationError):
        rpo_rto_report(rto_samples_ms=[1000.0], rto_budget_s=0.0)
    with pytest.raises(ConfigurationError):
        rpo_rto_from_records([])  # no promoted records


def test_rpo_rto_report_gates_on_worst_case():
    report = rpo_rto_report(
        rto_samples_ms=[3000.0, 6000.0],
        sync_lost_commits=0,
        sync_runs=2,
        rto_budget_s=30.0,
    )
    assert report.meets_rto
    assert report.worst_rto_fraction == pytest.approx(0.2)
    assert report.sync_rpo_zero and report.ok
    # One sample over budget flips the gate: tails, not averages.
    worse = rpo_rto_report(rto_samples_ms=[3000.0, 31_000.0])
    assert not worse.meets_rto and not worse.ok
    # Any sync-acked loss is a violation regardless of timing.
    lossy = rpo_rto_report(
        rto_samples_ms=[3000.0], sync_lost_commits=1, sync_runs=1
    )
    assert lossy.meets_rto and not lossy.ok
    assert any("VIOLATED" in line for line in lossy.render_lines())


def test_rpo_rto_from_records_splits_modes():
    records = [
        _record(SYNC, 10_000.0, 14_000.0),
        _record(ASYNC, 20_000.0, 25_000.0, lost=3, rpo=800.0),
        # Unpromoted (rolled back) records are excluded.
        GeoFailoverRecord(
            primary_id="writer-0", ack_mode=SYNC,
            failed_at=1.0, confirmed_at=2.0,
        ),
    ]
    report = rpo_rto_from_records(records)
    assert report.sync_runs == 1 and report.async_runs == 1
    assert report.sync_lost_commits == 0
    assert report.async_lost_commits == 3
    assert report.rto.max_ms == pytest.approx(5000.0)
    assert report.rpo is not None
    assert report.rpo.max_ms == pytest.approx(800.0)
    assert report.ok
    summary = summarize_geo_failovers(records)
    assert summary.confirmed == 3


# ----------------------------------------------------------------------
# The audited gate end to end (one seed per ack-mode parity)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1])  # even = sync, odd = async
def test_geo_audit_run_passes_dr_gates(seed):
    config = AuditRunConfig(seed=seed, steps=150).as_geo()
    report = run_audit(config)
    assert report.violations == []
    assert report.geo_ok is True
    assert report.ok
    promoted = [r for r in report.geo_records if r.outcome == PROMOTED]
    assert len(promoted) == 1
    assert report.geo_ack_mode == (SYNC if seed % 2 == 0 else ASYNC)
    assert report.geo_rpo_rto is not None and report.geo_rpo_rto.ok
    # The human-readable report renders the geo section.
    assert any("geo DR gate" in line for line in report.render().splitlines())
