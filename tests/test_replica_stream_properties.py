"""Property tests for the replication stream's ordering robustness.

The replica's invariants must hold under ANY delivery order of chunks and
VDL updates (the simulated network jitters latencies, so reordering is
real).  These tests drive the intake functions directly with adversarial
permutations.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AuroraCluster, ClusterConfig
from repro.db.replication import (
    CommitNotice,
    MTRChunk,
    ReplicationFrame,
    VDLUpdate,
)


def _stream_items(payload):
    """Unwrap a wire payload into its stream items (frames carry many)."""
    if isinstance(payload, ReplicationFrame):
        return list(payload.items)
    if isinstance(payload, (MTRChunk, VDLUpdate, CommitNotice)):
        return [payload]
    return []


def captured_stream(txn_count, seed):
    """Run a writer with a replica attached; capture the raw stream."""
    cluster = AuroraCluster.build(ClusterConfig(seed=seed))
    replica = cluster.add_replica("capture")
    stream = []
    cluster.network.add_tap(
        lambda m: stream.extend(_stream_items(m.payload))
        if m.dst == "capture"
        else None
    )
    db = cluster.session()
    expected = {}
    for i in range(txn_count):
        key = f"key{i:02d}"
        db.write(key, i)
        expected[key] = i
    cluster.run_for(30)
    return cluster, stream, expected


def fresh_replica(cluster, name="fresh"):
    """A second replica attached at the same point the stream started."""
    from repro.db.replica import ReplicaInstance

    replica = ReplicaInstance(
        name=name, metadata=cluster.metadata, rng=cluster.rng
    )
    cluster.network.attach(replica, az="az2")
    replica.start()
    return replica


class TestStreamOrderRobustness:
    @given(seed=st.integers(0, 1_000), shuffle_seed=st.integers(0, 1_000))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_any_permutation_converges_to_the_same_state(
        self, seed, shuffle_seed
    ):
        cluster, stream, expected = captured_stream(6, seed=seed)
        replica = fresh_replica(cluster, name=f"r{seed}-{shuffle_seed}")
        # Attach at stream start (the capture replica attached at lsn 1
        # equivalent): reconstruct the attach point from the first chunk.
        chunks = [p for p in stream if isinstance(p, MTRChunk)]
        first_lsn = min(c.records[0].lsn for c in chunks)
        replica.attach(
            next_expected_lsn=first_lsn,
            vdl=first_lsn - 1,
            pg_frontiers={0: first_lsn - 1},
            commit_history={},
        )
        shuffled = list(stream)
        random.Random(shuffle_seed).shuffle(shuffled)
        for payload in shuffled:
            if isinstance(payload, MTRChunk):
                replica._on_chunk(payload)
            elif isinstance(payload, VDLUpdate):
                replica._on_vdl_update(payload)
            else:
                replica._on_commit_notice(payload)
        # All chunks sequenced + durability known: fully applied.
        assert replica.replica_lag == 0
        assert replica._pending_chunks == []
        # The applied state matches the writer's, read through the btree.
        from repro.db.session import Session

        rs = Session(replica)
        for key, value in expected.items():
            assert rs.get(key) == value

    @given(seed=st.integers(0, 1_000))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_vdl_gate_never_applies_ahead_of_durability(self, seed):
        """Feed chunks WITHOUT their VDL updates: nothing may apply."""
        cluster, stream, _expected = captured_stream(4, seed=seed)
        replica = fresh_replica(cluster, name=f"gate{seed}")
        chunks = [p for p in stream if isinstance(p, MTRChunk)]
        first_lsn = min(c.records[0].lsn for c in chunks)
        replica.attach(
            next_expected_lsn=first_lsn,
            vdl=first_lsn - 1,
            pg_frontiers={0: first_lsn - 1},
            commit_history={},
        )
        for chunk in chunks:
            replica._on_chunk(chunk)
        # Chunks buffered, none applied (invariant 1: lag durability).
        assert replica.stats.chunks_applied == 0
        assert replica.applied_vdl == first_lsn - 1
        # Now release durability: everything applies in order.
        top = max(c.records[-1].lsn for c in chunks)
        replica._on_vdl_update(
            VDLUpdate(writer_id="writer-1", vdl=top)
        )
        assert replica.stats.chunks_applied == len(chunks)
        assert replica.applied_vdl == top
