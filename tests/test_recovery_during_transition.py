"""Crash recovery while a membership change is in flight.

The hardest interaction in the paper's design space: the writer dies with a
protection group in its dual-quorum state (epoch 2 of Figure 5).  The
recovering instance loads the transition membership from the metadata
service, must reach the transition's read quorum (OR of the groups' 3/6),
truncate on the transition's write quorum (AND of the groups' 4/6), and the
change itself must remain completable or reversible afterwards.
"""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session


def crash_and_recover(cluster):
    cluster.crash_writer()
    process = cluster.recover_writer()
    session = Session(cluster.writer)
    session.drive(process)
    return session


class TestRecoveryDuringTransition:
    def test_recovery_under_dual_membership_then_finalize(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=515))
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(12)})
        cluster.failures.crash_node("pg0-f")
        candidate = cluster.begin_segment_replacement(0, "pg0-f")
        db.write("mid-transition", 1)
        hydration = cluster.hydrate_segment(0, candidate)
        db.drive(hydration)
        # Crash the writer with the PG still in its dual-quorum state.
        assert not cluster.metadata.membership(0).is_stable
        db = crash_and_recover(cluster)
        # Data intact under the transition quorum config.
        for i in range(12):
            assert db.get(f"k{i}") == i
        assert db.get("mid-transition") == 1
        # The change completes normally after recovery.
        cluster.finalize_segment_replacement(0, "pg0-f")
        final = cluster.metadata.membership(0)
        assert final.is_stable
        assert candidate in final.members
        db.write("post-everything", 2)
        assert db.get("post-everything") == 2

    def test_recovery_under_dual_membership_then_rollback(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=516))
        db = cluster.session()
        db.write("seed", 0)
        candidate = cluster.begin_segment_replacement(0, "pg0-e")
        db.write("mid", 1)
        db = crash_and_recover(cluster)
        assert db.get("mid") == 1
        # The suspect was healthy all along: reverse.
        cluster.rollback_segment_replacement(0, "pg0-e")
        final = cluster.metadata.membership(0)
        assert "pg0-e" in final.members
        assert candidate not in final.members
        db.write("post-rollback", 2)
        assert db.get("post-rollback") == 2

    def test_durability_property_holds_mid_transition(self):
        """Acknowledged commits issued DURING the dual-quorum phase (which
        must meet BOTH groups' 4/6) survive a crash mid-transition."""
        cluster = AuroraCluster.build(ClusterConfig(seed=517))
        db = cluster.session()
        db.write("pre", 0)
        cluster.failures.crash_node("pg0-f")
        cluster.begin_segment_replacement(0, "pg0-f")
        acknowledged = {}
        for i in range(15):
            txn = db.begin()
            db.put(txn, f"dual{i:02d}", i)
            db.commit_async(txn).add_done_callback(
                lambda f, k=f"dual{i:02d}", v=i: acknowledged.__setitem__(
                    k, v
                )
            )
        cluster.run_for(6.0)
        assert acknowledged
        db = crash_and_recover(cluster)
        for key, value in acknowledged.items():
            assert db.get(key) == value

    def test_epoch_ordering_across_crash_and_transition(self):
        """Volume and membership epochs advance independently and
        monotonically through the interleaving."""
        cluster = AuroraCluster.build(ClusterConfig(seed=518))
        db = cluster.session()
        db.write("a", 1)
        epochs_0 = cluster.writer.driver.epochs
        cluster.failures.crash_node("pg0-f")
        cluster.begin_segment_replacement(0, "pg0-f")
        epochs_1 = cluster.writer.driver.epochs
        assert epochs_1.membership == epochs_0.membership + 1
        db = crash_and_recover(cluster)
        epochs_2 = cluster.writer.driver.epochs
        assert epochs_2.volume == epochs_1.volume + 1
        assert epochs_2.membership == epochs_1.membership
        # Storage nodes agree once traffic flows.
        db.write("b", 2)
        cluster.run_for(20)
        node = cluster.nodes["pg0-a"]
        assert node.epochs.current.volume == epochs_2.volume
        assert node.epochs.current.membership == epochs_2.membership
