"""Crash recovery while a membership change is in flight.

The hardest interaction in the paper's design space: the writer dies with a
protection group in its dual-quorum state (epoch 2 of Figure 5).  The
recovering instance loads the transition membership from the metadata
service, must reach the transition's read quorum (OR of the groups' 3/6),
truncate on the transition's write quorum (AND of the groups' 4/6), and the
change itself must remain completable or reversible afterwards.
"""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session


def crash_and_recover(cluster):
    cluster.crash_writer()
    process = cluster.recover_writer()
    session = Session(cluster.writer)
    session.drive(process)
    return session


class TestRecoveryDuringTransition:
    def test_recovery_under_dual_membership_then_finalize(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=515))
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(12)})
        cluster.failures.crash_node("pg0-f")
        candidate = cluster.begin_segment_replacement(0, "pg0-f")
        db.write("mid-transition", 1)
        hydration = cluster.hydrate_segment(0, candidate)
        db.drive(hydration)
        # Crash the writer with the PG still in its dual-quorum state.
        assert not cluster.metadata.membership(0).is_stable
        db = crash_and_recover(cluster)
        # Data intact under the transition quorum config.
        for i in range(12):
            assert db.get(f"k{i}") == i
        assert db.get("mid-transition") == 1
        # The change completes normally after recovery.
        cluster.finalize_segment_replacement(0, "pg0-f")
        final = cluster.metadata.membership(0)
        assert final.is_stable
        assert candidate in final.members
        db.write("post-everything", 2)
        assert db.get("post-everything") == 2

    def test_recovery_under_dual_membership_then_rollback(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=516))
        db = cluster.session()
        db.write("seed", 0)
        candidate = cluster.begin_segment_replacement(0, "pg0-e")
        db.write("mid", 1)
        db = crash_and_recover(cluster)
        assert db.get("mid") == 1
        # The suspect was healthy all along: reverse.
        cluster.rollback_segment_replacement(0, "pg0-e")
        final = cluster.metadata.membership(0)
        assert "pg0-e" in final.members
        assert candidate not in final.members
        db.write("post-rollback", 2)
        assert db.get("post-rollback") == 2

    def test_durability_property_holds_mid_transition(self):
        """Acknowledged commits issued DURING the dual-quorum phase (which
        must meet BOTH groups' 4/6) survive a crash mid-transition."""
        cluster = AuroraCluster.build(ClusterConfig(seed=517))
        db = cluster.session()
        db.write("pre", 0)
        cluster.failures.crash_node("pg0-f")
        cluster.begin_segment_replacement(0, "pg0-f")
        acknowledged = {}
        for i in range(15):
            txn = db.begin()
            db.put(txn, f"dual{i:02d}", i)
            db.commit_async(txn).add_done_callback(
                lambda f, k=f"dual{i:02d}", v=i: acknowledged.__setitem__(
                    k, v
                )
            )
        cluster.run_for(6.0)
        assert acknowledged
        db = crash_and_recover(cluster)
        for key, value in acknowledged.items():
            assert db.get(key) == value

    def test_epoch_ordering_across_crash_and_transition(self):
        """Volume and membership epochs advance independently and
        monotonically through the interleaving."""
        cluster = AuroraCluster.build(ClusterConfig(seed=518))
        db = cluster.session()
        db.write("a", 1)
        epochs_0 = cluster.writer.driver.epochs
        cluster.failures.crash_node("pg0-f")
        cluster.begin_segment_replacement(0, "pg0-f")
        epochs_1 = cluster.writer.driver.epochs
        assert epochs_1.membership == epochs_0.membership + 1
        db = crash_and_recover(cluster)
        epochs_2 = cluster.writer.driver.epochs
        assert epochs_2.volume == epochs_1.volume + 1
        assert epochs_2.membership == epochs_1.membership
        # Storage nodes agree once traffic flows.
        db.write("b", 2)
        cluster.run_for(20)
        node = cluster.nodes["pg0-a"]
        assert node.epochs.current.volume == epochs_2.volume
        assert node.epochs.current.membership == epochs_2.membership


class TestHealerAcrossWriterCrash:
    """The autonomous repair pipeline interleaved with writer recovery."""

    def _pump(self, cluster, db, predicate, max_steps=800):
        for step in range(max_steps):
            if predicate():
                return True
            if step % 10 == 0:
                db.write(f"hpump{step:04d}", step)
            cluster.run_for(10.0)
        return predicate()

    def test_repair_survives_writer_crash_mid_hydration(self):
        """The planner's watermark floor is monotonic: a writer crash
        resets the live PGCL trackers, but the repair must still finalize
        against the highest durable point ever observed."""
        from repro.audit import Auditor
        from repro.repair.metrics import REPLACED

        cluster = AuroraCluster.build(ClusterConfig(seed=519))
        auditor = Auditor()
        cluster.arm_auditor(auditor)
        monitor, planner = cluster.arm_healer()
        db = cluster.session()
        acked = {f"k{i:02d}": i for i in range(12)}
        for key, value in acked.items():
            db.write(key, value)

        cluster.failures.crash_node("pg0-f")
        assert self._pump(
            cluster, db, lambda: planner.active_repair(0) is not None
        ), "repair never started"

        # Writer dies with the repair somewhere in flight (dual quorum or
        # hydration); recovery must not break the transition.
        db = crash_and_recover(cluster)

        assert self._pump(
            cluster,
            db,
            lambda: any(r.outcome == REPLACED for r in planner.records),
        ), f"repair never finalized after recovery: {planner.records}"
        final = cluster.metadata.membership(0)
        assert final.is_stable
        assert "pg0-f" not in final.members
        for key, value in acked.items():
            assert db.get(key) == value
        auditor.assert_clean()

    def test_rollback_state_survives_writer_crash(self):
        """False-positive rollback, then a writer crash: the restored
        membership and every acked commit persist through recovery."""
        from repro.audit import Auditor
        from repro.repair.metrics import ACTIVE, ROLLED_BACK

        cluster = AuroraCluster.build(ClusterConfig(seed=520))
        auditor = Auditor()
        cluster.arm_auditor(auditor)
        monitor, planner = cluster.arm_healer()
        db = cluster.session()
        acked = {f"k{i:02d}": i for i in range(10)}
        for key, value in acked.items():
            db.write(key, value)

        target = "pg0-d"
        members_before = cluster.metadata.membership(0).members
        others = (set(cluster.nodes) | {cluster.writer.name}) - {target}
        predicted = cluster.segment_name(
            0,
            cluster.metadata.membership(0).slot_of(target),
            generation=cluster._candidate_counter + 1,
        )
        cluster.failures.partition_node(predicted, others)
        cluster.failures.partition_node(target, others - {predicted})
        assert self._pump(
            cluster,
            db,
            lambda: planner.active_repair(0) is not None
            and planner.active_repair(0).candidate_id is not None,
        )
        record = planner.active_repair(0)
        cluster.failures.heal_node_partition(target, others - {predicted})
        assert self._pump(cluster, db, lambda: record.outcome != ACTIVE)
        assert record.outcome == ROLLED_BACK
        cluster.failures.heal_node_partition(predicted, others)

        db = crash_and_recover(cluster)
        final = cluster.metadata.membership(0)
        assert final.is_stable
        assert final.members == members_before
        for key, value in acked.items():
            assert db.get(key) == value
        auditor.assert_clean()
