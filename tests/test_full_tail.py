"""Integration tests for the full/tail segment mix (section 4.2)."""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session
from repro.storage.segment import SegmentKind


class TestFullTailCluster:
    def test_layout_is_three_full_three_tail_one_full_per_az(
        self, full_tail_cluster
    ):
        cluster = full_tail_cluster
        placements = cluster.metadata.segments_of_pg(0)
        fulls = [p for p in placements if p.kind is SegmentKind.FULL]
        tails = [p for p in placements if p.kind is SegmentKind.TAIL]
        assert len(fulls) == 3 and len(tails) == 3
        assert {p.az for p in fulls} == {"az1", "az2", "az3"}

    def test_basic_traffic_works(self, full_tail_cluster):
        db = full_tail_cluster.session()
        db.write_many({f"k{i}": i for i in range(20)})
        for i in range(20):
            assert db.get(f"k{i}") == i

    def test_tail_segments_store_log_but_no_blocks(self, full_tail_cluster):
        cluster = full_tail_cluster
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(10)})
        cluster.run_for(100)
        for node in cluster.nodes.values():
            segment = node.segment
            assert segment.hot_log_size > 0 or segment.gc_horizon > 0
            if segment.kind is SegmentKind.TAIL:
                assert segment.blocks == {}

    def test_reads_only_route_to_full_segments(self, full_tail_cluster):
        cluster = full_tail_cluster
        config = ClusterConfig(seed=56, full_tail=True)
        config.instance.cache_capacity = 8
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        for i in range(120):
            db.write(f"key{i:03d}", i)
        cluster.run_for(50)
        for i in range(0, 120, 6):
            assert db.get(f"key{i:03d}") == i
        full_ids = {
            p.segment_id for p in cluster.metadata.full_segments_of_pg(0)
        }
        for node in cluster.nodes.values():
            if node.name not in full_ids:
                assert node.counters["reads_answered"] == 0

    def test_crash_recovery_on_full_tail(self, full_tail_cluster):
        cluster = full_tail_cluster
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(15)})
        cluster.crash_writer()
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)
        for i in range(15):
            assert db.get(f"k{i}") == i

    def test_commit_via_three_full_segments_alone(self):
        """Write quorum '4/6 OR 3/3 full': with all three tails dead,
        commits still complete through the full segments."""
        cluster = AuroraCluster.build(ClusterConfig(seed=57, full_tail=True))
        # Tails are slots 1, 3, 5 -> pg0-b, pg0-d, pg0-f.
        for name in ("pg0-b", "pg0-d", "pg0-f"):
            assert cluster.metadata.placement(name).kind is SegmentKind.TAIL
            cluster.failures.crash_node(name)
        db = cluster.session()
        db.write("survives", 1)
        assert db.get("survives") == 1

    def test_four_any_segments_also_commit(self):
        """The '4/6 of any segment' arm: one full + three tails + ...
        kill two fulls, four survivors include only one full."""
        cluster = AuroraCluster.build(ClusterConfig(seed=58, full_tail=True))
        for name in ("pg0-c", "pg0-e"):  # two fulls (slots 2, 4)
            assert cluster.metadata.placement(name).kind is SegmentKind.FULL
            cluster.failures.crash_node(name)
        db = cluster.session()
        db.write("still-writable", 1)
        assert db.get("still-writable") == 1

    def test_az_failure_tolerated(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=59, full_tail=True))
        db = cluster.session()
        db.write("pre", 0)
        cluster.failures.crash_az("az2")
        db.write("during", 1)
        assert db.get("during") == 1
        assert db.get("pre") == 0
