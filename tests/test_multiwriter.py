"""Tests for the multi-writer extension (journal-ordered cross-partition
transactions, section 1's stated extension)."""

import pytest

from repro.db.session import Session
from repro.errors import TransactionError
from repro.multiwriter import MultiWriterCluster
from repro.multiwriter.cluster import APPLIED_GSN_KEY, partition_of
from repro.multiwriter.journal import (
    JOURNAL_WRITE_QUORUM,
    Journal,
    JournalEntry,
)


@pytest.fixture
def mw():
    return MultiWriterCluster(partition_count=3, seed=61)


def keys_on_distinct_partitions(mw, count):
    """Find keys guaranteed to land on `count` different partitions."""
    found = {}
    i = 0
    while len(found) < count:
        key = f"key-{i}"
        index = mw.partition_of(key)
        found.setdefault(index, key)
        i += 1
    return [found[index] for index in sorted(found)]


class TestRouting:
    def test_partition_of_is_stable_and_total(self):
        for key in ("a", 17, ("tuple", 2), "key-123"):
            first = partition_of(key, 3)
            assert partition_of(key, 3) == first
            assert 0 <= first < 3

    def test_partitions_are_isolated_volumes(self, mw):
        s = mw.session()
        k0, k1, _k2 = keys_on_distinct_partitions(mw, 3)
        s.write(k0, "p0")
        s.write(k1, "p1")
        # Each partition's writer sees only its own rows.
        p0 = mw.partition_session(mw.partition_of(k0))
        assert p0.get(k0) == "p0"
        assert p0.get(k1) is None


class TestSinglePartitionPath:
    def test_single_partition_commit_uses_local_protocol(self, mw):
        s = mw.session()
        result = s.write("solo", 42)
        assert result["path"] == "single"
        assert s.get("solo") == 42
        assert mw.journal.appends == 0  # journal untouched

    def test_multi_key_same_partition_stays_local(self, mw):
        s = mw.session()
        index = mw.partition_of("a0")
        same = [
            f"a{i}" for i in range(50) if mw.partition_of(f"a{i}") == index
        ][:3]
        txn = s.begin()
        for key in same:
            s.put(txn, key, key.upper())
        result = s.commit(txn)
        assert result["path"] == "single"
        assert result["partition"] == index


class TestCrossPartitionPath:
    def test_cross_commit_routes_through_journal(self, mw):
        s = mw.session()
        k0, k1, k2 = keys_on_distinct_partitions(mw, 3)
        txn = s.begin()
        for key in (k0, k1, k2):
            s.put(txn, key, f"x-{key}")
        result = s.commit(txn)
        assert result["path"] == "journal"
        assert result["gsn"] == 1
        assert len(result["partitions"]) == 3
        for key in (k0, k1, k2):
            assert s.get(key) == f"x-{key}"

    def test_gsns_are_sequential(self, mw):
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        gsns = []
        for round_number in range(3):
            txn = s.begin()
            s.put(txn, k0, round_number)
            s.put(txn, k1, round_number)
            gsns.append(s.commit(txn)["gsn"])
        assert gsns == [1, 2, 3]

    def test_read_your_writes_after_cross_commit(self, mw):
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        txn = s.begin()
        s.put(txn, k0, "ryw-0")
        s.put(txn, k1, "ryw-1")
        assert s.get(k0, txn=txn) == "ryw-0"  # staged read
        s.commit(txn)
        assert s.get(k0) == "ryw-0"  # applied read
        assert s.get(k1) == "ryw-1"

    def test_cross_partition_delete(self, mw):
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        s.write(k0, 1)
        s.write(k1, 2)
        txn = s.begin()
        s.delete(txn, k0)
        s.delete(txn, k1)
        assert s.commit(txn)["path"] == "journal"
        assert s.get(k0) is None
        assert s.get(k1) is None

    def test_rollback_discards_staged_writes(self, mw):
        s = mw.session()
        txn = s.begin()
        s.put(txn, "never", 1)
        s.rollback(txn)
        with pytest.raises(TransactionError):
            s.put(txn, "never", 2)
        assert s.get("never") is None
        assert mw.journal.appends == 0

    def test_later_writes_supersede_within_txn(self, mw):
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        txn = s.begin()
        s.put(txn, k0, "first")
        s.put(txn, k1, "other")
        s.put(txn, k0, "last")
        s.commit(txn)
        assert s.get(k0) == "last"


class TestCrashAtomicity:
    def test_participant_crash_after_journal_replays_on_recovery(self, mw):
        """The decisive case: the journal entry is durable but a
        participant dies BEFORE applying it locally.  Recovery must
        replay the entry (cross-partition atomicity without 2PC)."""
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        victim = mw.partition_of(k0)
        # Sequence the entry at the journal directly, without applying.
        entry = s.drive(
            mw.journal.append(
                "orphaned-txn", {
                    mw.partition_of(k0): [(k0, "from-journal")],
                    mw.partition_of(k1): [(k1, "from-journal")],
                }
            )
        )
        assert entry.gsn >= 1
        # Partition `victim` crashes before anyone applies the entry.
        mw.crash_partition(victim)
        applied = s.drive(mw.recover_partition(victim))
        assert applied >= entry.gsn
        assert s.get(k0) == "from-journal"
        # The other participant catches up when asked (e.g. next commit
        # or explicit catch-up).
        other = mw.partition_of(k1)
        s.drive(mw.appliers[other].ensure_applied(entry.gsn))
        assert s.get(k1) == "from-journal"

    def test_apply_is_idempotent_across_replays(self, mw):
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        txn = s.begin()
        s.put(txn, k0, "once")
        s.put(txn, k1, "once")
        result = s.commit(txn)
        index = mw.partition_of(k0)
        before = mw.appliers[index].applied_entries
        s.drive(mw.appliers[index].ensure_applied(result["gsn"]))
        assert mw.appliers[index].applied_entries == before  # no re-apply
        assert s.get(k0) == "once"

    def test_applied_gsn_watermark_is_durable(self, mw):
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        txn = s.begin()
        s.put(txn, k0, 1)
        s.put(txn, k1, 1)
        gsn = s.commit(txn)["gsn"]
        index = mw.partition_of(k0)
        mw.crash_partition(index)
        s.drive(mw.recover_partition(index))
        watermark = mw.partition_session(index).get(APPLIED_GSN_KEY)
        assert watermark == gsn

    def test_entries_apply_in_gsn_order_even_out_of_band(self, mw):
        """If T2's session applies before T1's ever did, the applier must
        still apply T1 first (gap-free GSN order)."""
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        index = mw.partition_of(k0)
        e1 = s.drive(
            mw.journal.append("t1", {index: [(k0, "t1")],
                                     mw.partition_of(k1): [(k1, "t1")]})
        )
        e2 = s.drive(
            mw.journal.append("t2", {index: [(k0, "t2")],
                                     mw.partition_of(k1): [(k1, "t2")]})
        )
        # Ask for e2 only; e1 must be applied on the way.
        s.drive(mw.appliers[index].ensure_applied(e2.gsn))
        assert s.get(k0) == "t2"  # GSN order: t1 then t2
        watermark = mw.partition_session(index).get(APPLIED_GSN_KEY)
        assert watermark == e2.gsn


class TestJournalRecovery:
    def test_sequencer_recovers_durable_gsn_from_quorum(self, mw):
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        for i in range(3):
            txn = s.begin()
            s.put(txn, k0, i)
            s.put(txn, k1, i)
            s.commit(txn)
        assert mw.journal.durable_gsn == 3
        mw.journal.crash()
        mw.journal.durable_gsn = 0  # simulate total state loss
        mw.journal._next_gsn = 1
        recovered = s.drive(mw.journal.recover())
        assert recovered == 3
        assert mw.journal._next_gsn == 4
        # And sequencing continues above the recovered point.
        txn = s.begin()
        s.put(txn, k0, "post")
        s.put(txn, k1, "post")
        assert s.commit(txn)["gsn"] == 4

    def test_journal_tolerates_two_segment_failures(self, mw):
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        mw.failures.crash_node("journal-seg0")
        mw.failures.crash_node("journal-seg1")
        txn = s.begin()
        s.put(txn, k0, 1)
        s.put(txn, k1, 1)
        assert s.commit(txn)["path"] == "journal"

    def test_journal_blocks_below_write_quorum(self, mw):
        from repro.errors import SimulationError

        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        for i in range(3):
            mw.failures.crash_node(f"journal-seg{i}")
        txn = s.begin()
        s.put(txn, k0, 1)
        s.put(txn, k1, 1)
        with pytest.raises(SimulationError):
            s.commit(txn)


class TestInterplayWithLocalTraffic:
    def test_journal_apply_retries_past_local_lock_holders(self, mw):
        s = mw.session()
        k0, k1, _ = keys_on_distinct_partitions(mw, 3)
        index = mw.partition_of(k0)
        local = mw.partition_session(index)
        blocker = local.begin()
        local.put(blocker, k0, "locked")
        # Sequence a cross txn touching the locked key; the applier must
        # back off until the local txn commits.
        entry = s.drive(
            mw.journal.append(
                "contended",
                {index: [(k0, "journal-wins")],
                 mw.partition_of(k1): [(k1, "x")]},
            )
        )
        apply_process = mw.appliers[index].ensure_applied(entry.gsn)
        mw.run_for(5.0)
        assert not apply_process.finished  # blocked behind the lock
        local.commit(blocker)
        s.drive(apply_process)
        assert s.get(k0) == "journal-wins"
