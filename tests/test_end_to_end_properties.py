"""End-to-end property tests: random workloads, random faults, one oracle.

Each hypothesis example generates a script of client operations and fault
injections, runs it against a fresh deterministic cluster, and checks the
library against a plain-dict oracle updated only on *acknowledged* commits:

- every acknowledged transaction's effects are visible afterwards,
- after a crash + recovery, the database equals the oracle exactly on all
  acknowledged state (unacknowledged transactions may appear only if they
  are complete),
- the B-tree structure check passes whenever we look.

These are the paper's guarantees, stated once and hammered with random
schedules.  The whole module is parametrized over the storage backend (the
shared ``backend`` fixture), so it doubles as a conformance check: the
guarantees must hold for the Aurora 4/6 quorum and the Taurus log/page
split alike.  Fault amplitudes (how many segments a script may kill, when
a transaction is refused as hopeless) come from the backend's replication
config rather than hard-coded 6-way constants.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session

KEYS = [f"key{i:02d}" for i in range(12)]


@st.composite
def scripts(draw):
    """A random interleaving of transactions and fault events."""
    steps = []
    step_count = draw(st.integers(min_value=3, max_value=14))
    for _ in range(step_count):
        kind = draw(
            st.sampled_from(
                ["txn", "txn", "txn", "run", "kill_segment",
                 "restore_segment", "crash_recover"]
            )
        )
        if kind == "txn":
            ops = draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(["put", "delete"]),
                        st.sampled_from(KEYS),
                        st.integers(0, 999),
                    ),
                    min_size=1,
                    max_size=4,
                )
            )
            wait = draw(st.booleans())
            steps.append(("txn", ops, wait))
        elif kind == "run":
            steps.append(("run", draw(st.integers(1, 30))))
        elif kind == "kill_segment":
            steps.append(("kill", draw(st.integers(0, 5))))
        elif kind == "restore_segment":
            steps.append(("restore", draw(st.integers(0, 5))))
        else:
            steps.append(("crash_recover",))
    seed = draw(st.integers(0, 2**20))
    return seed, steps


def run_script(seed, steps, backend="aurora"):
    cluster = AuroraCluster.build(ClusterConfig(seed=seed, backend=backend))
    db = Session(cluster.writer)
    oracle: dict = {}
    #: key -> values an *unacknowledged but possibly complete* transaction
    #: wrote; keys such a transaction may have deleted.  Recovery rolls a
    #: complete transaction forward whether or not its commit future ever
    #: resolved ("unacknowledged transactions may appear only if they are
    #: complete"), so these are legitimate read results, not lost acks.
    uncertain: dict = {}
    uncertain_deleted: set = set()
    pending: list = []
    down: set[str] = set()
    segment_names = [
        p.segment_id for p in cluster.metadata.segments_of_pg(0)
    ]
    max_kills = cluster.backend.max_tolerated_kills()

    def apply_to_oracle(ops):
        for op, key, value in ops:
            if op == "put":
                oracle[key] = value
            else:
                oracle.pop(key, None)

    def note_uncertain(ops):
        for op, key, value in ops:
            if op == "put":
                uncertain.setdefault(key, set()).add(value)
            else:
                uncertain_deleted.add(key)

    def on_commit_done(future, ops):
        if future.exception() is None:
            apply_to_oracle(ops)
        else:
            # Rejected -- but possibly after the redo reached a quorum.
            note_uncertain(ops)

    def sweep_unresolved():
        """A writer crash kills in-flight commit futures; their effects
        are uncertain from here on."""
        for future, ops in pending:
            if not future.done:
                note_uncertain(ops)
        pending.clear()

    for step in steps:
        if step[0] == "txn":
            _tag, ops, wait = step
            # Refuse to start a txn that cannot commit (quorum down).
            if len(down) > max_kills:
                continue
            txn = db.begin()
            try:
                for op, key, value in ops:
                    if op == "put":
                        db.put(txn, key, value)
                    else:
                        db.delete(txn, key)
            except Exception:
                db.rollback(txn)
                continue
            if wait:
                db.commit(txn)
                apply_to_oracle(ops)
            else:
                future = db.commit_async(txn)
                future.add_done_callback(
                    lambda f, ops=ops: on_commit_done(f, ops)
                )
                pending.append((future, ops))
        elif step[0] == "run":
            cluster.run_for(float(step[1]))
        elif step[0] == "kill":
            name = segment_names[step[1] % len(segment_names)]
            if len(down) < max_kills and name not in down:
                cluster.failures.crash_node(name)
                down.add(name)
        elif step[0] == "restore":
            name = segment_names[step[1] % len(segment_names)]
            if name in down:
                cluster.failures.restore_node(name)
                down.remove(name)
        elif step[0] == "crash_recover":
            sweep_unresolved()
            cluster.crash_writer()
            process = cluster.recover_writer()
            db = Session(cluster.writer)
            db.drive(process)
    # Final recovery pass: everything acknowledged must be intact.
    sweep_unresolved()
    cluster.crash_writer()
    process = cluster.recover_writer()
    db = Session(cluster.writer)
    db.drive(process)
    return cluster, db, oracle, uncertain, uncertain_deleted


class TestEndToEndProperties:
    @given(script=scripts())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    def test_acknowledged_state_always_survives(self, backend, script):
        seed, steps = script
        cluster, db, oracle, uncertain, uncertain_deleted = run_script(
            seed, steps, backend=backend
        )
        for key, value in oracle.items():
            got = db.get(key)
            legitimate = (
                got == value
                or got in uncertain.get(key, ())
                or (got is None and key in uncertain_deleted)
            )
            assert legitimate, (
                f"acknowledged {key}={value} lost, read {got!r} "
                f"(seed={seed}, steps={steps})"
            )

    @given(script=scripts())
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    def test_btree_structure_survives_everything(self, backend, script):
        seed, steps = script
        cluster, db, _oracle, _unc, _del = run_script(
            seed, steps, backend=backend
        )
        leaves = db.drive(cluster.writer.btree.check_structure())
        assert leaves >= 1

    @given(
        seed=st.integers(0, 2**20),
        grace_ms=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    def test_uncertain_commits_are_all_or_nothing_across_failover(
        self, backend, seed, grace_ms
    ):
        """A multi-key transaction whose commit future resolved as
        *uncertain* (the writer died before acknowledging) must be either
        entirely visible or entirely absent after an autonomous failover
        -- never half-applied.  ``grace_ms`` varies how far the redo
        batches get before the kill, sweeping the interesting window from
        nothing-sent to everything-durable-but-unacked."""
        from repro.db.instance import InstanceState
        from repro.errors import CommitUncertainError
        from repro.repair import PROMOTED

        cluster = AuroraCluster.build(
            ClusterConfig(seed=seed, backend=backend)
        )
        for _ in range(2):
            cluster.add_replica()
        cluster.arm_failover()
        cluster.run_for(100.0)
        db = Session(cluster.writer)
        baseline = {f"base{i}": f"b{i}" for i in range(3)}
        for key, value in baseline.items():
            db.write(key, value)
        cluster.run_for(50.0)

        writer = cluster.writer
        txn_writes = {f"atomic{i}": f"a{i}.{seed}" for i in range(3)}
        txn = writer.begin()
        for key in sorted(txn_writes):
            db.drive(writer.put(txn, key, txn_writes[key]))
        future = writer.commit(txn)
        # Let the batches travel for a seed-dependent sliver, then kill
        # the writer before (or exactly as) the quorum ack lands.
        cluster.run_for(grace_ms)
        acked_before_kill = future.done and future.exception() is None
        writer.crash()
        cluster.network.fail_node(writer.name)

        for _ in range(2000):
            if any(
                r.outcome == PROMOTED for r in cluster.failover.records
            ) and cluster.writer.state is InstanceState.OPEN:
                break
            cluster.run_for(5.0)
        assert cluster.writer.state is InstanceState.OPEN

        if not acked_before_kill:
            # Never a false acknowledgement: the future resolved with the
            # typed uncertain-outcome error.
            assert future.done
            assert isinstance(future.exception(), CommitUncertainError)

        db = Session(cluster.writer)
        got = {key: db.get(key) for key in sorted(txn_writes)}
        applied = [k for k, v in got.items() if v == txn_writes[k]]
        absent = [k for k, v in got.items() if v is None]
        assert len(applied) + len(absent) == len(txn_writes), (
            f"unexpected values after failover: {got} (seed={seed})"
        )
        assert not (applied and absent), (
            f"half-applied uncertain transaction after failover: "
            f"applied={applied} absent={absent} (seed={seed}, "
            f"grace={grace_ms})"
        )
        if acked_before_kill:
            assert not absent, (
                f"acknowledged transaction lost: {got} (seed={seed})"
            )
        for key, value in baseline.items():
            assert db.get(key) == value

    def test_deterministic_replay(self, backend):
        """The same script yields byte-identical outcomes."""
        script = (
            1234,
            [
                ("txn", [("put", "key01", 7)], True),
                ("kill", 5),
                ("txn", [("put", "key02", 8), ("delete", "key01", 0)],
                 False),
                ("run", 10),
                ("crash_recover",),
                ("txn", [("put", "key03", 9)], True),
            ],
        )
        states = []
        for _ in range(2):
            cluster, db, oracle, _unc, _del = run_script(
                *script, backend=backend
            )
            states.append(
                (
                    sorted(oracle.items()),
                    [(k, db.get(k)) for k in KEYS],
                    cluster.writer.vcl,
                    cluster.loop.now,
                )
            )
        assert states[0] == states[1]
