"""End-to-end property tests: random workloads, random faults, one oracle.

Each hypothesis example generates a script of client operations and fault
injections, runs it against a fresh deterministic cluster, and checks the
library against a plain-dict oracle updated only on *acknowledged* commits:

- every acknowledged transaction's effects are visible afterwards,
- after a crash + recovery, the database equals the oracle exactly on all
  acknowledged state (unacknowledged transactions may appear only if they
  are complete),
- the B-tree structure check passes whenever we look.

These are the paper's guarantees, stated once and hammered with random
schedules.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session

KEYS = [f"key{i:02d}" for i in range(12)]


@st.composite
def scripts(draw):
    """A random interleaving of transactions and fault events."""
    steps = []
    step_count = draw(st.integers(min_value=3, max_value=14))
    for _ in range(step_count):
        kind = draw(
            st.sampled_from(
                ["txn", "txn", "txn", "run", "kill_segment",
                 "restore_segment", "crash_recover"]
            )
        )
        if kind == "txn":
            ops = draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(["put", "delete"]),
                        st.sampled_from(KEYS),
                        st.integers(0, 999),
                    ),
                    min_size=1,
                    max_size=4,
                )
            )
            wait = draw(st.booleans())
            steps.append(("txn", ops, wait))
        elif kind == "run":
            steps.append(("run", draw(st.integers(1, 30))))
        elif kind == "kill_segment":
            steps.append(("kill", draw(st.integers(0, 5))))
        elif kind == "restore_segment":
            steps.append(("restore", draw(st.integers(0, 5))))
        else:
            steps.append(("crash_recover",))
    seed = draw(st.integers(0, 2**20))
    return seed, steps


def run_script(seed, steps):
    cluster = AuroraCluster.build(ClusterConfig(seed=seed))
    db = Session(cluster.writer)
    oracle: dict = {}
    down: set[str] = set()
    segment_names = [f"pg0-{c}" for c in "abcdef"]

    def apply_to_oracle(ops):
        for op, key, value in ops:
            if op == "put":
                oracle[key] = value
            else:
                oracle.pop(key, None)

    for step in steps:
        if step[0] == "txn":
            _tag, ops, wait = step
            # Refuse to start a txn that cannot commit (quorum down).
            if len(down) > 2:
                continue
            txn = db.begin()
            try:
                for op, key, value in ops:
                    if op == "put":
                        db.put(txn, key, value)
                    else:
                        db.delete(txn, key)
            except Exception:
                db.rollback(txn)
                continue
            if wait:
                db.commit(txn)
                apply_to_oracle(ops)
            else:
                future = db.commit_async(txn)
                future.add_done_callback(
                    lambda f, ops=ops: apply_to_oracle(ops)
                )
        elif step[0] == "run":
            cluster.run_for(float(step[1]))
        elif step[0] == "kill":
            name = segment_names[step[1]]
            if len(down) < 2 and name not in down:
                cluster.failures.crash_node(name)
                down.add(name)
        elif step[0] == "restore":
            name = segment_names[step[1]]
            if name in down:
                cluster.failures.restore_node(name)
                down.remove(name)
        elif step[0] == "crash_recover":
            cluster.crash_writer()
            process = cluster.recover_writer()
            db = Session(cluster.writer)
            db.drive(process)
    # Final recovery pass: everything acknowledged must be intact.
    cluster.crash_writer()
    process = cluster.recover_writer()
    db = Session(cluster.writer)
    db.drive(process)
    return cluster, db, oracle


class TestEndToEndProperties:
    @given(scripts())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_acknowledged_state_always_survives(self, script):
        seed, steps = script
        cluster, db, oracle = run_script(seed, steps)
        for key, value in oracle.items():
            assert db.get(key) == value, (
                f"acknowledged {key}={value} lost (seed={seed}, "
                f"steps={steps})"
            )

    @given(scripts())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_btree_structure_survives_everything(self, script):
        seed, steps = script
        cluster, db, _oracle = run_script(seed, steps)
        leaves = db.drive(cluster.writer.btree.check_structure())
        assert leaves >= 1

    def test_deterministic_replay(self):
        """The same script yields byte-identical outcomes."""
        script = (
            1234,
            [
                ("txn", [("put", "key01", 7)], True),
                ("kill", 5),
                ("txn", [("put", "key02", 8), ("delete", "key01", 0)],
                 False),
                ("run", 10),
                ("crash_recover",),
                ("txn", [("put", "key03", 9)], True),
            ],
        )
        states = []
        for _ in range(2):
            cluster, db, oracle = run_script(*script)
            states.append(
                (
                    sorted(oracle.items()),
                    [(k, db.get(k)) for k in KEYS],
                    cluster.writer.vcl,
                    cluster.loop.now,
                )
            )
        assert states[0] == states[1]
