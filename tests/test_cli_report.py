"""Tests for the CLI and the cluster report."""

import pytest

from repro.cli import main
from repro.report import cluster_report, format_report


class TestClusterReport:
    def test_report_structure(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        cluster.add_replica("r1")
        report = cluster_report(cluster)
        assert report["writer"]["vcl"] >= 1
        assert report["writer"]["state"] == "open"
        assert set(report["segments"]) == {
            f"pg0-{c}" for c in "abcdef"
        }
        assert report["protection_groups"][0]["stable"]
        assert "r1" in report["replicas"]
        assert report["network"]["sent"] > 0

    def test_report_reflects_failures(self, cluster):
        cluster.failures.crash_node("pg0-c")
        report = cluster_report(cluster)
        assert report["segments"]["pg0-c"]["up"] is False
        assert report["segments"]["pg0-a"]["up"] is True

    def test_report_reflects_transition(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        cluster.begin_segment_replacement(0, "pg0-f")
        report = cluster_report(cluster)
        assert not report["protection_groups"][0]["stable"]
        assert report["protection_groups"][0]["epoch"] == 2

    def test_format_is_readable(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        text = format_report(cluster_report(cluster))
        assert "VCL=" in text
        assert "pg0-a" in text
        assert "network:" in text

    def test_report_is_json_serializable(self, cluster):
        import json

        db = cluster.session()
        db.write("a", 1)
        json.dumps(cluster_report(cluster))  # must not raise


class TestCLI:
    def test_demo_command(self, capsys):
        assert main(["--seed", "5", "demo"]) == 0
        out = capsys.readouterr().out
        assert "committed 'hello'" in out
        assert "survived: 'aurora'" in out
        assert "VCL=" in out

    def test_workload_command(self, capsys):
        assert main(
            ["--seed", "5", "workload", "--profile", "write_only",
             "--clients", "2", "--txns", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "committed=20" in out
        assert "p99=" in out

    def test_workload_full_tail(self, capsys):
        assert main(
            ["workload", "--profile", "trickle", "--clients", "1",
             "--txns", "5", "--full-tail"]
        ) == 0
        assert "full_tail=True" in capsys.readouterr().out

    def test_faults_command(self, capsys):
        assert main(["--seed", "5", "faults"]) == 0
        out = capsys.readouterr().out
        assert "az3 down" in out
        assert "crashed + recovered" in out
        assert "replaced by" in out
        assert "intact: True" in out

    def test_report_command(self, capsys):
        assert main(
            ["--seed", "5", "report", "--txns", "10", "--replicas", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "replica-1" in out
        assert "segments:" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
