"""Unit + property tests for membership-change state machines (section 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.membership import (
    MembershipState,
    verify_transition_safety,
)
from repro.errors import MembershipError

SIX = ["A", "B", "C", "D", "E", "F"]


class TestMembershipState:
    def test_initial_is_stable(self):
        state = MembershipState.initial(SIX)
        assert state.is_stable
        assert state.epoch == 1
        assert state.members == frozenset(SIX)
        assert state.member_groups() == [frozenset(SIX)]

    def test_initial_requires_six(self):
        with pytest.raises(MembershipError):
            MembershipState.initial(SIX[:5])

    def test_duplicate_members_rejected(self):
        with pytest.raises(MembershipError):
            MembershipState.initial(["A"] * 6)

    def test_figure_5_epoch_2(self):
        """F suspect, G added: both groups active, epoch 2."""
        state = MembershipState.initial(SIX).begin_replacement("F", "G")
        assert state.epoch == 2
        assert not state.is_stable
        groups = state.member_groups()
        assert frozenset(SIX) in groups
        assert frozenset(["A", "B", "C", "D", "E", "G"]) in groups
        assert len(groups) == 2
        plans = state.pending_replacements
        assert len(plans) == 1
        assert (plans[0].incumbent, plans[0].candidate) == ("F", "G")

    def test_figure_5_epoch_3_commit(self):
        """G hydrated, F confirmed dead: collapse to ABCDEG, epoch 3."""
        dual = MembershipState.initial(SIX).begin_replacement("F", "G")
        final = dual.commit_replacement(slot=5)
        assert final.epoch == 3
        assert final.is_stable
        assert final.members == frozenset(["A", "B", "C", "D", "E", "G"])

    def test_rollback_when_f_comes_back(self):
        """'If F comes back, we can make a second membership change back
        to ABCDEF.'"""
        dual = MembershipState.initial(SIX).begin_replacement("F", "G")
        reverted = dual.rollback_replacement(slot=5)
        assert reverted.epoch == 3
        assert reverted.members == frozenset(SIX)

    def test_double_fault_gives_four_groups(self):
        """E fails while F->G is in flight: the paper's quad quorum set."""
        state = (
            MembershipState.initial(SIX)
            .begin_replacement("F", "G")
            .begin_replacement("E", "H")
        )
        groups = {frozenset(g) for g in state.member_groups()}
        assert groups == {
            frozenset("ABCDEF"),
            frozenset("ABCDEG"),
            frozenset("ABCDFH"),
            frozenset("ABCDGH"),
        }
        # "simply writing to the four members ABCD meets quorum"
        config = state.quorum_config()
        assert config.write_satisfied(set("ABCD"))

    def test_triple_concurrent_replacement_rejected(self):
        state = (
            MembershipState.initial(SIX)
            .begin_replacement("F", "G")
            .begin_replacement("E", "H")
        )
        with pytest.raises(MembershipError):
            state.begin_replacement("D", "I")

    def test_replacing_a_pending_slot_rejected(self):
        state = MembershipState.initial(SIX).begin_replacement("F", "G")
        with pytest.raises(MembershipError):
            state.begin_replacement("F", "H")
        with pytest.raises(MembershipError):
            state.begin_replacement("G", "H")

    def test_candidate_must_be_new(self):
        state = MembershipState.initial(SIX)
        with pytest.raises(MembershipError):
            state.begin_replacement("F", "A")

    def test_unknown_incumbent_rejected(self):
        with pytest.raises(MembershipError):
            MembershipState.initial(SIX).begin_replacement("Z", "G")

    def test_collapse_without_pending_rejected(self):
        state = MembershipState.initial(SIX)
        with pytest.raises(MembershipError):
            state.commit_replacement(0)
        with pytest.raises(MembershipError):
            state.rollback_replacement(3)

    def test_every_state_quorum_config_proves(self):
        state = MembershipState.initial(SIX)
        state.quorum_config().prove()
        dual = state.begin_replacement("F", "G")
        dual.quorum_config().prove()
        quad = dual.begin_replacement("E", "H")
        quad.quorum_config().prove()


class TestTransitionSafety:
    def test_figure_5_sequence_is_safe(self):
        s1 = MembershipState.initial(SIX)
        s2 = s1.begin_replacement("F", "G")
        verify_transition_safety(s1, s2)
        s3 = s2.commit_replacement(5)
        verify_transition_safety(s2, s3)

    def test_rollback_is_safe(self):
        s1 = MembershipState.initial(SIX)
        s2 = s1.begin_replacement("F", "G")
        verify_transition_safety(s2, s2.rollback_replacement(5))

    def test_double_fault_sequence_is_safe(self):
        s1 = MembershipState.initial(SIX)
        s2 = s1.begin_replacement("F", "G")
        s3 = s2.begin_replacement("E", "H")
        verify_transition_safety(s2, s3)
        s4 = s3.commit_replacement(5)
        verify_transition_safety(s3, s4)
        s5 = s4.commit_replacement(4)
        verify_transition_safety(s4, s5)

    def test_epoch_must_increase(self):
        s1 = MembershipState.initial(SIX)
        with pytest.raises(MembershipError, match="epoch"):
            verify_transition_safety(s1, s1)

    def test_disjoint_jump_rejected(self):
        """Swapping the whole membership at once has no write overlap."""
        s1 = MembershipState.initial(SIX)
        s2 = MembershipState.initial(
            ["U", "V", "W", "X", "Y", "Z"], epoch=2
        )
        with pytest.raises(MembershipError, match="disjoint"):
            verify_transition_safety(s1, s2)


@st.composite
def replacement_walks(draw):
    """Random sequences of legal membership operations."""
    ops = draw(
        st.lists(
            st.sampled_from(["begin", "commit", "rollback"]),
            min_size=1,
            max_size=8,
        )
    )
    return ops


class TestMembershipProperties:
    @given(replacement_walks())
    @settings(max_examples=60, deadline=None)
    def test_random_walks_stay_safe(self, ops):
        """Property: every legal transition in a random op walk passes the
        safety proof and strictly bumps the epoch."""
        state = MembershipState.initial(SIX)
        candidate_counter = 0
        for op in ops:
            pending = state.pending_replacements
            try:
                if op == "begin":
                    incumbents = [
                        alts[0]
                        for alts in state.slots
                        if len(alts) == 1
                    ]
                    candidate_counter += 1
                    new_state = state.begin_replacement(
                        incumbents[0], f"N{candidate_counter}"
                    )
                elif op == "commit" and pending:
                    new_state = state.commit_replacement(pending[0].slot)
                elif op == "rollback" and pending:
                    new_state = state.rollback_replacement(pending[0].slot)
                else:
                    continue
            except MembershipError:
                continue  # illegal in this state (e.g. 3rd concurrent)
            verify_transition_safety(state, new_state)
            assert new_state.epoch == state.epoch + 1
            new_state.quorum_config().prove()
            state = new_state

    @given(st.integers(0, 5))
    @settings(max_examples=6, deadline=None)
    def test_replacement_is_reversible_from_any_slot(self, slot):
        state = MembershipState.initial(SIX)
        incumbent = state.slots[slot][0]
        dual = state.begin_replacement(incumbent, "G")
        reverted = dual.rollback_replacement(slot)
        assert reverted.members == state.members
