"""Unit + property tests for the MTR-atomic B-tree.

Runs against an in-memory BlockIO fake, with every generator driven to
completion synchronously (no storage round trips needed at this layer).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lsn import LSNAllocator
from repro.db.btree import BlockIO, BTree, leaf_rows, row_key
from repro.db.mtr import ChainState, MTRBuilder
from repro.db.mvcc import ReadView, TransactionStatusRegistry


class MemoryIO(BlockIO):
    """Block store over a plain dict; applies MTRs synchronously."""

    def __init__(self):
        self.blocks: dict[int, dict] = {}
        self.allocator = LSNAllocator()
        self.chains = ChainState()

    def read_image(self, block, mtr=None):
        if mtr is not None and block in mtr.staged_images:
            return dict(mtr.staged_images[block])
        return dict(self.blocks.get(block, {}))
        yield  # pragma: no cover - makes this a generator

    def stage_change(self, mtr, block, payload):
        base = mtr.staged_images.get(block)
        if base is None:
            base = dict(self.blocks.get(block, {}))
        new_image = payload.apply(base)
        mtr.staged_images[block] = new_image
        mtr.change(block, 0, payload)
        return dict(new_image)

    def allocate_block(self, mtr):
        meta = yield from self.read_image(0, mtr)
        from repro.core.records import BlockPut

        new_block = meta["next_block"]
        self.stage_change(
            mtr, 0, BlockPut(entries=(("next_block", new_block + 1),))
        )
        mtr.staged_images.setdefault(new_block, {})
        return new_block

    def apply(self, mtr):
        """Seal and absorb an MTR (the instance's _apply_mtr analogue)."""
        records = mtr.seal(self.allocator, self.chains)
        for record in records:
            image = record.payload.apply(self.blocks.get(record.block, {}))
            self.blocks[record.block] = image
        return records


def run(gen):
    """Drive a generator that never actually yields externally."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("B-tree traversal yielded unexpectedly")


@pytest.fixture
def tree():
    io = MemoryIO()
    registry = TransactionStatusRegistry()
    registry.record_commit(1, 1)  # txn 1 committed at SCN 1
    btree = BTree(io, registry, meta_block=0, max_leaf_rows=4,
                  max_internal_keys=4)
    mtr = MTRBuilder()
    btree.bootstrap(mtr, root_block=1, first_free_block=2)
    io.apply(mtr)
    return io, btree, registry


def put(io, btree, key, value, txn_id=1):
    mtr = MTRBuilder(txn_id=txn_id)
    prior = run(btree.put(mtr, txn_id, key, value))
    io.apply(mtr)
    return prior


def get(btree, key, read_point=10**9, txn_id=0):
    view = ReadView(view_id=1, read_point=read_point, txn_id=txn_id)
    found, value = run(btree.get(view, key))
    return value if found else None


class TestBasicOperations:
    def test_put_then_get(self, tree):
        io, btree, _ = tree
        put(io, btree, 5, "five")
        assert get(btree, 5) == "five"
        assert get(btree, 6) is None

    def test_put_returns_prior_versions(self, tree):
        io, btree, _ = tree
        assert put(io, btree, 5, "a") == ()
        prior = put(io, btree, 5, "b")
        assert prior == ((1, "a"),)

    def test_overwrite_appends_version(self, tree):
        io, btree, registry = tree
        put(io, btree, 5, "a")
        put(io, btree, 5, "b", txn_id=2)
        registry.record_commit(2, 100)
        assert get(btree, 5, read_point=50) == "a"
        assert get(btree, 5, read_point=100) == "b"

    def test_scan_range(self, tree):
        io, btree, _ = tree
        for key in (5, 1, 9, 3, 7):
            put(io, btree, key, key * 10)
        view = ReadView(view_id=1, read_point=10**9)
        results = run(btree.scan(view, 3, 7))
        assert results == [(3, 30), (5, 50), (7, 70)]

    def test_scan_empty_range(self, tree):
        io, btree, _ = tree
        put(io, btree, 1, "x")
        view = ReadView(view_id=1, read_point=10**9)
        assert run(btree.scan(view, 5, 9)) == []

    def test_get_before_bootstrap_fails(self):
        io = MemoryIO()
        btree = BTree(io, TransactionStatusRegistry(), meta_block=0)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            get(btree, 1)


class TestSplits:
    def test_leaf_split_preserves_all_keys(self, tree):
        io, btree, _ = tree
        for key in range(10):
            put(io, btree, key, f"v{key}")
        for key in range(10):
            assert get(btree, key) == f"v{key}"
        assert io.blocks[0]["height"] >= 1  # root grew

    def test_split_is_single_mtr(self, tree):
        """A split's records share one MTR id with one mtr_end at the end."""
        io, btree, _ = tree
        for key in range(4):
            put(io, btree, key, "x")
        mtr = MTRBuilder(txn_id=1)
        run(btree.put(mtr, 1, 4, "x"))  # triggers the split
        records = io.apply(mtr)
        assert len(records) > 2  # leaf + sibling + meta + parent...
        assert [r.mtr_end for r in records].count(True) == 1
        assert records[-1].mtr_end
        assert len({r.mtr_id for r in records}) == 1

    def test_deep_tree_with_internal_splits(self, tree):
        io, btree, _ = tree
        keys = list(range(200))
        random.Random(5).shuffle(keys)
        for key in keys:
            put(io, btree, key, key)
        assert io.blocks[0]["height"] >= 2
        for key in range(200):
            assert get(btree, key) == key
        leaves = run(btree.check_structure())
        assert leaves > 10

    def test_scan_crosses_leaf_boundaries(self, tree):
        io, btree, _ = tree
        for key in range(50):
            put(io, btree, key, key)
        view = ReadView(view_id=1, read_point=10**9)
        results = run(btree.scan(view, 0, 49))
        assert [k for k, _ in results] == list(range(50))


class TestMaintenance:
    def test_iterate_leaves_left_to_right(self, tree):
        io, btree, _ = tree
        for key in range(20):
            put(io, btree, key, key)
        leaves = run(btree.iterate_leaves())
        seen = []
        for _block, image in leaves:
            seen.extend(k for k, _v in leaf_rows(image))
        assert seen == sorted(seen) == list(range(20))

    def test_prune_leaf_removes_doomed_versions(self, tree):
        io, btree, registry = tree
        put(io, btree, 5, "committed")
        put(io, btree, 5, "orphan", txn_id=66)  # never commits
        leaves = run(btree.iterate_leaves())
        mtr = MTRBuilder()
        changed = btree.prune_leaf(
            mtr, leaves[0][0], leaves[0][1], purge_point=0,
            doomed_txns=frozenset({66}),
        )
        io.apply(mtr)
        assert changed == 1
        versions = run(btree.versions_of(5))
        assert versions == ((1, "committed"),)

    def test_replace_versions(self, tree):
        io, btree, _ = tree
        put(io, btree, 5, "a")
        mtr = MTRBuilder()
        run(btree.replace_versions(mtr, 5, ((1, "rewritten"),)))
        io.apply(mtr)
        assert get(btree, 5) == "rewritten"

    def test_check_structure_detects_disorder(self, tree):
        io, btree, _ = tree
        for key in range(10):
            put(io, btree, key, key)
        # Corrupt: swap a key into the wrong leaf.
        leaves = run(btree.iterate_leaves())
        block, image = leaves[0]
        io.blocks[block][row_key(999)] = ((1, "bogus"),)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run(btree.check_structure())


class TestBTreeProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(0, 10**6)),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, operations):
        """Property: a B-tree with committed single-version writes behaves
        exactly like a dict, across any interleaving of puts."""
        io = MemoryIO()
        registry = TransactionStatusRegistry()
        registry.record_commit(1, 1)
        btree = BTree(io, registry, meta_block=0, max_leaf_rows=4,
                      max_internal_keys=4)
        mtr = MTRBuilder()
        btree.bootstrap(mtr, root_block=1, first_free_block=2)
        io.apply(mtr)
        model: dict[int, int] = {}
        for key, value in operations:
            put(io, btree, key, value)
            model[key] = value
        for key, value in model.items():
            view = ReadView(view_id=1, read_point=10**9)
            found, got = run(btree.get(view, key))
            # Several versions may exist; the newest committed wins.
            assert found and got == value
        run(btree.check_structure())
        view = ReadView(view_id=1, read_point=10**9)
        scan = run(btree.scan(view, 0, 500))
        assert [k for k, _ in scan] == sorted(model)
