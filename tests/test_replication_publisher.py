"""Unit tests for the writer-side replication publisher."""

from repro.core.records import BlockPut, LogRecord, RecordKind
from repro.db.replication import (
    CommitNotice,
    MTRChunk,
    ReplicationPublisher,
    VDLUpdate,
)


def record(lsn):
    return LogRecord(
        lsn=lsn, prev_volume_lsn=lsn - 1, prev_pg_lsn=lsn - 1,
        prev_block_lsn=0, block=0, pg_index=0, kind=RecordKind.DATA,
        payload=BlockPut(entries=(("k", lsn),)),
    )


class Collector:
    def __init__(self):
        self.sent = []

    def __call__(self, dst, payload):
        self.sent.append((dst, payload))


class TestReplicationPublisher:
    def test_no_replicas_publishes_nothing(self):
        sink = Collector()
        publisher = ReplicationPublisher("w", sink)
        publisher.publish_mtr([record(1)])
        publisher.publish_vdl(1)
        publisher.publish_commit(1, 1)
        assert sink.sent == []
        assert publisher.chunks_published == 0

    def test_fan_out_to_every_replica(self):
        sink = Collector()
        publisher = ReplicationPublisher("w", sink)
        publisher.attach_replica("r1")
        publisher.attach_replica("r2")
        publisher.publish_mtr([record(1), record(2)])
        destinations = [dst for dst, _p in sink.sent]
        assert destinations == ["r1", "r2"]
        chunk = sink.sent[0][1]
        assert isinstance(chunk, MTRChunk)
        assert [r.lsn for r in chunk.records] == [1, 2]
        assert publisher.chunks_published == 1

    def test_attach_is_idempotent(self):
        publisher = ReplicationPublisher("w", Collector())
        publisher.attach_replica("r1")
        publisher.attach_replica("r1")
        assert publisher.replicas == ["r1"]

    def test_detach_stops_the_stream(self):
        sink = Collector()
        publisher = ReplicationPublisher("w", sink)
        publisher.attach_replica("r1")
        publisher.detach_replica("r1")
        publisher.detach_replica("r1")  # idempotent
        publisher.publish_vdl(5)
        assert sink.sent == []

    def test_payload_kinds(self):
        sink = Collector()
        publisher = ReplicationPublisher("w", sink)
        publisher.attach_replica("r1")
        publisher.publish_mtr([record(1)])
        publisher.publish_vdl(1)
        publisher.publish_commit(9, 1)
        kinds = [type(p) for _d, p in sink.sent]
        assert kinds == [MTRChunk, VDLUpdate, CommitNotice]
        vdl = sink.sent[1][1]
        assert vdl.writer_id == "w" and vdl.vdl == 1
        notice = sink.sent[2][1]
        assert (notice.txn_id, notice.scn) == (9, 1)

    def test_empty_mtr_not_published(self):
        sink = Collector()
        publisher = ReplicationPublisher("w", sink)
        publisher.attach_replica("r1")
        publisher.publish_mtr([])
        assert sink.sent == []


class TestReplicationFraming:
    """Loop-attached publishers boxcar the stream into frames."""

    def build(self, **kwargs):
        from repro.sim.events import EventLoop

        loop = EventLoop()
        sink = Collector()
        publisher = ReplicationPublisher("w", sink, loop=loop, **kwargs)
        publisher.attach_replica("r1")
        return loop, sink, publisher

    def test_items_inside_the_window_share_one_frame(self):
        from repro.db.replication import ReplicationFrame

        loop, sink, publisher = self.build(frame_window=0.05)
        publisher.publish_mtr([record(1)])
        publisher.publish_vdl(1)
        publisher.publish_commit(7, 1)
        assert sink.sent == []  # nothing leaves before the window closes
        loop.run_until_idle()
        assert len(sink.sent) == 1
        frame = sink.sent[0][1]
        assert isinstance(frame, ReplicationFrame)
        assert [type(i) for i in frame.items] == [
            MTRChunk, VDLUpdate, CommitNotice,
        ]
        assert publisher.frames_published == 1

    def test_lone_item_travels_unframed(self):
        loop, sink, publisher = self.build()
        publisher.publish_vdl(3)
        loop.run_until_idle()
        assert len(sink.sent) == 1
        assert isinstance(sink.sent[0][1], VDLUpdate)
        assert publisher.frames_published == 0

    def test_consecutive_vdl_updates_coalesce_to_newest(self):
        loop, sink, publisher = self.build()
        publisher.publish_mtr([record(1)])
        publisher.publish_vdl(1)
        publisher.publish_vdl(2)
        publisher.publish_vdl(3)
        loop.run_until_idle()
        frame = sink.sent[0][1]
        vdls = [i.vdl for i in frame.items if isinstance(i, VDLUpdate)]
        assert vdls == [3]  # monotone VDL: only the newest survives

    def test_max_items_flushes_before_the_window(self):
        loop, sink, publisher = self.build(frame_max_items=3)
        publisher.publish_mtr([record(1)])
        publisher.publish_commit(1, 1)
        publisher.publish_mtr([record(2)])
        # Cap reached: the frame left without the timer firing.
        assert len(sink.sent) == 1
        assert len(sink.sent[0][1].items) == 3

    def test_explicit_flush_cancels_the_timer(self):
        loop, sink, publisher = self.build()
        publisher.publish_mtr([record(1)])
        publisher.publish_vdl(1)
        publisher.flush_frame()
        assert len(sink.sent) == 1
        loop.run_until_idle()  # the cancelled timer must not resend
        assert len(sink.sent) == 1

    def test_frame_reports_boxcar_count(self):
        from repro.db.replication import ReplicationFrame

        frame = ReplicationFrame(writer_id="w", items=(1, 2, 3))
        assert frame.is_boxcar and frame.boxcar_count() == 3
