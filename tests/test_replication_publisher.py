"""Unit tests for the writer-side replication publisher."""

from repro.core.records import BlockPut, LogRecord, RecordKind
from repro.db.replication import (
    CommitNotice,
    MTRChunk,
    ReplicationPublisher,
    VDLUpdate,
)


def record(lsn):
    return LogRecord(
        lsn=lsn, prev_volume_lsn=lsn - 1, prev_pg_lsn=lsn - 1,
        prev_block_lsn=0, block=0, pg_index=0, kind=RecordKind.DATA,
        payload=BlockPut(entries=(("k", lsn),)),
    )


class Collector:
    def __init__(self):
        self.sent = []

    def __call__(self, dst, payload):
        self.sent.append((dst, payload))


class TestReplicationPublisher:
    def test_no_replicas_publishes_nothing(self):
        sink = Collector()
        publisher = ReplicationPublisher("w", sink)
        publisher.publish_mtr([record(1)])
        publisher.publish_vdl(1)
        publisher.publish_commit(1, 1)
        assert sink.sent == []
        assert publisher.chunks_published == 0

    def test_fan_out_to_every_replica(self):
        sink = Collector()
        publisher = ReplicationPublisher("w", sink)
        publisher.attach_replica("r1")
        publisher.attach_replica("r2")
        publisher.publish_mtr([record(1), record(2)])
        destinations = [dst for dst, _p in sink.sent]
        assert destinations == ["r1", "r2"]
        chunk = sink.sent[0][1]
        assert isinstance(chunk, MTRChunk)
        assert [r.lsn for r in chunk.records] == [1, 2]
        assert publisher.chunks_published == 1

    def test_attach_is_idempotent(self):
        publisher = ReplicationPublisher("w", Collector())
        publisher.attach_replica("r1")
        publisher.attach_replica("r1")
        assert publisher.replicas == ["r1"]

    def test_detach_stops_the_stream(self):
        sink = Collector()
        publisher = ReplicationPublisher("w", sink)
        publisher.attach_replica("r1")
        publisher.detach_replica("r1")
        publisher.detach_replica("r1")  # idempotent
        publisher.publish_vdl(5)
        assert sink.sent == []

    def test_payload_kinds(self):
        sink = Collector()
        publisher = ReplicationPublisher("w", sink)
        publisher.attach_replica("r1")
        publisher.publish_mtr([record(1)])
        publisher.publish_vdl(1)
        publisher.publish_commit(9, 1)
        kinds = [type(p) for _d, p in sink.sent]
        assert kinds == [MTRChunk, VDLUpdate, CommitNotice]
        vdl = sink.sent[1][1]
        assert vdl.writer_id == "w" and vdl.vdl == 1
        notice = sink.sent[2][1]
        assert (notice.txn_id, notice.scn) == (9, 1)

    def test_empty_mtr_not_published(self):
        sink = Collector()
        publisher = ReplicationPublisher("w", sink)
        publisher.attach_replica("r1")
        publisher.publish_mtr([])
        assert sink.sent == []
