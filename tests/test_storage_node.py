"""Integration tests for storage-node actors on the simulated network."""

import random

import pytest

from repro.core.epochs import EpochStamp
from repro.core.lsn import TruncationRange
from repro.core.records import BlockPut, LogRecord, RecordKind
from repro.sim.events import EventLoop
from repro.sim.latency import FixedLatency
from repro.sim.network import Actor, Network
from repro.storage.backup import SimulatedS3
from repro.storage.messages import (
    BaselineRequest,
    BaselineResponse,
    EpochWrite,
    EpochWriteAck,
    GCFloorUpdate,
    GossipQuery,
    GossipResponse,
    ReadBlockRequest,
    ReadBlockResponse,
    RecoveryScanRequest,
    RecoveryScanResponse,
    RequestRejected,
    TruncateRequest,
    WriteAck,
    WriteBatch,
)
from repro.storage.metadata import SegmentPlacement, StorageMetadataService
from repro.storage.node import StorageNode, StorageNodeConfig
from repro.storage.segment import Segment, SegmentKind
from repro.storage.volume import VolumeGeometry
from repro.core.membership import MembershipState


class FakeInstance(Actor):
    def __init__(self, name="db"):
        super().__init__(name)
        self.acks = []
        self.rejections = []

    def on_message(self, message):
        if isinstance(message.payload, WriteAck):
            self.acks.append(message.payload)
        elif isinstance(message.payload, RequestRejected):
            self.rejections.append(message.payload)


def build_fleet(node_count=6, background=False):
    loop = EventLoop()
    rng = random.Random(17)
    network = Network(
        loop, rng, intra_az=FixedLatency(0.2), cross_az=FixedLatency(0.8)
    )
    geometry = VolumeGeometry(blocks_per_pg=64, pg_count=1)
    metadata = StorageMetadataService(geometry)
    s3 = SimulatedS3()
    names = [f"seg{i}" for i in range(node_count)]
    metadata.set_membership(0, MembershipState.initial(names))
    nodes = {}
    config = StorageNodeConfig(
        disk=FixedLatency(0.05), enable_background=background
    )
    for i, name in enumerate(names):
        segment = Segment(name, 0)
        node = StorageNode(segment, metadata, s3, rng, config)
        network.attach(node, az=f"az{i % 3 + 1}")
        metadata.place_segment(
            SegmentPlacement(name, 0, name, f"az{i % 3 + 1}",
                             SegmentKind.FULL)
        )
        nodes[name] = node
    for node in nodes.values():
        node.register_peer_directory(nodes)
        node.start()
    instance = FakeInstance()
    network.attach(instance, az="az1")
    return loop, network, metadata, nodes, instance


def make_record(lsn, prev_pg, block=0):
    return LogRecord(
        lsn=lsn, prev_volume_lsn=lsn - 1, prev_pg_lsn=prev_pg,
        prev_block_lsn=0, block=block, pg_index=0, kind=RecordKind.DATA,
        payload=BlockPut(entries=(("k", lsn),)),
    )


def batch(records, epochs=None, pgmrpl=0):
    return WriteBatch(
        instance_id="db", pg_index=0, records=tuple(records),
        epochs=epochs or EpochStamp(), pgmrpl=pgmrpl,
    )


class TestWritePath:
    def test_write_batch_acked_with_scl(self):
        loop, network, _m, nodes, instance = build_fleet()
        network.send("db", "seg0", batch([make_record(1, 0), make_record(2, 1)]))
        loop.run()
        assert len(instance.acks) == 1
        ack = instance.acks[0]
        assert ack.segment_id == "seg0"
        assert ack.scl == 2

    def test_ack_carries_gapped_scl(self):
        loop, network, _m, nodes, instance = build_fleet()
        network.send("db", "seg0", batch([make_record(3, 2)]))  # hole at 1-2
        loop.run()
        assert instance.acks[0].scl == 0

    def test_stale_epoch_write_rejected(self):
        loop, network, _m, nodes, instance = build_fleet()
        nodes["seg0"].epochs.advance(EpochStamp(volume=3))
        network.send("db", "seg0", batch([make_record(1, 0)]))
        loop.run()
        assert instance.acks == []
        assert len(instance.rejections) == 1
        assert instance.rejections[0].current_epochs.volume == 3
        assert nodes["seg0"].segment.hot_log_size == 0

    def test_newer_epoch_teaches_the_node(self):
        loop, network, _m, nodes, instance = build_fleet()
        network.send(
            "db", "seg0",
            batch([make_record(1, 0)], epochs=EpochStamp(volume=5)),
        )
        loop.run()
        assert nodes["seg0"].epochs.current.volume == 5
        assert len(instance.acks) == 1

    def test_pgmrpl_piggyback_advances_gc_floor(self):
        loop, network, _m, nodes, _i = build_fleet()
        network.send("db", "seg0", batch([make_record(1, 0)], pgmrpl=1))
        loop.run()
        assert nodes["seg0"].segment.gc_floor == 1

    def test_gc_floor_is_min_across_instances(self):
        loop, network, _m, nodes, _i = build_fleet()
        node = nodes["seg0"]
        stamp = EpochStamp()
        network.send("db", "seg0",
                     GCFloorUpdate("inst-a", 0, 10, stamp))
        loop.run()
        assert node.segment.gc_floor == 10
        network.send("db", "seg0",
                     GCFloorUpdate("inst-b", 0, 4, stamp))
        loop.run()
        assert node.segment.gc_floor == 10  # monotonic; min governs future
        node.forget_instance("inst-b")


class TestReadPath:
    def _written_fleet(self):
        loop, network, m, nodes, instance = build_fleet()
        records = [make_record(1, 0), make_record(2, 1)]
        network.send("db", "seg0", batch(records))
        loop.run()
        return loop, network, nodes, instance

    def test_read_block_round_trip(self):
        loop, network, nodes, _i = self._written_fleet()
        future = network.rpc(
            "db", "seg0",
            ReadBlockRequest(pg_index=0, block=0, read_point=2,
                             epochs=EpochStamp()),
        )
        loop.run()
        response = future.result()
        assert isinstance(response, ReadBlockResponse)
        assert response.image_dict() == {"k": 2}
        assert response.version_lsn == 2

    def test_read_outside_window_rejected(self):
        loop, network, nodes, _i = self._written_fleet()
        future = network.rpc(
            "db", "seg0",
            ReadBlockRequest(pg_index=0, block=0, read_point=9,
                             epochs=EpochStamp()),
        )
        loop.run()
        assert isinstance(future.result(), RequestRejected)


class TestGossip:
    def test_gossip_query_returns_missing_records(self):
        loop, network, _m, nodes, _i = build_fleet()
        network.send("db", "seg0",
                     batch([make_record(1, 0), make_record(2, 1)]))
        loop.run()
        future = network.rpc(
            "db", "seg0",
            GossipQuery(from_segment="seg1", pg_index=0, scl=0,
                        epochs=EpochStamp()),
        )
        loop.run()
        response = future.result()
        assert isinstance(response, GossipResponse)
        assert [r.lsn for r in response.records] == [1, 2]

    def test_background_gossip_heals_a_lagging_node(self):
        loop, network, _m, nodes, _i = build_fleet(background=True)
        # seg5 misses the writes (down), others receive them.
        network.fail_node("seg5")
        records = [make_record(i, i - 1) for i in range(1, 6)]
        for name in list(nodes)[:5]:
            network.send("db", name, batch(records))
        loop.run(until=50.0)
        network.restore_node("seg5")
        loop.run(until=600.0)
        assert nodes["seg5"].segment.scl == 5
        assert nodes["seg5"].counters["gossip_records_pulled"] >= 5


class TestControlPlane:
    def test_recovery_scan_returns_digests(self):
        loop, network, _m, nodes, _i = build_fleet()
        network.send("db", "seg0",
                     batch([make_record(1, 0), make_record(2, 1)]))
        loop.run()
        future = network.rpc(
            "db", "seg0",
            RecoveryScanRequest(pg_index=0, epochs=EpochStamp()),
        )
        loop.run()
        response = future.result()
        assert isinstance(response, RecoveryScanResponse)
        assert response.scl == 2
        assert [d.lsn for d in response.digests] == [1, 2]

    def test_truncate_installs_epoch_and_clamps(self):
        loop, network, _m, nodes, _i = build_fleet()
        network.send("db", "seg0",
                     batch([make_record(1, 0), make_record(2, 1),
                            make_record(3, 2)]))
        loop.run()
        future = network.rpc(
            "db", "seg0",
            TruncateRequest(
                pg_index=0, pg_point=2,
                truncation=TruncationRange(first=3, last=50),
                new_epochs=EpochStamp(volume=2),
            ),
        )
        loop.run()
        ack = future.result()
        assert ack.scl == 2
        assert nodes["seg0"].epochs.current.volume == 2
        # Old-epoch writers are now boxed out.
        network.send("db", "seg0", batch([make_record(51, 2)]))
        loop.run()
        assert nodes["seg0"].segment.scl == 2

    def test_epoch_write_round_trip(self):
        loop, network, _m, nodes, _i = build_fleet()
        future = network.rpc(
            "db", "seg0",
            EpochWrite(pg_index=0, epochs=EpochStamp(),
                       new_epochs=EpochStamp(membership=2)),
        )
        loop.run()
        ack = future.result()
        assert isinstance(ack, EpochWriteAck)
        assert ack.epochs.membership == 2

    def test_baseline_request_for_hydration(self):
        loop, network, _m, nodes, _i = build_fleet()
        network.send("db", "seg0",
                     batch([make_record(1, 0), make_record(2, 1)]))
        loop.run()
        future = network.rpc(
            "db", "seg0",
            BaselineRequest(from_segment="fresh", pg_index=0,
                            epochs=EpochStamp()),
        )
        loop.run()
        response = future.result()
        assert isinstance(response, BaselineResponse)
        assert response.scl == 2
        assert len(response.records) == 2
        assert response.blocks[0][0] == 0  # block number


class TestBackgroundMaintenance:
    def test_backup_and_gc_ticks(self):
        loop, network, _m, nodes, _i = build_fleet(background=True)
        records = [make_record(i, i - 1) for i in range(1, 4)]
        for name in nodes:
            network.send("db", name, batch(records, pgmrpl=3))
        loop.run(until=2_000.0)
        node = nodes["seg0"]
        assert node.counters["backups_taken"] >= 1
        assert node.segment.backed_up_upto == 3
        assert node.counters["gc_runs"] >= 1
        assert node.segment.hot_log_size == 0  # fully GC'd

    def test_scrub_repairs_injected_corruption(self):
        loop, network, _m, nodes, _i = build_fleet(background=True)
        records = [make_record(i, i - 1) for i in range(1, 4)]
        for name in nodes:
            network.send("db", name, batch(records))
        loop.run(until=100.0)
        node = nodes["seg0"]
        node.segment.coalesce()
        node.segment.blocks[0].corrupt_latest()
        loop.run(until=6_000.0)
        assert node.counters["scrub_repairs"] >= 1
        assert node.segment.scrub() == []
