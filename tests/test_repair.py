"""The self-healing control plane: health monitor + repair planner.

Covers the three layers separately and end to end:

- :class:`repro.repair.HealthMonitor` unit behaviour against a fake
  metadata service (relative silence, grey failures, false-positive
  backoff);
- :class:`repro.repair.RepairPlanner` driving Figure 5 on a live cluster
  (replacement of a genuinely dead segment, rollback when the incumbent
  returns, per-PG serialization under a double fault);
- the auditor's repair invariants (epoch advance, available quorum,
  exact rollback, hydration watermark);
- the satellite paths: driver resubmission after an epoch rejection, and
  scrub repair travelling over the simulated network.
"""

from __future__ import annotations

import pytest

from repro import AuroraCluster
from repro.audit import Auditor
from repro.audit.auditor import AuditError
from repro.repair import (
    REPLACED,
    ROLLED_BACK,
    HealthConfig,
    HealthMonitor,
    SegmentHealth,
)
from repro.repair.metrics import ACTIVE, RepairRecord, summarize_repairs
from repro.sim.events import EventLoop

MEMBERS = [f"pg0-{c}" for c in "abcdef"]


# ----------------------------------------------------------------------
# Health monitor (unit, against a fake metadata service)
# ----------------------------------------------------------------------
class _FakeMembership:
    def __init__(self, members):
        self.members = frozenset(members)


class _FakePlacement:
    def __init__(self, pg_index):
        self.pg_index = pg_index


class _FakeMetadata:
    """Just enough of StorageMetadataService for the monitor."""

    def __init__(self, members):
        self._members = list(members)

    def pg_indexes(self):
        return [0]

    def membership(self, pg_index):
        return _FakeMembership(self._members)

    def placement(self, segment_id):
        return _FakePlacement(0)


class TestHealthMonitor:
    def _monitor(self, **overrides):
        loop = EventLoop()
        config = HealthConfig(**overrides)
        monitor = HealthMonitor(loop, _FakeMetadata(MEMBERS), config)
        monitor.start()
        return loop, monitor

    def _pump(self, loop, monitor, until, alive=(), every=50.0):
        """Advance the loop, feeding periodic acks for ``alive``."""
        t = loop.now
        while t < until:
            t = min(t + every, until)
            loop.run(until=t)
            for segment in alive:
                monitor.note_ack(segment)

    def test_mass_silence_suspects_nobody(self):
        # Writer crash / total partition: every segment goes quiet at
        # once.  Relative silence never accrues, so no churn.
        loop, monitor = self._monitor()
        self._pump(loop, monitor, until=100.0, alive=MEMBERS)
        self._pump(loop, monitor, until=5_000.0, alive=())
        assert all(
            monitor.state_of(m) is SegmentHealth.HEALTHY for m in MEMBERS
        )
        assert monitor.counters["suspected"] == 0

    def test_silent_segment_confirmed_dead(self):
        loop, monitor = self._monitor()
        deaths = []
        monitor.on_confirmed_dead.append(
            lambda seg, failed_at, now: deaths.append((seg, failed_at, now))
        )
        peers = [m for m in MEMBERS if m != "pg0-f"]
        self._pump(loop, monitor, until=100.0, alive=MEMBERS)
        self._pump(loop, monitor, until=2_000.0, alive=peers)
        assert monitor.state_of("pg0-f") is SegmentHealth.DEAD
        assert [d[0] for d in deaths] == ["pg0-f"]
        seg, failed_at, confirmed_at = deaths[0]
        assert failed_at <= 100.0 < confirmed_at
        # Everyone else stayed healthy throughout.
        assert all(
            monitor.state_of(m) is SegmentHealth.HEALTHY for m in peers
        )

    def test_signal_revives_suspect(self):
        loop, monitor = self._monitor()
        peers = [m for m in MEMBERS if m != "pg0-f"]
        self._pump(loop, monitor, until=100.0, alive=MEMBERS)
        # Long enough to suspect, short enough not to confirm.
        self._pump(loop, monitor, until=400.0, alive=peers)
        assert monitor.state_of("pg0-f") is SegmentHealth.SUSPECT
        monitor.note_ack("pg0-f")
        assert monitor.state_of("pg0-f") is SegmentHealth.HEALTHY
        assert monitor.counters["recovered_suspects"] >= 1
        assert monitor.counters["confirmed_dead"] == 0

    def test_grey_segment_never_graduates_past_suspect(self):
        # Hedge bursts make a segment SUSPECT, but confirmation demands
        # *ack* silence: a slow-but-acknowledging segment is never DEAD.
        loop, monitor = self._monitor()
        self._pump(loop, monitor, until=100.0, alive=MEMBERS)
        t = loop.now
        while t < 4_000.0:
            t += 50.0
            loop.run(until=t)
            for segment in MEMBERS:
                monitor.note_ack(segment)
            for _ in range(2):
                monitor.note_hedge("pg0-f")
        assert monitor.counters["suspected"] >= 1
        assert monitor.state_of("pg0-f") is not SegmentHealth.DEAD
        assert monitor.counters["confirmed_dead"] == 0

    def test_false_positive_backs_off_confirmation(self):
        loop, monitor = self._monitor()
        peers = [m for m in MEMBERS if m != "pg0-f"]
        self._pump(loop, monitor, until=100.0, alive=MEMBERS)
        self._pump(loop, monitor, until=2_000.0, alive=peers)
        assert monitor.state_of("pg0-f") is SegmentHealth.DEAD
        base_confirm = monitor.config.confirm_after_ms
        monitor.note_ack("pg0-f")  # the "dead" segment speaks
        assert monitor.state_of("pg0-f") is SegmentHealth.HEALTHY
        assert monitor.counters["false_positives"] == 1
        entry = monitor._states["pg0-f"]
        assert entry.confirm_ms == pytest.approx(
            base_confirm * monitor.config.false_positive_backoff
        )
        # And the backoff is capped.
        for _ in range(20):
            entry.state = SegmentHealth.DEAD
            monitor.note_ack("pg0-f")
        assert entry.confirm_ms <= monitor.config.max_confirm_ms


# ----------------------------------------------------------------------
# End-to-end repairs on a live cluster
# ----------------------------------------------------------------------
def _armed_cluster(seed=99):
    cluster = AuroraCluster.build(seed=seed)
    auditor = Auditor()
    cluster.arm_auditor(auditor)
    monitor, planner = cluster.arm_healer()
    return cluster, auditor, monitor, planner


def _pump(cluster, session, steps, step_ms=10.0, prefix="pump"):
    """Keep traffic (and therefore liveness signals) flowing."""
    for step in range(steps):
        if step % 5 == 0:
            session.write(f"{prefix}{step:04d}", step)
        cluster.run_for(step_ms)


def _pump_until(cluster, session, predicate, max_steps=800, step_ms=10.0,
                prefix="wait"):
    for step in range(max_steps):
        if predicate():
            return True
        if step % 10 == 0:
            session.write(f"{prefix}{step:04d}", step)
        cluster.run_for(step_ms)
    return predicate()


class TestSelfHealing:
    def test_crashed_segment_is_replaced(self):
        cluster, auditor, monitor, planner = _armed_cluster()
        session = cluster.session()
        for i in range(10):
            session.write(f"row{i:02d}", i)

        cluster.failures.crash_node("pg0-f")
        assert _pump_until(
            cluster,
            session,
            lambda: any(r.outcome == REPLACED for r in planner.records),
        ), f"no replacement finished; records={planner.records}"

        record = next(r for r in planner.records if r.outcome == REPLACED)
        assert record.segment_id == "pg0-f"
        assert record.candidate_id is not None
        state = cluster.metadata.membership(0)
        assert state.is_stable
        assert "pg0-f" not in state.members
        assert record.candidate_id in state.members
        # MTTR accounting: failure -> finalize, positive and ordered.
        assert record.mttr_ms is not None and record.mttr_ms > 0
        assert record.detection_ms is not None and record.detection_ms > 0
        assert monitor.counters["confirmed_dead"] >= 1
        # The data survived and the protocol stayed clean.
        assert all(session.get(f"row{i:02d}") == i for i in range(10))
        auditor.assert_clean()

    def test_false_positive_rolls_back_without_loss(self):
        cluster, auditor, monitor, planner = _armed_cluster()
        session = cluster.session()
        for i in range(10):
            session.write(f"row{i:02d}", i)

        target = "pg0-f"
        original_members = cluster.metadata.membership(0).members
        everyone = set(cluster.nodes) | {cluster.writer.name}
        others = everyone - {target}
        # The candidate's name is deterministic; partitioning it *before*
        # it exists pins hydration, so the only exit is the rollback path.
        predicted = cluster.segment_name(
            0,
            cluster.metadata.membership(0).slot_of(target),
            generation=cluster._candidate_counter + 1,
        )
        cluster.failures.partition_node(predicted, others)
        cluster.failures.partition_node(target, others - {predicted})

        assert _pump_until(
            cluster,
            session,
            lambda: planner.active_repair(0) is not None
            and planner.active_repair(0).candidate_id is not None,
        ), "repair never began against the partitioned segment"
        record = planner.active_repair(0)
        assert record.segment_id == target
        assert record.candidate_id == predicted

        # The incumbent returns: heal its partition; gossip and write
        # traffic revive it in the monitor, which must trigger rollback.
        cluster.failures.heal_node_partition(target, others - {predicted})
        assert _pump_until(
            cluster, session, lambda: record.outcome != ACTIVE
        ), "repair never resolved after the incumbent returned"

        assert record.outcome == ROLLED_BACK
        state = cluster.metadata.membership(0)
        assert state.is_stable
        assert target in state.members
        assert predicted not in state.members
        assert state.members == original_members
        assert monitor.counters["false_positives"] >= 1
        assert planner.counters["rolled_back"] >= 1
        # No acked write was lost to the aborted transition.
        cluster.failures.heal_node_partition(predicted, others)
        assert all(session.get(f"row{i:02d}") == i for i in range(10))
        auditor.assert_clean()

    def test_double_fault_serializes_per_pg(self):
        cluster, auditor, monitor, planner = _armed_cluster()
        session = cluster.session()
        for i in range(6):
            session.write(f"row{i:02d}", i)

        cluster.failures.crash_node("pg0-e")
        cluster.failures.crash_node("pg0-f")

        assert _pump_until(
            cluster,
            session,
            lambda: sum(
                1 for r in planner.records if r.outcome == REPLACED
            ) >= 2,
            max_steps=1500,
        ), f"double fault not fully repaired; records={planner.records}"

        # The second confirmation queued behind the first repair, and the
        # transitions never overlapped: strict per-PG serialization.
        first, second = (
            r for r in planner.records if r.outcome == REPLACED
        )
        assert any("queued" in note for note in second.notes)
        assert second.began_at >= first.finished_at
        state = cluster.metadata.membership(0)
        assert state.is_stable
        assert "pg0-e" not in state.members
        assert "pg0-f" not in state.members
        assert all(session.get(f"row{i:02d}") == i for i in range(6))
        auditor.assert_clean()


# ----------------------------------------------------------------------
# Repair metrics
# ----------------------------------------------------------------------
class TestRepairMetrics:
    def test_mttr_only_for_replacements(self):
        replaced = RepairRecord(
            pg_index=0, segment_id="pg0-f", failed_at=100.0,
            confirmed_at=700.0,
        )
        replaced.began_at = 710.0
        replaced.finished_at = 900.0
        replaced.outcome = REPLACED
        rolled = RepairRecord(
            pg_index=0, segment_id="pg0-e", failed_at=100.0,
            confirmed_at=700.0,
        )
        rolled.finished_at = 800.0
        rolled.outcome = ROLLED_BACK
        assert replaced.mttr_ms == pytest.approx(800.0)
        assert replaced.detection_ms == pytest.approx(600.0)
        assert rolled.mttr_ms is None

        summary = summarize_repairs([replaced, rolled])
        assert summary.confirmed == 2
        assert summary.replaced == 1
        assert summary.rolled_back == 1
        assert summary.mean_mttr_ms == pytest.approx(800.0)
        assert any("MTTR" in line for line in summary.render_lines())


# ----------------------------------------------------------------------
# Auditor repair invariants (hook-level)
# ----------------------------------------------------------------------
class TestRepairInvariants:
    def _states(self):
        from repro.core.membership import MembershipState

        base = MembershipState.initial(MEMBERS)
        trans = base.begin_replacement("pg0-f", "pg0-f.1")
        return base, trans

    def _flagged(self, auditor):
        return [v.invariant for v in auditor.violations]

    def test_transition_must_advance_epoch(self):
        auditor = Auditor()
        base, trans = self._states()
        auditor.on_repair_transition(
            0, "begin", base, base, frozenset(MEMBERS)
        )
        assert "repair-epoch" in self._flagged(auditor)

    def test_transition_must_preserve_available_quorum(self):
        auditor = Auditor()
        base, trans = self._states()
        # Up: 4 old members including the suspect -> the old set can
        # write (4/6) but the dual set cannot (only 3 of its 6 are up).
        up = frozenset({"pg0-a", "pg0-b", "pg0-c", "pg0-f"})
        assert base.quorum_config().write_satisfied(up & base.members)
        auditor.on_repair_transition(0, "begin", base, trans, up)
        assert "repair-available-quorum" in self._flagged(auditor)

    def test_healthy_transition_passes(self):
        auditor = Auditor()
        base, trans = self._states()
        up = frozenset(MEMBERS) | {"pg0-f.1"}
        auditor.on_repair_transition(0, "begin", base, trans, up)
        auditor.on_repair_rollback(
            0, trans, trans.rollback_replacement(trans.slot_of("pg0-f"))
        )
        auditor.assert_clean()

    def test_rollback_must_restore_exact_membership(self):
        auditor = Auditor()
        base, trans = self._states()
        # "Rolling back" to a state where a *different* slot changed is
        # not a rollback of this transition.
        bogus = base.begin_replacement("pg0-a", "pg0-a.9")
        auditor.on_repair_rollback(0, trans, bogus)
        assert "repair-rollback-membership" in self._flagged(auditor)

    def test_finalize_below_watermark_is_flagged(self):
        auditor = Auditor()
        auditor._pg_durable[0] = 100
        auditor.on_repair_finalize(0, "pg0-f.1", 40)
        assert "repair-hydration-watermark" in self._flagged(auditor)
        with pytest.raises(AuditError):
            auditor.assert_clean()

    def test_finalize_at_watermark_passes(self):
        auditor = Auditor()
        auditor._pg_durable[0] = 100
        auditor.on_repair_finalize(0, "pg0-f.1", 100)
        auditor.assert_clean()


# ----------------------------------------------------------------------
# Satellites: rejection resubmission + scrub over the network
# ----------------------------------------------------------------------
class TestRejectionResubmit:
    def test_driver_resubmits_under_adopted_epoch(self, cluster):
        session = cluster.session()
        session.write("seed", 0)
        node = cluster.nodes["pg0-a"]
        # Someone else moved the membership epoch forward (e.g. a repair
        # this writer has not heard about): the node now rejects the
        # writer's stamp.  (A foreign *volume* bump would instead mean a
        # successor writer fenced us -- see test_failover.py.)
        ahead = node.epochs.current.bump_membership()
        node.epochs.advance(ahead)

        before = cluster.writer.driver.stats.batches_resubmitted
        for i in range(5):
            session.write(f"after{i}", i)
        cluster.run_for(200.0)

        driver = cluster.writer.driver
        assert driver.stats.rejections_seen >= 1
        assert driver.stats.batches_resubmitted > before
        # The driver adopted the newer epoch and the fleet converged on it.
        assert driver.epochs.membership == ahead.membership
        assert all(session.get(f"after{i}") == i for i in range(5))

    def test_rejection_counts_as_liveness(self):
        cluster, auditor, monitor, planner = _armed_cluster()
        session = cluster.session()
        session.write("seed", 0)
        node = cluster.nodes["pg0-a"]
        node.epochs.advance(node.epochs.current.bump_membership())
        _pump(cluster, session, steps=40)
        # The rejecting segment was never suspected dead, and no repair
        # was started against it.
        assert monitor.state_of("pg0-a") is not SegmentHealth.DEAD
        assert not any(r.segment_id == "pg0-a" for r in planner.records)


class TestScrubOverNetwork:
    def test_scrub_repair_uses_messages(self, cluster):
        session = cluster.session()
        for i in range(8):
            session.write(f"row{i:02d}", i)
        cluster.run_for(100.0)
        node = cluster.nodes["pg0-a"]
        block_id, chain = next(
            (b, c)
            for b, c in sorted(node.segment.blocks.items())
            if len(c) > 0
        )
        chain.corrupt_latest()
        # Let at least two scrub intervals elapse: detect + repair.
        cluster.run_for(2 * node.config.scrub_interval + 500.0)
        by_type = cluster.network.stats.by_type
        # Repair is message-borne either way: the quorum content vote
        # (preferred, DESIGN.md section 12) or the direct scrub repair
        # fallback when fewer than two voters are reachable.
        voted = by_type.get("IntegrityVoteRequest", 0)
        direct = by_type.get("ScrubRepairRequest", 0)
        assert voted >= 1 or direct >= 1
        if voted:
            assert by_type.get("IntegrityVoteResponse", 0) >= 1
        else:
            assert by_type.get("ScrubRepairResponse", 0) >= 1
        assert node.counters["scrub_repairs"] >= 1
        # The corrupted block reads clean again.
        assert all(session.get(f"row{i:02d}") == i for i in range(8))
