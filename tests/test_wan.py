"""The WAN transport: lossy links and the reliable framing layer.

The contract under test is the one the geo tier leans on: whatever the
link drops, duplicates, or reorders, :class:`WanReceiver` delivers a
gapless in-order prefix of the offered payloads exactly once, and
:class:`WanSender` keeps retransmitting (with backoff) until the
cumulative ack catches up.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.events import EventLoop
from repro.sim.wan import (
    WanAck,
    WanConfig,
    WanFrame,
    WanHeartbeat,
    WanLink,
    WanReceiver,
    WanSender,
    WanSenderConfig,
)


class FixedLatency:
    """Deterministic stand-in for a LatencyModel."""

    def __init__(self, ms: float) -> None:
        self.ms = ms

    def sample(self, rng) -> float:
        return self.ms


class Pipe:
    """A controllable bidirectional link wiring one sender/receiver pair.

    Data-direction messages can be lost or held back (reordered); the
    ack direction can be lost independently.  Both directions draw from
    a private RNG, mirroring how the real WanLink behaves.
    """

    def __init__(
        self,
        loop: EventLoop,
        seed: int = 0,
        loss: float = 0.0,
        reorder: float = 0.0,
        ack_loss: float = 0.0,
        latency_ms: float = 10.0,
        sender_config: WanSenderConfig | None = None,
    ) -> None:
        self.loop = loop
        self.rng = random.Random(seed)
        self.loss = loss
        self.reorder = reorder
        self.ack_loss = ack_loss
        self.latency_ms = latency_ms
        self.delivered: list = []
        self.acks_seen = 0
        self.tx = WanSender(
            loop,
            transmit=self._to_receiver,
            config=sender_config
            or WanSenderConfig(retransmit_window=8, seed=seed + 1),
        )
        self.rx = WanReceiver(
            loop, transmit=self._to_sender, deliver=self.delivered.append
        )

    def _to_receiver(self, payload) -> None:
        if self.loss and self.rng.random() < self.loss:
            return
        delay = self.latency_ms
        if self.reorder and self.rng.random() < self.reorder:
            delay += 3 * self.latency_ms
        self.loop.schedule(delay, lambda p=payload: self.rx.on_message(p))

    def _to_sender(self, payload) -> None:
        self.acks_seen += 1
        if self.ack_loss and self.rng.random() < self.ack_loss:
            return
        self.loop.schedule(
            self.latency_ms, lambda p=payload: self.tx.on_ack(p)
        )

    def run_for(self, ms: float) -> None:
        self.loop.run(until=self.loop.now + ms)


# ----------------------------------------------------------------------
# End-to-end reliability over a hostile link
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("loss,reorder", [(0.0, 0.0), (0.3, 0.3), (0.5, 0.2)])
def test_lossy_link_delivers_in_order_exactly_once(seed, loss, reorder):
    loop = EventLoop()
    pipe = Pipe(loop, seed=seed, loss=loss, reorder=reorder, ack_loss=loss)
    payloads = [f"p{i}" for i in range(40)]
    for p in payloads:
        assert pipe.tx.offer(p)
    # Loss < 1 and unbounded retransmission: convergence is guaranteed,
    # the backoff ladder just decides how long the tail takes.
    for _ in range(120):
        if pipe.tx.cumulative_acked == len(payloads):
            break
        pipe.run_for(500.0)
    assert pipe.delivered == payloads
    assert pipe.rx.delivered == len(payloads)
    assert pipe.tx.cumulative_acked == len(payloads)
    assert pipe.tx.buffered == 0
    if loss > 0.0:
        assert pipe.tx.frames_retransmitted > 0


def test_duplicate_frames_dropped_but_reacked():
    loop = EventLoop()
    acks: list[WanAck] = []
    delivered: list = []
    rx = WanReceiver(loop, transmit=acks.append, deliver=delivered.append)
    frame = WanFrame(seq=1, payload="a")
    rx.on_message(frame)
    rx.on_message(frame)  # a retransmission whose original ack was lost
    assert delivered == ["a"]
    assert rx.duplicates == 1
    # Both arrivals produced a cumulative ack, so the sender converges
    # without the receiver ever re-applying.
    assert [a.cumulative for a in acks] == [1, 1]


def test_out_of_order_frames_held_until_gap_fills():
    loop = EventLoop()
    acks: list[WanAck] = []
    delivered: list = []
    rx = WanReceiver(loop, transmit=acks.append, deliver=delivered.append)
    rx.on_message(WanFrame(seq=2, payload="b"))
    rx.on_message(WanFrame(seq=3, payload="c"))
    assert delivered == []
    assert [a.cumulative for a in acks] == [0, 0]
    rx.on_message(WanFrame(seq=1, payload="a"))
    assert delivered == ["a", "b", "c"]
    assert acks[-1].cumulative == 3


def test_ack_loss_recovers_without_reapply():
    loop = EventLoop()
    # Every ack is dropped at first: the sender must retransmit, the
    # receiver must re-ack duplicates, and nothing is delivered twice.
    pipe = Pipe(loop, seed=3, ack_loss=1.0)
    assert pipe.tx.offer("x")
    pipe.run_for(1500.0)
    assert pipe.delivered == ["x"]
    assert pipe.tx.cumulative_acked == 0
    assert pipe.tx.frames_retransmitted > 0
    assert pipe.rx.duplicates > 0
    pipe.ack_loss = 0.0  # the return path heals
    pipe.run_for(3000.0)
    assert pipe.tx.cumulative_acked == 1
    assert pipe.delivered == ["x"]


@given(
    n=st.integers(min_value=1, max_value=20),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_any_arrival_order_yields_gapless_inorder_prefix(n, data):
    """Adversarial permutations with duplicates, driven directly.

    At every intermediate point the delivered list must be exactly the
    gapless prefix 1..k of the offered sequence; once all seqs have
    arrived at least once, everything is delivered exactly once.
    """
    frames = [WanFrame(seq=i + 1, payload=i + 1) for i in range(n)]
    arrivals = data.draw(
        st.permutations(
            frames + data.draw(st.lists(st.sampled_from(frames), max_size=n))
        )
    )
    loop = EventLoop()
    delivered: list[int] = []
    rx = WanReceiver(loop, transmit=lambda a: None, deliver=delivered.append)
    for frame in arrivals:
        rx.on_message(frame)
        assert delivered == list(range(1, len(delivered) + 1))
        assert rx.cumulative == len(delivered)
    assert delivered == list(range(1, n + 1))
    assert rx.delivered == n


# ----------------------------------------------------------------------
# The lossy link policy itself
# ----------------------------------------------------------------------
def test_bandwidth_cap_queues_messages_per_direction():
    link = WanLink(
        WanConfig(
            latency=FixedLatency(10.0),
            loss_rate=0.0,
            reorder_rate=0.0,
            bandwidth_per_ms=1.0,
        )
    )
    first = link.plan("tx", WanFrame(seq=1, payload="a", wan_size=50), 0.0)
    second = link.plan("tx", WanFrame(seq=2, payload="b", wan_size=50), 0.0)
    # The second message serializes behind the first's 50 ms.
    assert first == pytest.approx(60.0)
    assert second == pytest.approx(110.0)
    # The opposite direction has its own cursor.
    back = link.plan("rx", WanFrame(seq=1, payload="c", wan_size=50), 0.0)
    assert back == pytest.approx(60.0)
    assert link.stats.queueing_ms == pytest.approx(50.0 + 100.0 + 50.0)


def test_brownout_raises_loss_and_latency_until_cleared():
    link = WanLink(
        WanConfig(latency=FixedLatency(10.0), loss_rate=0.0, reorder_rate=0.0)
    )
    assert not link.in_brownout
    link.set_brownout(0.75, latency_factor=4.0)
    assert link.in_brownout
    verdicts = [link.plan("tx", f"m{i}", 0.0) for i in range(400)]
    lost = sum(1 for v in verdicts if v is None)
    assert 220 <= lost <= 360  # ~75% of 400
    assert all(v == pytest.approx(40.0) for v in verdicts if v is not None)
    assert link.stats.messages_lost == lost
    link.clear_brownout()
    assert not link.in_brownout
    assert all(
        link.plan("tx", f"n{i}", 0.0) == pytest.approx(10.0)
        for i in range(50)
    )


def test_link_config_validation():
    with pytest.raises(ConfigurationError):
        WanConfig(loss_rate=1.0)
    with pytest.raises(ConfigurationError):
        WanConfig(bandwidth_per_ms=0.0)
    link = WanLink(WanConfig())
    with pytest.raises(ConfigurationError):
        link.set_brownout(1.0)
    with pytest.raises(ConfigurationError):
        link.set_brownout(0.5, latency_factor=0.0)


# ----------------------------------------------------------------------
# Sender-side bounds: backpressure, stalls, heartbeats
# ----------------------------------------------------------------------
def test_buffer_limit_refuses_offers_and_trips_high_water():
    loop = EventLoop()
    sent: list = []
    tx = WanSender(
        loop,
        transmit=sent.append,
        config=WanSenderConfig(buffer_limit=8, high_water_fraction=0.5),
    )
    for i in range(8):
        assert tx.offer(i)
        assert tx.backpressured == (i + 1 >= 4)
    assert not tx.offer("overflow")
    assert tx.offers_rejected == 1
    assert tx.buffered == 8
    # Draining via a cumulative ack releases the backpressure.
    tx.on_ack(WanAck(cumulative=6))
    assert tx.buffered == 2
    assert not tx.backpressured
    assert tx.offer("fits-again")


def test_stall_queues_data_but_heartbeats_keep_flowing():
    loop = EventLoop()
    sent: list = []
    tx = WanSender(
        loop,
        transmit=sent.append,
        config=WanSenderConfig(heartbeat_ms=100.0, seed=5),
    )
    tx.stall(600.0)
    assert tx.stalled
    assert tx.offer("queued")
    assert tx.frames_sent == 0  # held back by the stall
    loop.run(until=500.0)
    assert tx.frames_sent == 0
    assert tx.heartbeats_sent >= 3  # liveness continues through the stall
    assert all(not isinstance(m, WanFrame) for m in sent)
    loop.run(until=2500.0)  # stall lifts; retransmit path flushes the queue
    assert not tx.stalled
    assert tx.frames_sent + tx.frames_retransmitted >= 1
    assert any(
        isinstance(m, WanFrame) and m.payload == "queued" for m in sent
    )


def test_stopped_sender_goes_silent():
    loop = EventLoop()
    sent: list = []
    tx = WanSender(loop, transmit=sent.append)
    assert tx.offer("a")
    tx.stop()
    assert not tx.offer("b")
    assert tx.buffered == 0
    before = len(sent)
    loop.run(until=5000.0)
    assert len(sent) == before  # no retransmissions, no heartbeats


def test_heartbeat_piggybacks_info_and_receiver_surfaces_it():
    loop = EventLoop()
    sent: list = []
    tx = WanSender(
        loop,
        transmit=sent.append,
        config=WanSenderConfig(heartbeat_ms=100.0),
        heartbeat_info=lambda: {"vdl": 42},
    )
    loop.run(until=250.0)
    beats = [m for m in sent if isinstance(m, WanHeartbeat)]
    assert beats and all(b.info == {"vdl": 42} for b in beats)
    seen: list = []
    rx = WanReceiver(
        loop,
        transmit=lambda a: None,
        deliver=lambda p: None,
        on_heartbeat=seen.append,
    )
    rx.on_message(beats[0])
    assert seen == [{"vdl": 42}]


def test_receiver_rejects_unknown_payloads():
    loop = EventLoop()
    rx = WanReceiver(loop, transmit=lambda a: None, deliver=lambda p: None)
    with pytest.raises(ConfigurationError):
        rx.on_message("not a wan payload")
