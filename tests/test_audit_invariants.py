"""Seeded chaos sweeps with the invariant auditor armed.

The flagship property test of the audit subsystem: across many seeded
chaos schedules -- node crashes, AZ outages, degraded nodes, partitions,
writer crash/recovery cycles, a live membership change -- the runtime
auditor must observe ZERO invariant violations.  Any failure message
includes the seed, so a red run is reproducible with::

    PYTHONPATH=src python -m repro audit-run --seed <N> --steps <M>
"""

import pytest

from repro.audit import AuditRunConfig, run_audit
from repro.sim.chaos import ChaosConfig, ChaosSchedule

#: 50 seeds for the sweep satellite; kept short per-seed so the whole
#: file stays in tier-1 time budget.
SWEEP_SEEDS = list(range(50))

#: A few seeds driven long enough to exercise writer crash/recovery
#: (steps >= 150) and the mid-run membership change (steps >= 300).
DEEP_SEEDS = [7, 11, 23]


def _assert_clean(report):
    assert not report.violations, (
        f"invariant violations under chaos; reproduce with "
        f"`python -m repro audit-run --seed {report.seed} "
        f"--steps {report.steps}`:\n" + report.render()
    )


@pytest.mark.parametrize("seed", SWEEP_SEEDS)
def test_chaos_sweep_no_violations(seed):
    report = run_audit(AuditRunConfig(seed=seed, steps=60, replicas=1))
    _assert_clean(report)
    assert report.protocol_events > 0
    assert report.commit_acks > 0


@pytest.mark.parametrize("seed", DEEP_SEEDS)
def test_deep_runs_with_recovery_and_membership_change(seed):
    report = run_audit(AuditRunConfig(seed=seed, steps=320, replicas=1))
    _assert_clean(report)
    assert report.writer_recoveries >= 1
    assert report.chaos_events > 0


def test_report_render_mentions_seed():
    report = run_audit(AuditRunConfig(seed=3, steps=30, replicas=0))
    _assert_clean(report)
    assert "seed=3" in report.render()
    assert report.ok


class TestChaosScheduleDeterminism:
    NODES = [f"pg0-{c}" for c in "abcdef"]
    AZS = {
        "az1": {"pg0-a", "pg0-d"},
        "az2": {"pg0-b", "pg0-e"},
        "az3": {"pg0-c", "pg0-f"},
    }

    def _gen(self, seed):
        return ChaosSchedule.generate(
            seed=seed, nodes=self.NODES, azs=self.AZS, horizon_ms=5000.0
        )

    def test_same_seed_same_schedule(self):
        a, b = self._gen(13), self._gen(13)
        assert a.events == b.events
        assert len(a) > 0

    def test_different_seeds_differ(self):
        assert self._gen(13).events != self._gen(14).events

    def test_no_overlap_on_same_target(self):
        schedule = self._gen(21)
        by_target = {}
        for event in schedule.events:
            by_target.setdefault(event.target, []).append(
                (event.at, event.at + event.duration)
            )
        for intervals in by_target.values():
            intervals.sort()
            for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2

    def test_at_most_one_az_outage_at_a_time(self):
        schedule = self._gen(34)
        outages = sorted(
            (e.at, e.at + e.duration)
            for e in schedule.events
            if e.kind == "crash_az"
        )
        for (s1, e1), (s2, _e2) in zip(outages, outages[1:]):
            assert e1 <= s2

    def test_bounded_durations_and_horizon(self):
        cfg = ChaosConfig()
        schedule = self._gen(55)
        for event in schedule.events:
            assert cfg.min_duration_ms <= event.duration <= cfg.max_duration_ms
            assert 0 <= event.at
            assert event.at + event.duration < schedule.horizon_ms

    def test_describe_lists_every_event(self):
        schedule = self._gen(8)
        text = schedule.describe()
        assert f"events={len(schedule)}" in text
        assert text.count("\n") == len(schedule)
