"""Integration tests for live membership changes (section 4, Figure 5)."""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.errors import MembershipError


class TestFigure5Flow:
    def test_full_replacement_under_load(self, cluster):
        """Epoch 1 -> 2 -> 3 with writes flowing the whole time."""
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(20)})
        cluster.failures.crash_node("pg0-f")

        process = cluster.replace_segment(0, "pg0-f")
        # Writes proceed during the change ("Membership changes do not
        # block either reads or writes").
        for i in range(20, 30):
            db.write(f"k{i}", i)
        candidate = db.drive(process)

        final = cluster.metadata.membership(0)
        assert final.is_stable
        assert candidate in final.members
        assert "pg0-f" not in final.members
        assert final.epoch == 3
        for i in range(30):
            assert db.get(f"k{i}") == i

    def test_candidate_hydrates_to_durable_point(self, cluster):
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(15)})
        cluster.failures.crash_node("pg0-f")
        candidate = db.drive(cluster.replace_segment(0, "pg0-f"))
        tracker = cluster.writer.driver.pg_trackers[0]
        assert cluster.nodes[candidate].segment.scl >= tracker.pgcl

    def test_rollback_when_suspect_returns(self, cluster):
        """'If F comes back, we can make a second membership change back
        to ABCDEF.'"""
        db = cluster.session()
        db.write("a", 1)
        candidate = cluster.begin_segment_replacement(0, "pg0-f")
        assert not cluster.metadata.membership(0).is_stable
        # F turns out to be healthy: reverse.
        cluster.rollback_segment_replacement(0, "pg0-f")
        final = cluster.metadata.membership(0)
        assert final.is_stable
        assert "pg0-f" in final.members
        assert candidate not in final.members
        db.write("b", 2)
        assert db.get("b") == 2

    def test_epoch_visible_on_storage_nodes(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        cluster.failures.crash_node("pg0-f")
        db.drive(cluster.replace_segment(0, "pg0-f"))
        db.write("b", 2)  # carries the new membership epoch everywhere
        cluster.run_for(20)
        assert cluster.nodes["pg0-a"].epochs.current.membership >= 3

    def test_writes_during_dual_membership_reach_candidate(self, cluster):
        db = cluster.session()
        db.write("seed", 0)
        cluster.failures.crash_node("pg0-f")
        candidate = cluster.begin_segment_replacement(0, "pg0-f")
        db.write("during", 1)
        cluster.run_for(20)
        assert cluster.nodes[candidate].segment.hot_log_size > 0

    def test_double_fault_replacement(self, cluster):
        """Replace E and F concurrently (the paper's quad quorum set)."""
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(10)})
        cluster.failures.crash_node("pg0-f")
        cluster.failures.crash_node("pg0-e")
        candidate_f = cluster.begin_segment_replacement(0, "pg0-f")
        candidate_e = cluster.begin_segment_replacement(0, "pg0-e")
        state = cluster.metadata.membership(0)
        assert len(state.member_groups()) == 4
        # "simply writing to the four members ABCD meets quorum":
        db.write("during-double-fault", 1)
        db.drive(cluster.hydrate_segment(0, candidate_f))
        db.drive(cluster.hydrate_segment(0, candidate_e))
        cluster.finalize_segment_replacement(0, "pg0-f")
        cluster.finalize_segment_replacement(0, "pg0-e")
        final = cluster.metadata.membership(0)
        assert final.is_stable
        assert {candidate_e, candidate_f} <= final.members
        for i in range(10):
            assert db.get(f"k{i}") == i

    def test_replaced_data_fully_durable_after_change(self, cluster):
        """After the change completes, crash recovery with the NEW
        membership finds everything."""
        from repro.db.session import Session

        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(12)})
        cluster.failures.crash_node("pg0-f")
        db.drive(cluster.replace_segment(0, "pg0-f"))
        db.write("late", 99)
        cluster.crash_writer()
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)
        assert db.get("k5") == 5
        assert db.get("late") == 99


class TestMembershipGuards:
    def test_finalize_without_begin_rejected(self, cluster):
        with pytest.raises(MembershipError):
            cluster.finalize_segment_replacement(0, "pg0-f")

    def test_unknown_member_rejected(self, cluster):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            cluster.begin_segment_replacement(0, "ghost")


class TestVolumeGrowth:
    def test_grow_adds_pgs_and_bumps_geometry_epoch(self):
        config = ClusterConfig(pg_count=1, blocks_per_pg=16, seed=66)
        cluster = AuroraCluster.build(config)
        db = cluster.session()
        db.write("a", 1)
        epoch_before = cluster.writer.driver.epochs.geometry
        cluster.grow_volume(2)
        assert cluster.metadata.geometry.pg_count == 3
        assert cluster.writer.driver.epochs.geometry == epoch_before + 1
        assert len(cluster.nodes) == 18
        # New PGs accept traffic: fill past the first PG's 16 blocks.
        for i in range(120):
            db.write(f"grown{i:03d}", i)
        assert db.get("grown110") == 110
        used_pgs = {
            node.segment.pg_index
            for node in cluster.nodes.values()
            if node.segment.hot_log_size
        }
        assert len(used_pgs) >= 2


class TestFalsePositiveRepair:
    """Figure 5's reversibility, driven by the autonomous control plane:
    a suspect that returns mid-hydration must be rolled back to, with no
    acknowledged commit lost (satellite of the self-healing tentpole)."""

    def _pump(self, cluster, db, predicate, max_steps=800):
        for step in range(max_steps):
            if predicate():
                return True
            if step % 10 == 0:
                db.write(f"fp-pump{step:04d}", step)
            cluster.run_for(10.0)
        return predicate()

    def test_suspect_returns_mid_hydration_rolls_back(self):
        from repro.audit import Auditor
        from repro.repair.metrics import ACTIVE, ROLLED_BACK

        cluster = AuroraCluster.build(seed=101)
        auditor = Auditor()
        cluster.arm_auditor(auditor)
        monitor, planner = cluster.arm_healer()
        db = cluster.session()
        acked = {f"acked{i:02d}": i for i in range(15)}
        for key, value in acked.items():
            db.write(key, value)

        target = "pg0-e"
        members_before = cluster.metadata.membership(0).members
        others = (set(cluster.nodes) | {cluster.writer.name}) - {target}
        # Pin the (deterministically named) future candidate behind a
        # partition so hydration cannot win the race against the
        # incumbent's return.
        predicted = cluster.segment_name(
            0,
            cluster.metadata.membership(0).slot_of(target),
            generation=cluster._candidate_counter + 1,
        )
        cluster.failures.partition_node(predicted, others)
        cluster.failures.partition_node(target, others - {predicted})

        assert self._pump(
            cluster,
            db,
            lambda: planner.active_repair(0) is not None
            and planner.active_repair(0).candidate_id is not None,
        ), "monitor never confirmed the partitioned segment dead"
        record = planner.active_repair(0)
        assert not cluster.metadata.membership(0).is_stable

        # Acked commits issued while the dual membership is installed
        # must survive the rollback too.
        for i in range(5):
            db.write(f"dual{i}", i)
            acked[f"dual{i}"] = i

        cluster.failures.heal_node_partition(target, others - {predicted})
        assert self._pump(cluster, db, lambda: record.outcome != ACTIVE)

        assert record.outcome == ROLLED_BACK
        final = cluster.metadata.membership(0)
        assert final.is_stable
        assert final.members == members_before
        assert monitor.counters["false_positives"] >= 1
        cluster.failures.heal_node_partition(predicted, others)
        for key, value in acked.items():
            assert db.get(key) == value
        auditor.assert_clean()
