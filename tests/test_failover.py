"""Autonomous writer failover: detection, promotion, fencing, continuity.

Covers the database-tier failover plane end to end:

- :class:`repro.repair.DbHealthMonitor` inferring writer liveness from
  passive signals (no dedicated heartbeats), riding out grey failures;
- :class:`repro.repair.FailoverCoordinator` promoting the most-caught-up
  healthy replica, rolling back on a false positive, and retiring the
  incumbent so nothing can resurrect it;
- the volume-epoch fence: a revived zombie writer's late batches are
  epoch-rejected, its pending commits resolve as *uncertain* (never a
  false acknowledgement), and no acknowledged write is lost (the
  split-brain test the design demands);
- client session continuity: :class:`repro.db.session.ClusterSession`
  retries idempotent operations across a promotion, and typed retryable
  errors surface while the writer endpoint is unresolved;
- the auditor's writer-generation invariants.
"""

from __future__ import annotations

import pytest

from repro import AuroraCluster
from repro.audit import Auditor
from repro.db.instance import InstanceState
from repro.errors import (
    CommitUncertainError,
    ConfigurationError,
    FailoverInProgressError,
    InstanceStateError,
    SimulationError,
)
from repro.repair import (
    PROMOTED,
    WRITER,
    FailoverConfig,
    SegmentHealth,
)
from repro.repair.metrics import ACTIVE, ROLLED_BACK


# ----------------------------------------------------------------------
# Shared scaffolding
# ----------------------------------------------------------------------
def _build(seed=7, replicas=2, failover_config=None, audit=True):
    """A cluster with the failover plane armed and some acked data."""
    cluster = AuroraCluster.build(seed=seed)
    auditor = None
    if audit:
        auditor = Auditor()
        cluster.arm_auditor(auditor)
    for _ in range(replicas):
        cluster.add_replica()
    cluster.arm_failover(failover_config=failover_config)
    cluster.run_for(100.0)
    db = cluster.session()
    committed = {}
    for i in range(12):
        key, value = f"k{i:02d}", f"v{i}"
        db.write(key, value)
        committed[key] = value
    cluster.run_for(100.0)
    return cluster, auditor, committed


def _spin_until(cluster, predicate, max_spins=2000, slice_ms=5.0):
    for _ in range(max_spins):
        if predicate():
            return True
        cluster.run_for(slice_ms)
    return predicate()


def _kill_writer(cluster):
    """Hard kill: process gone, host unreachable, no restore scheduled."""
    name = cluster.writer.name
    cluster.writer.crash()
    cluster.network.fail_node(name)
    return name


def _await_promotion(cluster):
    ok = _spin_until(
        cluster,
        lambda: any(r.outcome == PROMOTED for r in cluster.failover.records)
        and cluster.writer is not None
        and cluster.writer.state is InstanceState.OPEN,
    )
    assert ok, "failover never promoted a successor"


# ----------------------------------------------------------------------
# Passive detection
# ----------------------------------------------------------------------
class TestDbHealthDetection:
    def test_live_writer_stays_healthy_from_passive_signals(self):
        cluster, _auditor, _committed = _build()
        monitor = cluster.db_health
        name = cluster.writer.name
        assert monitor.role_of(name) == WRITER
        before = monitor.last_alive(name)
        cluster.run_for(300.0)
        assert monitor.state_of(name) is SegmentHealth.HEALTHY
        # The GC-floor tick keeps evidence flowing even with no workload.
        assert monitor.last_alive(name) > before

    def test_replicas_are_tracked_with_continuous_signals(self):
        cluster, _auditor, _committed = _build()
        monitor = cluster.db_health
        cluster.run_for(300.0)
        for name in cluster.replicas:
            assert monitor.state_of(name) is SegmentHealth.HEALTHY

    def test_grey_writer_is_never_confirmed_dead(self):
        cluster, auditor, _committed = _build()
        name = cluster.writer.name
        cluster.failures.slow_node(name, 8.0)
        db = cluster.session()
        for i in range(10):
            db.write(f"grey{i}", "x")
            cluster.run_for(100.0)
        cluster.failures.unslow_node(name)
        cluster.run_for(300.0)
        # Slow is not dead: delayed signals still arrive, so the monitor
        # may suspect but must never confirm -- and must never fail over.
        assert cluster.db_health.counters["confirmed_dead"] == 0
        assert not cluster.failover.records
        assert cluster.writer.name == name
        assert not auditor.violations

    def test_dead_writer_is_confirmed_and_detection_is_measured(self):
        cluster, _auditor, _committed = _build()
        _kill_writer(cluster)
        _await_promotion(cluster)
        record = cluster.failover.records[0]
        assert record.detection_ms > 0
        assert record.unavailability_ms is not None
        assert record.unavailability_ms >= record.detection_ms


# ----------------------------------------------------------------------
# Promotion
# ----------------------------------------------------------------------
class TestPromotion:
    def test_writer_kill_promotes_and_keeps_every_acked_write(self):
        cluster, auditor, committed = _build()
        old_name = _kill_writer(cluster)
        _await_promotion(cluster)
        assert cluster.writer.name != old_name
        db = cluster.session()
        for key, value in committed.items():
            assert db.get(key) == value
        assert not auditor.violations

    def test_most_caught_up_replica_wins(self):
        cluster, _auditor, _committed = _build()
        laggard = sorted(cluster.replicas)[0]
        # Partition one replica so it stops applying the redo stream.
        cluster.network.fail_node(laggard)
        db = cluster.session()
        for i in range(10):
            db.write(f"fresh{i}", "y")
        cluster.run_for(200.0)
        cluster.network.restore_node(laggard)
        vdls = {n: r.applied_vdl for n, r in cluster.replicas.items()}
        assert vdls[laggard] < max(vdls.values())
        chosen = cluster.failover._select_candidate(cluster.writer.name)
        assert chosen != laggard
        assert vdls[chosen] == max(vdls.values())

    def test_az_diversity_breaks_vdl_ties(self):
        cluster, _auditor, _committed = _build(replicas=3)
        cluster.run_for(500.0)  # let all replicas fully catch up
        writer_az = cluster.network.az_of(cluster.writer.name)
        azs = {cluster.network.az_of(n) for n in cluster.replicas}
        assert writer_az in azs  # replica-3 shares the writer's AZ
        chosen = cluster.failover._select_candidate(cluster.writer.name)
        assert cluster.network.az_of(chosen) != writer_az

    def test_promoted_writer_read_views_never_regress(self):
        cluster, auditor, _committed = _build()
        vdls = {n: r.applied_vdl for n, r in cluster.replicas.items()}
        _kill_writer(cluster)
        _await_promotion(cluster)
        record = cluster.failover.records[0]
        assert cluster.writer.vdl >= vdls[record.candidate_id]
        assert not [
            v
            for v in auditor.violations
            if v.invariant == "failover-read-view-regression"
        ]

    def test_replica_fleet_is_replenished_after_promotion(self):
        cluster, _auditor, _committed = _build()
        before = len(cluster.replicas)
        _kill_writer(cluster)
        _await_promotion(cluster)
        assert len(cluster.replicas) == before
        assert any(
            n.startswith("failover-replica-") for n in cluster.replicas
        )

    def test_rollback_when_incumbent_returns_after_confirmation(self):
        # A wide poll slice gives the returning incumbent's signals time
        # to land between confirmation and the promotion decision.
        cluster, _auditor, committed = _build(
            failover_config=FailoverConfig(poll_ms=300.0)
        )
        name = cluster.writer.name
        cluster.network.fail_node(name)  # partition; the process lives on
        assert _spin_until(cluster, lambda: bool(cluster.failover.records))
        cluster.network.restore_node(name)
        assert _spin_until(
            cluster,
            lambda: cluster.failover.records[0].outcome != ACTIVE,
        )
        record = cluster.failover.records[0]
        assert record.outcome == ROLLED_BACK
        assert cluster.writer.name == name
        assert cluster.writer.state is InstanceState.OPEN
        assert cluster.db_health.counters["false_positives"] >= 1
        db = cluster.session()
        for key, value in committed.items():
            assert db.get(key) == value


# ----------------------------------------------------------------------
# The split-brain drill: zombie incumbent vs fenced successor
# ----------------------------------------------------------------------
class TestSplitBrain:
    def test_zombie_writer_is_fenced_and_no_acked_write_is_lost(self):
        """Revive the old writer mid-promotion aftermath and prove the
        epoch fence holds: its late batches are rejected, its pending
        commit resolves as *uncertain* (never acknowledged), and every
        previously acknowledged write survives on the successor."""
        cluster, auditor, committed = _build()
        old_writer = cluster.writer
        old_name = old_writer.name

        # An in-flight commit at partition time: enqueued, not yet acked.
        txn = old_writer.begin()
        db = cluster.session()
        db.drive(old_writer.put(txn, "inflight", "zombie-v"))
        pending = old_writer.commit(txn)

        # Partition (do NOT crash): the incumbent keeps running as a
        # zombie, believing it is still the writer.
        cluster.network.fail_node(old_name)
        _await_promotion(cluster)
        assert cluster.writer.name != old_name
        assert old_writer.state is InstanceState.OPEN  # still a zombie

        # The partition "heals": raw network restore models it (the
        # injector-level restore is blocked -- see TestRetirement).
        cluster.network.restore_node(old_name)

        # The zombie tries to keep writing.  Its batches carry the old
        # volume epoch, get rejected, and the rejection tells its driver
        # it was fenced: it must close, resolving the in-flight commit as
        # uncertain -- not acknowledged.
        from repro.sim.process import Process

        ztxn = old_writer.begin()

        def zombie_write():
            yield from old_writer.put(ztxn, "usurp", "zombie-w")
            old_writer.commit(ztxn)

        Process(cluster.loop, zombie_write())
        assert _spin_until(
            cluster, lambda: old_writer.state is InstanceState.CLOSED
        ), "the zombie was never fenced"

        assert pending.done
        assert isinstance(pending.exception(), CommitUncertainError)

        # Zero acknowledged-write loss, judged on the successor.
        db = cluster.session()
        for key, value in committed.items():
            assert db.get(key) == value
        # The uncertain in-flight value is allowed either way; what is
        # forbidden is a *new* zombie write becoming visible.
        assert db.get("usurp") is None
        assert not auditor.violations

    def test_foreign_volume_epoch_bump_closes_the_writer(self):
        """Unit view of the fence trigger: any volume-epoch advance the
        driver learns from a rejection means a successor exists."""
        cluster, _auditor, _committed = _build(replicas=0)
        writer = cluster.writer
        driver = writer.driver
        node = cluster.nodes[sorted(cluster.nodes)[0]]
        ahead = node.epochs.current.bump_volume()
        node.epochs.advance(ahead)
        db = cluster.session()
        with pytest.raises((CommitUncertainError, InstanceStateError)):
            db.write("fence-me", "x")
            db.write("fence-me-2", "x")
        assert writer.state is InstanceState.CLOSED
        assert driver.epochs.volume == ahead.volume
        assert not driver._unacked


# ----------------------------------------------------------------------
# Retirement of the superseded writer
# ----------------------------------------------------------------------
class TestRetirement:
    def test_chaos_restore_cannot_resurrect_the_old_writer(self):
        cluster, _auditor, _committed = _build()
        old_name = _kill_writer(cluster)
        _await_promotion(cluster)
        # The injector-level restore (what a chaos schedule would run) is
        # a no-op on a condemned node.
        cluster.failures.restore_node(old_name)
        assert not cluster.network.is_up(old_name)
        # And the monitor no longer tracks the retired identity, so late
        # gossip about it cannot re-enter the tracked set.
        assert cluster.db_health.role_of(old_name) is None

    def test_storage_nodes_forget_the_old_writer(self):
        cluster, _auditor, _committed = _build()
        old_name = _kill_writer(cluster)
        _await_promotion(cluster)
        for node in cluster.nodes.values():
            # Gossip-driven re-acks to the dead identity are impossible:
            # no node remembers a read floor for it.
            assert old_name not in node._instance_read_floors


# ----------------------------------------------------------------------
# Client session continuity
# ----------------------------------------------------------------------
class TestSessionContinuity:
    def test_typed_retryable_errors_while_endpoint_unresolved(self):
        cluster, _auditor, _committed = _build()
        cluster.failover_in_progress = True
        try:
            with pytest.raises(FailoverInProgressError):
                cluster.session()
            with pytest.raises(FailoverInProgressError):
                cluster.replica_session("no-such-replica")
        finally:
            cluster.failover_in_progress = False
        with pytest.raises(ConfigurationError):
            cluster.replica_session("no-such-replica")
        # The typed error is retryable by construction.
        assert issubclass(FailoverInProgressError, InstanceStateError)
        from repro.db.session import ClusterSession

        assert FailoverInProgressError in ClusterSession.RETRYABLE

    def test_cluster_session_retries_write_across_failover(self):
        cluster, auditor, committed = _build()
        db = cluster.cluster_session()
        db.write("before", "b1")
        _kill_writer(cluster)
        # The very next call rides through detection + promotion.
        db.write("after", "a1")
        assert cluster.writer.state is InstanceState.OPEN
        assert any(r.outcome == PROMOTED for r in cluster.failover.records)
        assert db.get("before") == "b1"
        assert db.get("after") == "a1"
        for key, value in committed.items():
            assert db.get(key) == value
        assert not auditor.violations

    def test_cluster_session_reads_retry_across_failover(self):
        cluster, _auditor, committed = _build()
        db = cluster.cluster_session()
        _kill_writer(cluster)
        key = sorted(committed)[0]
        assert db.get(key) == committed[key]

    def test_retry_budget_not_overshot_when_failover_stalls_midway(self):
        """Regression: each attempt used to re-arm ``await_writer`` with
        the *full* budget instead of the remaining time to the deadline,
        so a failover that stalled after a first failed attempt blocked
        for nearly 2x the stated bound."""
        cluster, _auditor, _committed = _build(audit=False)
        db = cluster.cluster_session()

        def op():
            # First attempt finds an open writer, fails retryably, and
            # the failover plane stalls forever afterwards.
            cluster.failover_in_progress = True
            raise FailoverInProgressError("stalled mid-retry")

        start = cluster.loop.now
        try:
            with pytest.raises(SimulationError):
                db._retry(op, max_ms=1_000.0)
        finally:
            cluster.failover_in_progress = False
        elapsed = cluster.loop.now - start
        assert elapsed <= 1_500.0, f"budget overshot: {elapsed:.0f}ms"

    def test_txn_bound_reads_are_not_retried_across_failover(self):
        """A transaction handle is bound to one writer generation, so
        reads carrying an explicit ``txn`` must raise the retryable error
        through instead of silently rebinding to the promoted writer."""
        cluster, _auditor, _committed = _build()
        db = cluster.cluster_session()
        txn = db.begin()
        db.put(txn, "txn-key", "txn-val")
        assert db.get("txn-key", txn=txn) == "txn-val"
        cluster.failover_in_progress = True
        start = cluster.loop.now
        try:
            with pytest.raises(FailoverInProgressError):
                db.get("txn-key", txn=txn)
            with pytest.raises(FailoverInProgressError):
                db.scan("a", "z", txn=txn)
        finally:
            cluster.failover_in_progress = False
        # The errors surfaced immediately: no retry loop consumed time.
        assert cluster.loop.now == start
        db.rollback(txn)

    def test_retry_repoll_uses_decorrelated_jittered_backoff(self):
        """The fixed 25ms re-poll synchronized every session that saw the
        same failure into lockstep retries; the re-poll now walks a
        jittered ``repro.core.retry.Backoff`` with a deterministic
        per-session stream."""
        from repro.db.session import ClusterSession

        policy = ClusterSession.RETRY_POLICY
        assert policy.jitter > 0.0
        cluster, _auditor, _committed = _build(audit=False)
        s1, s2 = cluster.cluster_session(), cluster.cluster_session()
        b1, b2 = s1._new_backoff(), s2._new_backoff()
        seq1 = [b1.next_delay() for _ in range(6)]
        seq2 = [b2.next_delay() for _ in range(6)]
        # Two sessions on one cluster draw from distinct jitter streams.
        assert seq1 != seq2
        for attempt, (d1, d2) in enumerate(zip(seq1, seq2)):
            skeleton = policy.delay_for(attempt)
            for delay in (d1, d2):
                assert skeleton * (1 - policy.jitter) <= delay
                assert delay <= skeleton * (1 + policy.jitter)
        # Deterministic: rebuilding the same cluster reproduces the walk.
        cluster2, _a, _c = _build(audit=False)
        rb = cluster2.cluster_session()._new_backoff()
        assert [rb.next_delay() for _ in range(3)] == [
            pytest.approx(d) for d in seq1[:3]
        ]


# ----------------------------------------------------------------------
# Reattach under concurrent storage repairs
# ----------------------------------------------------------------------
class TestReattachUnderRepair:
    def test_reattach_replicas_while_a_segment_repair_is_in_flight(self):
        from repro.repair import REPLACED, RepairConfig

        cluster = AuroraCluster.build(seed=11)
        auditor = Auditor()
        cluster.arm_auditor(auditor)
        cluster.arm_healer(
            repair_config=RepairConfig(baseline_transfer_ms=400.0)
        )
        cluster.add_replica()
        cluster.arm_failover()
        cluster.run_for(100.0)
        db = cluster.session()
        for i in range(8):
            db.write(f"rk{i}", f"rv{i}")
        # Permanently kill a segment; wait for the repair to be mid-fliht.
        victim = sorted(cluster.nodes)[0]
        cluster.failures.condemn_node(victim)
        assert _spin_until(
            cluster,
            lambda: any(
                r.outcome == ACTIVE for r in cluster.healer.records
            ),
        )
        # Writer failover while the storage repair is still running: the
        # successor's recovery and reattach must coexist with the
        # membership transition.
        _kill_writer(cluster)
        _await_promotion(cluster)
        assert _spin_until(
            cluster,
            lambda: cluster.healer.idle
            and any(
                r.outcome == REPLACED for r in cluster.healer.records
            ),
            max_spins=4000,
        )
        db = cluster.session()
        for i in range(8):
            assert db.get(f"rk{i}") == f"rv{i}"
        # The reattached replica converges on the successor's stream.
        name = sorted(cluster.replicas)[0]
        replica = cluster.replicas[name]
        db.write("post-repair", "pr")
        assert _spin_until(
            cluster, lambda: replica.applied_vdl >= cluster.writer.vdl
        )
        assert cluster.replica_session(name).get("post-repair") == "pr"
        assert not auditor.violations


# ----------------------------------------------------------------------
# Auditor writer-generation invariants (unit)
# ----------------------------------------------------------------------
class TestWriterInvariants:
    def test_two_open_writers_at_one_epoch_is_flagged(self):
        auditor = Auditor()
        auditor.on_writer_open("writer-1", 3)
        auditor.on_writer_open("writer-2", 3)
        assert any(
            v.invariant == "writer-single-per-epoch"
            for v in auditor.violations
        )

    def test_epoch_must_strictly_advance_across_generations(self):
        auditor = Auditor()
        auditor.on_writer_open("writer-1", 2)
        auditor.on_writer_close("writer-1")
        auditor.on_writer_open("writer-2", 2)
        assert any(
            v.invariant == "writer-epoch-regressed"
            for v in auditor.violations
        )

    def test_clean_succession_is_silent(self):
        auditor = Auditor()
        auditor.on_writer_open("writer-1", 1)
        auditor.on_writer_close("writer-1")
        auditor.on_writer_open("writer-2", 2)
        assert not auditor.violations


# ----------------------------------------------------------------------
# Telemetry / report plumbing
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_failover_windows_feed_the_availability_report(self):
        from repro.analysis import failover_availability

        cluster, _auditor, _committed = _build()
        _kill_writer(cluster)
        _await_promotion(cluster)
        summary = cluster.failover.summary()
        assert summary.promoted == 1
        report = failover_availability(
            summary.unavailability.samples,
            detection_samples_ms=summary.detection.samples,
            promotion_samples_ms=summary.promotion.samples,
        )
        assert report.meets_budget
        assert 0 < report.worst_budget_fraction < 1
        assert report.unavailability.samples == 1
        assert any("budget" in line for line in report.render_lines())

    def test_budget_breach_is_reported(self):
        from repro.analysis import failover_availability

        report = failover_availability([45_000.0], budget_s=30.0)
        assert not report.meets_budget
        assert report.worst_budget_fraction > 1

    def test_budget_must_be_positive(self):
        from repro.analysis import failover_availability

        with pytest.raises(ConfigurationError):
            failover_availability([100.0], budget_s=0)
