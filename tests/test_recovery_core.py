"""Unit tests for the pure crash-recovery computation (section 2.4).

Includes the Figure 4 scenario: a crash with in-flight gaps, the recomputed
VCL, and the truncation range that annuls the ragged edge.
"""

import pytest

from repro.core.lsn import NULL_LSN
from repro.core.quorum import aurora_v6_config, v6_config
from repro.core.records import ChainDigest
from repro.core.recovery import (
    SegmentRecoveryResponse,
    recover_pg_completion,
    recover_volume_state,
)
from repro.errors import RecoveryError


def digest(lsn, prev, pg=0, mtr_end=True):
    return ChainDigest(
        lsn=lsn, prev_volume_lsn=prev, pg_index=pg, mtr_end=mtr_end
    )


def response(segment_id, scl, digests, pg=0):
    return SegmentRecoveryResponse(
        segment_id=segment_id, pg_index=pg, scl=scl, digests=tuple(digests)
    )


MEMBERS = [f"s{i}" for i in range(6)]


def config():
    return v6_config(MEMBERS)


class TestRecoverPGCompletion:
    def test_requires_read_quorum(self):
        with pytest.raises(RecoveryError):
            recover_pg_completion(
                0, config(), [response("s0", 5, []), response("s1", 5, [])]
            )

    def test_takes_max_scl_over_responders(self):
        responses = [
            response("s0", 5, []),
            response("s1", 9, []),
            response("s2", 7, []),
        ]
        assert recover_pg_completion(0, config(), responses) == 9

    def test_empty_pg_recovers_null(self):
        responses = [response(f"s{i}", NULL_LSN, []) for i in range(3)]
        assert recover_pg_completion(0, config(), responses) == NULL_LSN


class TestRecoverVolumeState:
    def _chain(self, *lsns, pg=0):
        prev = NULL_LSN
        digests = []
        for lsn in lsns:
            digests.append(digest(lsn, prev, pg))
            prev = lsn
        return digests

    def test_figure_4_truncation(self):
        """Crash with gaps: records 1-5 complete, 6 missing, 7-8 present on
        one segment only.  VCL=5; 6..ceiling annulled."""
        chain = self._chain(1, 2, 3, 4, 5, 6, 7, 8)
        full = chain  # s0 has everything
        partial = chain[:5]  # quorum only covered 1..5
        responses = [
            response("s0", 8, full),
            response("s1", 5, partial),
            response("s2", 5, partial),
            response("s3", 5, partial),
        ]
        # s0's extra records never met quorum: max SCL is 8, but VCL is
        # chain-complete through 8 since s0 holds 1..8... wait: PGCL is
        # max SCL = 8 and the chain IS complete, so recovery keeps them.
        result = recover_volume_state(
            {0: config()}, {0: responses}, highest_possible_lsn=1000
        )
        assert result.vcl == 8
        assert result.truncation.first == 9
        assert result.truncation.last == 1000

    def test_true_ragged_edge_is_annulled(self):
        """A record above a genuine chain gap is cut off (Figure 4): the
        writer crashed mid-flight and record 6 reached nobody."""
        base = self._chain(1, 2, 3, 4, 5)
        straggler = digest(7, 6)  # prev=6, but 6 is nowhere
        responses = [
            response("s0", 5, base + [straggler]),
            response("s1", 5, base),
            response("s2", 5, base),
            response("s3", 5, base),
        ]
        result = recover_volume_state(
            {0: config()}, {0: responses}, highest_possible_lsn=500
        )
        assert result.vcl == 5
        assert result.truncation.contains(6)
        assert result.truncation.contains(7)
        assert result.truncation.contains(500)

    def test_multi_pg_vcl_interleaving(self):
        """Figure 3 meets Figure 4: VCL stops at the first LSN whose PG
        has not recovered it."""
        pg1 = [digest(101, 0, 1), digest(103, 102, 1), digest(105, 104, 1)]
        pg2 = [digest(102, 101, 2), digest(104, 103, 2), digest(106, 105, 2)]
        cfg = config()

        def scan(pg, digests, scl):
            return [
                response(f"s{i}", scl, digests, pg=pg) for i in range(4)
            ]

        result = recover_volume_state(
            {1: cfg, 2: cfg},
            {1: scan(1, pg1[:2], 103), 2: scan(2, pg2, 106)},
            highest_possible_lsn=1000,
        )
        # 105 is above PG1's recovered completion (103): chain breaks there.
        assert result.vcl == 104
        assert result.pg_truncation_points == {1: 103, 2: 104}

    def test_vdl_tracks_last_mtr_boundary(self):
        digests = [
            digest(1, 0, mtr_end=True),
            digest(2, 1, mtr_end=False),
            digest(3, 2, mtr_end=False),
        ]
        responses = [response(f"s{i}", 3, digests) for i in range(4)]
        result = recover_volume_state(
            {0: config()}, {0: responses}, highest_possible_lsn=100
        )
        assert result.vcl == 3
        assert result.vdl == 1

    def test_pg_vdl_frontiers(self):
        pg0 = [digest(1, 0, 0, True), digest(3, 2, 0, False)]
        pg1 = [digest(2, 1, 1, True)]
        cfg = config()
        result = recover_volume_state(
            {0: cfg, 1: cfg},
            {
                0: [response(f"s{i}", 3, pg0, pg=0) for i in range(3)],
                1: [response(f"s{i}", 2, pg1, pg=1) for i in range(3)],
            },
            highest_possible_lsn=50,
        )
        assert result.vcl == 3
        assert result.vdl == 2
        # The PG1 frontier is exact; the PG0 frontier may be the true last
        # record (1) or a synthetic point up to the VDL (2) -- both serve
        # identical block versions (no PG0 record lies in (1, 2]).
        assert result.pg_vdl_frontiers[1] == 2
        assert 1 <= result.pg_vdl_frontiers[0] <= 2

    def test_no_truncation_needed_when_ceiling_equals_vcl(self):
        digests = self._chain(1, 2)
        responses = [response(f"s{i}", 2, digests) for i in range(3)]
        result = recover_volume_state(
            {0: config()}, {0: responses}, highest_possible_lsn=2
        )
        assert result.truncation is None

    def test_missing_pg_scan_rejected(self):
        with pytest.raises(RecoveryError):
            recover_volume_state(
                {0: config(), 1: config()},
                {0: []},
                highest_possible_lsn=10,
            )

    def test_empty_volume_recovers_to_null(self):
        responses = [response(f"s{i}", NULL_LSN, []) for i in range(3)]
        result = recover_volume_state(
            {0: config()}, {0: responses}, highest_possible_lsn=100
        )
        assert result.vcl == NULL_LSN
        assert result.vdl == NULL_LSN

    def test_acked_commit_always_survives(self):
        """Durability core: a record durable on a write quorum (4/6) is
        below the recovered VCL for ANY read-quorum scan."""
        import itertools

        chain = self._chain(1, 2, 3)
        cfg = config()
        # Record 1..3 durable on s0..s3; s4, s5 empty.
        full_state = {f"s{i}": (3, chain) for i in range(4)}
        full_state.update({f"s{i}": (NULL_LSN, []) for i in range(4, 6)})
        for scan_members in itertools.combinations(MEMBERS, 3):
            responses = [
                response(m, full_state[m][0], full_state[m][1])
                for m in scan_members
            ]
            result = recover_volume_state(
                {0: cfg}, {0: responses}, highest_possible_lsn=100
            )
            assert result.vcl >= 3, f"lost data scanning {scan_members}"
