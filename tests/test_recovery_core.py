"""Unit tests for the pure crash-recovery computation (section 2.4).

Includes the Figure 4 scenario: a crash with in-flight gaps, the recomputed
VCL, and the truncation range that annuls the ragged edge.

The core properties are parametrized over the storage backends' quorum
profiles (shared ``backend`` fixture): the same recovery computation must
hold for Aurora's 4/6 write / 3/6 read quorum over six segments and for
Taurus's 2/3 majority over the three log stores, so this module doubles as
part of the cross-backend conformance suite.
"""

import pytest

from repro.core.lsn import NULL_LSN
from repro.core.quorum import (
    aurora_v6_config,
    group_transition_config,
    v6_config,
)
from repro.core.records import ChainDigest
from repro.core.recovery import (
    SegmentRecoveryResponse,
    recover_pg_completion,
    recover_volume_state,
)
from repro.errors import RecoveryError


def digest(lsn, prev, pg=0, mtr_end=True):
    return ChainDigest(
        lsn=lsn, prev_volume_lsn=prev, pg_index=pg, mtr_end=mtr_end
    )


def response(segment_id, scl, digests, pg=0):
    return SegmentRecoveryResponse(
        segment_id=segment_id, pg_index=pg, scl=scl, digests=tuple(digests)
    )


MEMBERS = [f"s{i}" for i in range(6)]


def config():
    return v6_config(MEMBERS)


#: Quorum shape each backend's recovery scan runs against.  Taurus scans
#: only the durability quorum -- its three log stores -- so its profile is
#: a 2/3 majority; Aurora scans all six segments at 4/6 write, 3/6 read.
PROFILES = {
    "aurora": dict(
        members=[f"s{i}" for i in range(6)],
        write_quorum=4,
        read_quorum=3,
        config=lambda members: v6_config(members),
    ),
    "taurus": dict(
        members=[f"s{i}" for i in range(3)],
        write_quorum=2,
        read_quorum=2,
        config=lambda members: group_transition_config(
            [frozenset(members)]
        ),
    ),
}


@pytest.fixture
def profile(backend):
    return PROFILES[backend]


class TestRecoverPGCompletion:
    def test_requires_read_quorum(self, profile):
        members = profile["members"][: profile["read_quorum"] - 1]
        responses = [response(m, 5, []) for m in members]
        with pytest.raises(RecoveryError):
            recover_pg_completion(
                0, profile["config"](profile["members"]), responses
            )

    def test_takes_max_scl_over_responders(self, profile):
        members = profile["members"][: profile["read_quorum"]]
        responses = [
            response(m, 5 + 2 * i, []) for i, m in enumerate(members)
        ]
        expected = 5 + 2 * (len(members) - 1)
        cfg = profile["config"](profile["members"])
        assert recover_pg_completion(0, cfg, responses) == expected

    def test_empty_pg_recovers_null(self, profile):
        members = profile["members"][: profile["read_quorum"]]
        responses = [response(m, NULL_LSN, []) for m in members]
        cfg = profile["config"](profile["members"])
        assert recover_pg_completion(0, cfg, responses) == NULL_LSN


class TestRecoverVolumeState:
    def _chain(self, *lsns, pg=0):
        prev = NULL_LSN
        digests = []
        for lsn in lsns:
            digests.append(digest(lsn, prev, pg))
            prev = lsn
        return digests

    def test_figure_4_truncation(self, profile):
        """Crash with gaps: records 1-5 complete, 6 missing, 7-8 present on
        one segment only.  VCL=5; 6..ceiling annulled."""
        chain = self._chain(1, 2, 3, 4, 5, 6, 7, 8)
        members = profile["members"]
        full = chain  # the first responder has everything
        partial = chain[:5]  # quorum only covered 1..5
        responses = [response(members[0], 8, full)] + [
            response(m, 5, partial)
            for m in members[1 : profile["read_quorum"] + 1]
        ]
        # The first responder's extra records never met quorum: max SCL is
        # 8, but the chain IS complete through 8, so recovery keeps them.
        cfg = profile["config"](members)
        result = recover_volume_state(
            {0: cfg}, {0: responses}, highest_possible_lsn=1000
        )
        assert result.vcl == 8
        assert result.truncation.first == 9
        assert result.truncation.last == 1000

    def test_true_ragged_edge_is_annulled(self, profile):
        """A record above a genuine chain gap is cut off (Figure 4): the
        writer crashed mid-flight and record 6 reached nobody."""
        base = self._chain(1, 2, 3, 4, 5)
        straggler = digest(7, 6)  # prev=6, but 6 is nowhere
        members = profile["members"]
        responses = [response(members[0], 5, base + [straggler])] + [
            response(m, 5, base)
            for m in members[1 : profile["read_quorum"] + 1]
        ]
        cfg = profile["config"](members)
        result = recover_volume_state(
            {0: cfg}, {0: responses}, highest_possible_lsn=500
        )
        assert result.vcl == 5
        assert result.truncation.contains(6)
        assert result.truncation.contains(7)
        assert result.truncation.contains(500)

    def test_multi_pg_vcl_interleaving(self):
        """Figure 3 meets Figure 4: VCL stops at the first LSN whose PG
        has not recovered it."""
        pg1 = [digest(101, 0, 1), digest(103, 102, 1), digest(105, 104, 1)]
        pg2 = [digest(102, 101, 2), digest(104, 103, 2), digest(106, 105, 2)]
        cfg = config()

        def scan(pg, digests, scl):
            return [
                response(f"s{i}", scl, digests, pg=pg) for i in range(4)
            ]

        result = recover_volume_state(
            {1: cfg, 2: cfg},
            {1: scan(1, pg1[:2], 103), 2: scan(2, pg2, 106)},
            highest_possible_lsn=1000,
        )
        # 105 is above PG1's recovered completion (103): chain breaks there.
        assert result.vcl == 104
        assert result.pg_truncation_points == {1: 103, 2: 104}

    def test_vdl_tracks_last_mtr_boundary(self):
        digests = [
            digest(1, 0, mtr_end=True),
            digest(2, 1, mtr_end=False),
            digest(3, 2, mtr_end=False),
        ]
        responses = [response(f"s{i}", 3, digests) for i in range(4)]
        result = recover_volume_state(
            {0: config()}, {0: responses}, highest_possible_lsn=100
        )
        assert result.vcl == 3
        assert result.vdl == 1

    def test_pg_vdl_frontiers(self):
        pg0 = [digest(1, 0, 0, True), digest(3, 2, 0, False)]
        pg1 = [digest(2, 1, 1, True)]
        cfg = config()
        result = recover_volume_state(
            {0: cfg, 1: cfg},
            {
                0: [response(f"s{i}", 3, pg0, pg=0) for i in range(3)],
                1: [response(f"s{i}", 2, pg1, pg=1) for i in range(3)],
            },
            highest_possible_lsn=50,
        )
        assert result.vcl == 3
        assert result.vdl == 2
        # The PG1 frontier is exact; the PG0 frontier may be the true last
        # record (1) or a synthetic point up to the VDL (2) -- both serve
        # identical block versions (no PG0 record lies in (1, 2]).
        assert result.pg_vdl_frontiers[1] == 2
        assert 1 <= result.pg_vdl_frontiers[0] <= 2

    def test_no_truncation_needed_when_ceiling_equals_vcl(self):
        digests = self._chain(1, 2)
        responses = [response(f"s{i}", 2, digests) for i in range(3)]
        result = recover_volume_state(
            {0: config()}, {0: responses}, highest_possible_lsn=2
        )
        assert result.truncation is None

    def test_missing_pg_scan_rejected(self):
        with pytest.raises(RecoveryError):
            recover_volume_state(
                {0: config(), 1: config()},
                {0: []},
                highest_possible_lsn=10,
            )

    def test_empty_volume_recovers_to_null(self):
        responses = [response(f"s{i}", NULL_LSN, []) for i in range(3)]
        result = recover_volume_state(
            {0: config()}, {0: responses}, highest_possible_lsn=100
        )
        assert result.vcl == NULL_LSN
        assert result.vdl == NULL_LSN

    def test_acked_commit_always_survives(self, profile):
        """Durability core: a record durable on a write quorum (4/6 for
        Aurora, 2/3 of the log stores for Taurus) is below the recovered
        VCL for ANY read-quorum scan -- the W + R > V overlap, exhaustively.
        """
        import itertools

        chain = self._chain(1, 2, 3)
        members = profile["members"]
        cfg = profile["config"](members)
        # Records 1..3 durable on exactly a minimal write quorum; the
        # remaining members saw nothing before the crash.
        durable = members[: profile["write_quorum"]]
        full_state = {m: (3, chain) for m in durable}
        full_state.update(
            {m: (NULL_LSN, []) for m in members[profile["write_quorum"]:]}
        )
        for scan_members in itertools.combinations(
            members, profile["read_quorum"]
        ):
            responses = [
                response(m, full_state[m][0], full_state[m][1])
                for m in scan_members
            ]
            result = recover_volume_state(
                {0: cfg}, {0: responses}, highest_possible_lsn=100
            )
            assert result.vcl >= 3, f"lost data scanning {scan_members}"
