"""Integration tests for crash recovery, epoch fencing, and durability.

Includes the headline durability property: a commit acknowledged to the
client survives ANY instance crash, at any point, under concurrent
segment failures within the design's fault budget.
"""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session


def crash_and_recover(cluster):
    cluster.crash_writer()
    process = cluster.recover_writer()
    session = Session(cluster.writer)
    session.drive(process)
    return session


class TestBasicRecovery:
    def test_committed_data_survives(self, cluster):
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(20)})
        db = crash_and_recover(cluster)
        for i in range(20):
            assert db.get(f"k{i}") == i

    def test_recovery_is_usable_for_new_writes(self, cluster):
        db = cluster.session()
        db.write("before", 1)
        db = crash_and_recover(cluster)
        db.write("after", 2)
        assert db.get("before") == 1
        assert db.get("after") == 2

    def test_new_lsns_allocated_above_truncation_range(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        old_high = cluster.writer.allocator.highest_allocated
        db = crash_and_recover(cluster)
        assert cluster.writer.allocator.next_lsn > old_high
        truncations = cluster.writer.allocator.truncations
        assert truncations
        assert truncations[-1].first > 0

    def test_volume_epoch_bumped(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        epoch_before = cluster.writer.driver.epochs.volume
        crash_and_recover(cluster)
        assert cluster.writer.driver.epochs.volume == epoch_before + 1

    def test_unacknowledged_commit_may_be_lost_never_corrupt(self, cluster):
        """A commit whose ack never arrived either fully survives or fully
        disappears -- no partial transaction state."""
        db = cluster.session()
        db.write("stable", "yes")
        txn = db.begin()
        db.put(txn, "x1", "atomic")
        db.put(txn, "x2", "atomic")
        db.commit_async(txn)  # crash before the ack can fire
        cluster.crash_writer()
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)
        values = (db.get("x1"), db.get("x2"))
        assert values in (("atomic", "atomic"), (None, None))
        assert db.get("stable") == "yes"

    def test_in_flight_uncommitted_txn_rolled_back(self, cluster):
        db = cluster.session()
        db.write("committed", 1)
        txn = db.begin()
        db.put(txn, "never-committed", 1)
        cluster.run_for(20)  # let the uncommitted record reach quorum
        db = crash_and_recover(cluster)
        assert db.get("never-committed") is None
        assert db.get("committed") == 1
        assert cluster.writer.stats.orphan_versions_purged >= 1

    def test_repeated_crashes(self, cluster):
        db = cluster.session()
        for round_number in range(3):
            db.write(f"round{round_number}", round_number)
            db = crash_and_recover(cluster)
        for round_number in range(3):
            assert db.get(f"round{round_number}") == round_number

    def test_recovery_stats_recorded(self, cluster):
        db = cluster.session()
        db.write("a", 1)
        crash_and_recover(cluster)
        assert cluster.writer.stats.recoveries == 1
        assert len(cluster.writer.stats.recovery_durations) == 1


class TestEpochFencing:
    def test_zombie_writer_writes_are_refused(self, cluster):
        """'This boxes out old instances with previously open connections
        from accessing the storage volume after crash recovery.'"""
        db = cluster.session()
        db.write("a", 1)
        stale_epochs = cluster.writer.driver.epochs
        crash_and_recover(cluster)
        # Simulate the zombie: a write batch at the pre-crash epoch.
        from repro.core.records import BlockPut, LogRecord, RecordKind
        from repro.storage.messages import WriteBatch

        zombie_lsn = cluster.writer.allocator.next_lsn + 500
        zombie_record = LogRecord(
            lsn=zombie_lsn, prev_volume_lsn=0, prev_pg_lsn=0,
            prev_block_lsn=0, block=5, pg_index=0, kind=RecordKind.DATA,
            payload=BlockPut(entries=(("zombie", True),)),
        )
        target = cluster.nodes["pg0-a"]
        before = target.counters["rejections_sent"]
        cluster.network.send(
            cluster.writer.name, "pg0-a",
            WriteBatch(
                instance_id="zombie", pg_index=0,
                records=(zombie_record,), epochs=stale_epochs, pgmrpl=0,
            ),
        )
        cluster.run_for(10)
        assert target.counters["rejections_sent"] == before + 1
        assert zombie_lsn not in target.segment.hot_log


class TestRecoveryUnderFailures:
    def test_recovery_with_two_segments_down(self, cluster):
        """Read quorum is 3/6: recovery succeeds with two members dead."""
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(10)})
        cluster.failures.crash_node("pg0-e")
        cluster.failures.crash_node("pg0-f")
        db = crash_and_recover(cluster)
        for i in range(10):
            assert db.get(f"k{i}") == i
        db.write("post", 1)  # 4/6 write quorum still available

    def test_recovery_with_az_down(self, cluster):
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(10)})
        cluster.failures.crash_az("az2")
        db = crash_and_recover(cluster)
        assert db.get("k3") == 3
        db.write("post-az", 1)

    def test_commit_with_one_slow_segment(self, cluster):
        """A degraded (not dead) node must not stall commits: 4/6 acks."""
        cluster.failures.slow_node("pg0-a", 50.0)
        db = cluster.session()
        db.write("a", 1)
        assert db.get("a") == 1


class TestDurabilityProperty:
    @pytest.mark.parametrize("crash_after_ms", [4.0, 6.0, 9.0, 14.0, 23.0])
    def test_acknowledged_commits_survive_any_crash_point(
        self, crash_after_ms
    ):
        """Drive writes continuously, crash the writer cold at an arbitrary
        instant, recover, and verify every acknowledged commit."""
        cluster = AuroraCluster.build(
            ClusterConfig(seed=int(crash_after_ms * 100))
        )
        db = cluster.session()
        acknowledged: dict[str, int] = {}
        futures = []
        for i in range(40):
            txn = db.begin()
            key, value = f"key{i:02d}", i
            db.put(txn, key, value)
            future = db.commit_async(txn)
            future.add_done_callback(
                lambda f, k=key, v=value: acknowledged.__setitem__(k, v)
            )
            futures.append(future)
        cluster.run_for(crash_after_ms)  # cut the run mid-flight
        cluster.crash_writer()
        assert acknowledged, "test needs at least one acked commit"
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)
        for key, value in acknowledged.items():
            assert db.get(key) == value, (
                f"acknowledged commit of {key} lost after crash at "
                f"{crash_after_ms}ms"
            )

    def test_durability_with_concurrent_segment_failure(self):
        cluster = AuroraCluster.build(ClusterConfig(seed=404))
        cluster.failures.crash_at(3.0, "pg0-b")
        cluster.failures.crash_at(6.0, "pg0-d")
        db = cluster.session()
        acknowledged = {}
        for i in range(30):
            txn = db.begin()
            db.put(txn, f"k{i}", i)
            db.commit_async(txn).add_done_callback(
                lambda f, k=f"k{i}", v=i: acknowledged.__setitem__(k, v)
            )
        cluster.run_for(12.0)
        cluster.crash_writer()
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)
        for key, value in acknowledged.items():
            assert db.get(key) == value


class TestMultiPGRecovery:
    def test_recovery_across_protection_groups(self, multi_pg_cluster):
        cluster = multi_pg_cluster
        db = cluster.session()
        db.write_many({f"key{i:03d}": i for i in range(300)})
        cluster.crash_writer()
        process = cluster.recover_writer()
        db = Session(cluster.writer)
        db.drive(process)
        for i in range(0, 300, 23):
            assert db.get(f"key{i:03d}") == i
        # Blocks really are spread across PGs.
        used_pgs = {
            node.segment.pg_index
            for node in cluster.nodes.values()
            if node.segment.hot_log_size or node.segment.blocks
        }
        assert len(used_pgs) >= 2
