"""Integration tests for read replicas (sections 3.2 - 3.4)."""

import pytest

from repro import AuroraCluster, ClusterConfig
from repro.db.session import Session
from repro.errors import InstanceStateError


@pytest.fixture
def replicated_cluster(cluster):
    cluster.add_replica("r1")
    return cluster


class TestReplicationStream:
    def test_replica_sees_committed_writes(self, replicated_cluster):
        cluster = replicated_cluster
        db = cluster.session()
        db.write("a", 1)
        cluster.run_for(20)
        rs = cluster.replica_session("r1")
        assert rs.get("a") == 1

    def test_replica_lags_durability_not_issuance(self, replicated_cluster):
        """Invariant 1: replica state never runs ahead of the writer's VDL."""
        cluster = replicated_cluster
        db = cluster.session()
        txn = db.begin()
        db.put(txn, "a", 1)
        replica = cluster.replicas["r1"]
        assert replica.applied_vdl <= cluster.writer.vdl
        db.commit(txn)
        cluster.run_for(20)
        assert replica.applied_vdl <= cluster.writer.vdl

    def test_uncommitted_data_invisible_on_replica(self, replicated_cluster):
        cluster = replicated_cluster
        db = cluster.session()
        txn = db.begin()
        db.put(txn, "pending", 1)
        cluster.run_for(20)
        rs = cluster.replica_session("r1")
        assert rs.get("pending") is None  # no commit notice yet
        db.commit(txn)
        cluster.run_for(20)
        assert rs.get("pending") == 1

    def test_mtr_chunks_apply_atomically(self, replicated_cluster):
        """Invariant 2: a split MTR never half-applies at the replica."""
        cluster = replicated_cluster
        db = cluster.session()
        txn = db.begin()
        for i in range(60):  # enough to split leaves several times
            db.put(txn, f"key{i:02d}", i)
        db.commit(txn)
        cluster.run_for(50)
        rs = cluster.replica_session("r1")
        results = rs.scan("key00", "key99")
        assert [v for _k, v in results] == list(range(60))

    def test_replica_uses_storage_for_uncached_blocks(self, cluster):
        """A replica attached AFTER the writes has a cold cache; its reads
        must come from the shared volume."""
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(30)})
        cluster.run_for(20)
        replica = cluster.add_replica("late")
        rs = cluster.replica_session("late")
        assert rs.get("k7") == 7
        assert replica.driver.stats.reads_issued > 0

    def test_replica_lag_measured(self, replicated_cluster):
        cluster = replicated_cluster
        db = cluster.session()
        for i in range(10):
            db.write(f"k{i}", i)
        cluster.run_for(50)
        replica = cluster.replicas["r1"]
        assert replica.replica_lag == 0
        assert replica.stats.chunks_applied > 0

    def test_discarded_redo_raises_the_block_discard_frontier(self, cluster):
        """Every record discarded for an uncached block must be remembered
        (per block, highest LSN) so an in-flight storage read issued
        before it cannot later install an image that predates it."""
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(30)})
        cluster.run_for(20)
        replica = cluster.add_replica("late")
        # The late replica's cache is cold, so this burst is discarded
        # record by record -- each discard raises the frontier.
        db.write_many({f"k{i}": i * 2 for i in range(30)})
        cluster.run_for(50)
        assert replica.stats.records_discarded > 0
        assert replica._discard_frontier
        assert max(replica._discard_frontier.values()) <= replica.applied_vdl

    def test_stale_image_is_served_but_never_cached(self, cluster):
        """Regression for the install-vs-discard race: a storage read
        whose point predates a discarded redo record for the same block
        still answers its caller (the image is a consistent snapshot at
        that point) but must NOT be installed in cache -- later redo
        would apply on top of the gap and the replica would silently
        diverge from the volume forever."""
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(30)})
        cluster.run_for(20)
        replica = cluster.add_replica("late")
        # Simulate the race on the meta block: pretend redo for it was
        # discarded after any read point this read can use.
        replica._discard_frontier[replica.META_BLOCK] = (
            replica.applied_vdl + 1
        )
        rs = cluster.replica_session("late")
        assert rs.get("k7") == 7  # the caller still gets its snapshot
        assert replica.cache.peek(replica.META_BLOCK) is None
        assert replica.stats.stale_installs_declined >= 1
        # Once a fresh read point covers the discarded record, the next
        # read warms the block normally.
        replica._discard_frontier.clear()
        assert rs.get("k7") == 7
        assert replica.cache.peek(replica.META_BLOCK) is not None

    def test_writer_path_latency_unaffected_by_replicas(self):
        """'There is little latency added to the write path ... since
        replication is asynchronous': commit latency with 3 replicas is
        within noise of commit latency with none."""
        def mean_commit(replica_count):
            cluster = AuroraCluster.build(ClusterConfig(seed=303))
            for i in range(replica_count):
                cluster.add_replica(f"r{i}")
            db = cluster.session()
            for i in range(30):
                db.write(f"k{i}", i)
            latencies = cluster.writer.stats.commit_latencies
            return sum(latencies) / len(latencies)

        without = mean_commit(0)
        with_replicas = mean_commit(3)
        assert with_replicas < without * 1.25

    def test_replicas_are_read_only(self, replicated_cluster):
        replica = replicated_cluster.replicas["r1"]
        with pytest.raises(InstanceStateError):
            replica.stage_change(None, 0, None)


class TestSnapshotAnchoring:
    def test_read_views_anchor_at_applied_vdl(self, replicated_cluster):
        """Invariant 3: replica views anchor at writer-equivalent points."""
        cluster = replicated_cluster
        db = cluster.session()
        db.write("a", "v1")
        cluster.run_for(20)
        replica = cluster.replicas["r1"]
        view = replica.open_view()
        assert view.read_point == replica.applied_vdl
        replica.close_view(view)

    def test_commit_history_from_notices(self, replicated_cluster):
        cluster = replicated_cluster
        db = cluster.session()
        txn = db.begin()
        db.put(txn, "a", 1)
        scn = db.commit(txn)
        cluster.run_for(20)
        replica = cluster.replicas["r1"]
        assert replica.registry.commit_scn(txn.txn_id) == scn

    def test_replica_advertises_gc_floor(self, replicated_cluster):
        cluster = replicated_cluster
        db = cluster.session()
        db.write("a", 1)
        cluster.run_for(200)  # several gc-floor ticks
        node = cluster.nodes["pg0-a"]
        assert "r1" in node._instance_read_floors


class TestPromotion:
    def test_promotion_preserves_acknowledged_commits(self, cluster):
        """'if a commit has been marked durable and acknowledged to the
        client, there is no data loss when a replica is promoted'"""
        cluster.add_replica("r1")
        db = cluster.session()
        acknowledged = {}
        for i in range(20):
            txn = db.begin()
            db.put(txn, f"k{i}", i)
            db.commit_async(txn).add_done_callback(
                lambda f, k=f"k{i}", v=i: acknowledged.__setitem__(k, v)
            )
        cluster.run_for(8.0)
        cluster.crash_writer()
        assert acknowledged
        new_writer, recovery = cluster.promote_replica("r1")
        db = Session(new_writer)
        db.drive(recovery)
        for key, value in acknowledged.items():
            assert db.get(key) == value

    def test_promoted_writer_accepts_new_traffic(self, cluster):
        cluster.add_replica("r1")
        db = cluster.session()
        db.write("before", 1)
        cluster.crash_writer()
        new_writer, recovery = cluster.promote_replica("r1")
        db = Session(new_writer)
        db.drive(recovery)
        db.write("after", 2)
        assert db.get("before") == 1
        assert db.get("after") == 2

    def test_surviving_replicas_reattach_to_new_writer(self, cluster):
        cluster.add_replica("r1")
        cluster.add_replica("r2")
        db = cluster.session()
        db.write("pre", 1)
        cluster.run_for(20)
        cluster.crash_writer()
        new_writer, recovery = cluster.promote_replica("r1")
        db = Session(new_writer)
        db.drive(recovery)
        cluster.reattach_replicas()
        db.write("post", 2)
        cluster.run_for(50)
        rs = cluster.replica_session("r2")
        assert rs.get("pre") == 1
        assert rs.get("post") == 2


class TestReplicaScaling:
    def test_many_replicas_serve_reads(self, cluster):
        for i in range(4):
            cluster.add_replica(f"r{i}")
        db = cluster.session()
        db.write_many({f"k{i}": i for i in range(10)})
        cluster.run_for(50)
        for i in range(4):
            rs = cluster.replica_session(f"r{i}")
            assert rs.get("k5") == 5

    def test_teardown_is_cheap(self, cluster):
        """'quickly set up and tear down replicas ... since durable state
        is shared': removal requires no data movement."""
        cluster.add_replica("r1")
        sent_before = cluster.network.stats.messages_sent
        cluster.remove_replica("r1")
        assert cluster.network.stats.messages_sent == sent_before
        assert "r1" not in cluster.replicas
