"""Runtime invariant auditing for the quorum protocol.

The paper's correctness story rests on *local* consistency points (SCL,
PGCL, VCL, VDL), epoch fencing, and machine-checkable quorum overlap --
none of which were continuously verified while the simulator ran.  This
package closes that gap:

- :class:`~repro.audit.auditor.Auditor` subscribes to lightweight observer
  hooks wired through the protocol layers and asserts every safety property
  on every state transition (see ``docs/AUDIT.md`` for the invariant
  catalogue and paper citations).
- :func:`~repro.audit.runner.run_audit` drives a workload through a small
  cluster under a seeded :class:`~repro.sim.chaos.ChaosSchedule` with the
  auditor armed, producing a reproducible violation report.

Usage::

    from repro import AuroraCluster
    from repro.audit import Auditor

    cluster = AuroraCluster.build(seed=7)
    auditor = Auditor()
    cluster.arm_auditor(auditor)
    ...  # run any traffic / chaos
    auditor.assert_clean()

or, end to end::

    python -m repro audit-run --seed 7 --steps 2000
"""

from repro.audit.auditor import AuditViolation, Auditor
from repro.audit.runner import (
    AuditReport,
    AuditRunConfig,
    run_audit,
    run_audit_sweep,
)

__all__ = [
    "AuditReport",
    "AuditRunConfig",
    "AuditViolation",
    "Auditor",
    "run_audit",
    "run_audit_sweep",
]
