"""The runtime invariant auditor.

The auditor is a passive observer: protocol components expose optional
``audit_probe`` attributes (``None`` by default -- the hook sites cost one
attribute load when unarmed) and, when armed, report every state transition
here.  The auditor re-checks the paper's safety argument on each event and
records a named :class:`AuditViolation` whenever an invariant breaks,
instead of raising mid-protocol -- a broken invariant must not change the
schedule it is observing.

Invariant names are part of the public contract (tests and the CLI report
key off them):

``scl-monotonic``
    A segment's SCL only moves forward through chain advance / rebase;
    only an explicit crash-recovery truncation may lower it (section 3.1).
``scl-truncate-durable``
    A recovery truncation's annulment window ``(pg_point, range.last]``
    never covers the PG's proven durable point (section 3.3: the ragged
    edge above VCL is annulled, never data below a write-quorum-complete
    LSN).  Durable points *above* the window belong to a post-recovery
    writer generation and survive a late-delivered truncation untouched.
``pgcl-monotonic``
    PGCL never regresses within a writer generation (section 2.2).
``vcl-monotonic`` / ``vdl-monotonic``
    Volume points never regress within a writer generation (section 2.2).
``vdl-le-vcl``
    VDL trails VCL at an MTR boundary, never exceeds it (section 2.2).
``commit-ack-durable``
    A commit is acknowledged only once its SCN is durable: SCN <= VCL and
    SCN <= VDL at ack time (sections 2.2, 3.2).
``durable-commit-lost``
    Crash recovery re-establishes volume points at or above every
    acknowledged commit SCN (section 3.3 / Figure 5: read/write overlap
    guarantees the recovered VCL covers all durable writes).
``quorum-overlap``
    Every active :class:`~repro.core.quorum.QuorumConfig` -- including the
    mixed quorum sets installed during membership transitions -- proves
    read/write and write/write intersection (sections 2.1, 4.1).
``epoch-monotonic``
    Epoch stamps adopted by any party never move a component backwards
    (section 2.4).
``stale-epoch-accepted``
    A request carrying an epoch below the current one must be rejected,
    never serviced (section 2.4).
``membership-epoch``
    A membership transition strictly increases the membership epoch
    (section 4.2 / Figure 6).
``geometry-epoch``
    Volume growth strictly increases the geometry epoch (section 4.3).
``replica-read-above-vdl`` / ``replica-apply-above-vdl``
    A read replica never exposes a read view -- nor applies redo -- above
    the VDL advertised by the writer (section 2.3).
``repair-available-quorum``
    A repair transition never reduces an available quorum: if the live
    members satisfied the write quorum before the step, they still do
    after it (section 4's "I/Os continue throughout").
``repair-epoch``
    Every repair transition (begin / finalize / rollback) strictly
    increases the membership epoch (Figure 5).
``repair-rollback-membership``
    Rolling back a replacement restores the exact prior slot structure --
    the change really was "reversible until the point it is finalized".
``repair-hydration-watermark``
    A replacement is finalized only once the candidate's SCL covers the
    PG's proven durable point: no acknowledged write is lost by dropping
    the incumbent (section 4.2's hydration requirement).
``writer-single-per-epoch``
    At most one writer is ever open at a given volume epoch.  A zombie
    predecessor lingering at an older epoch is legal -- the fence exists
    precisely to contain it -- but two writers sharing an epoch means
    recovery failed to change the locks (section 6).
``writer-epoch-regressed``
    Every writer generation after bootstrap opens at a strictly higher
    volume epoch than any generation before it (section 2.4: recovery
    bumps the volume epoch before the volume reopens).
``failover-read-view-regression``
    A promoted writer's recovered durable point never falls below the
    applied VDL its replica incarnation had already exposed to readers
    (section 3.2: promotion must not move reads backwards).
``integrity-corrupt-served``
    A read never serves a block version for which an injected corruption
    is still open: read-time verification plus quarantine must intercept
    every corrupt image before it reaches a replica or client
    (DESIGN.md §12; flagged by :class:`repro.sim.failures.IntegrityLog`).
``integrity-repair-propagated-corruption``
    A quorum-vote repair never adopts an image whose checksum matches an
    open corruption's digest: a corrupt peer must not win the vote
    (DESIGN.md §12).
``integrity-unrepaired-past-budget``
    Every injected corruption is detected and repaired within the
    configured repair budget; scrubbing plus the vote give bounded, not
    best-effort, exposure windows (DESIGN.md §12).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import QuorumError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.epochs import EpochStamp
    from repro.core.membership import MembershipState
    from repro.core.quorum import QuorumConfig
    from repro.sim.events import EventLoop


class AuditError(AssertionError):
    """Raised by :meth:`Auditor.assert_clean` when violations were found."""


@dataclass(frozen=True)
class AuditViolation:
    """One broken invariant, with enough context to reproduce it."""

    invariant: str
    subject: str
    detail: str
    at: float
    #: Snapshot of the trailing protocol events when the violation fired.
    tail: tuple[str, ...] = field(default=(), compare=False)

    def __str__(self) -> str:
        return (
            f"[t={self.at:.3f}] {self.invariant}: {self.subject} -- "
            f"{self.detail}"
        )


class Auditor:
    """Collects protocol events and checks every safety invariant.

    The auditor never raises from a hook: violations accumulate in
    :attr:`violations` and the run continues, so a single broken invariant
    yields a full report rather than a truncated schedule.  Call
    :meth:`assert_clean` (tests) or inspect :attr:`violations` (CLI).
    """

    def __init__(self, tail_size: int = 64) -> None:
        self.violations: list[AuditViolation] = []
        self.events_seen = 0
        self._tail: deque[str] = deque(maxlen=tail_size)
        self._loop: EventLoop | None = None
        # Watermarks.  Per-owner state is cleared when that owner crashes
        # (a fresh writer generation restarts its trackers); the durable
        # facts -- per-PG durable points and the acked-commit high water --
        # survive crashes, because durability does.
        self._scl: dict[str, int] = {}
        self._pgcl: dict[tuple[str, int], int] = {}
        self._vcl: dict[str, int] = {}
        self._vdl: dict[str, int] = {}
        self._epochs: dict[str, "EpochStamp"] = {}
        self._segment_pg: dict[str, int] = {}
        self._pg_durable: dict[int, int] = {}
        self._max_geometry_epoch = 0
        self._max_acked_scn = 0
        self.commit_acks = 0
        # Writer-generation tracking (failover invariants): every open
        # writer by name -> the volume epoch it opened at, plus the
        # highest volume epoch any writer ever opened at.
        self._open_writers: dict[str, int] = {}
        self._max_writer_epoch = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_loop(self, loop: "EventLoop") -> None:
        """Attach the simulator clock so events/violations are timestamped."""
        self._loop = loop

    def register_segment(self, segment_id: str, pg_index: int) -> None:
        """Teach the auditor which PG a segment serves (for truncation
        checks against that PG's durable point)."""
        self._segment_pg[segment_id] = pg_index

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def event_tail(self) -> list[str]:
        return list(self._tail)

    def assert_clean(self) -> None:
        if self.violations:
            lines = [f"{len(self.violations)} invariant violation(s):"]
            lines += [f"  {v}" for v in self.violations]
            lines.append("event tail:")
            lines += [f"  {e}" for e in self._tail]
            raise AuditError("\n".join(lines))

    def flag(self, invariant: str, subject: str, detail: str) -> None:
        """Record a violation (also the entry point for external checkers
        such as the chaos runner's client-side read validation)."""
        violation = AuditViolation(
            invariant=invariant,
            subject=subject,
            detail=detail,
            at=self._now(),
            tail=tuple(self._tail),
        )
        self.violations.append(violation)
        self._record(f"VIOLATION {invariant} {subject}: {detail}")

    def _now(self) -> float:
        return self._loop.now if self._loop is not None else 0.0

    def _record(self, text: str) -> None:
        self.events_seen += 1
        self._tail.append(f"[t={self._now():.3f}] {text}")

    # ------------------------------------------------------------------
    # Hook: segment chains (SCL)
    # ------------------------------------------------------------------
    def on_scl(self, owner: str, old: int, new: int, reason: str) -> None:
        self._record(f"scl {owner} {old}->{new} ({reason})")
        floor = self._scl.get(owner, old)
        if new < floor:
            self.flag(
                "scl-monotonic",
                owner,
                f"SCL moved {floor} -> {new} via {reason}; only an "
                f"explicit truncation may lower an SCL",
            )
        self._scl[owner] = max(floor, new)

    def on_scl_truncate(
        self, owner: str, to_lsn: int, old: int, new: int,
        last: int | None = None,
    ) -> None:
        self._record(f"scl-truncate {owner} {old}->{new} (target {to_lsn})")
        pg = self._segment_pg.get(owner)
        if pg is not None:
            durable = self._pg_durable.get(pg, 0)
            # Only the window (to_lsn, last] is annulled; a durable point
            # above `last` lives in a post-recovery generation and survives
            # a late-delivered truncation untouched.
            if to_lsn < durable and (last is None or durable <= last):
                self.flag(
                    "scl-truncate-durable",
                    owner,
                    f"truncation window ({to_lsn}, "
                    f"{'inf' if last is None else last}] covers PG {pg}'s "
                    f"durable point {durable}: committed data destroyed",
                )
        # Truncation legitimately lowers the SCL; rebase the watermark.
        self._scl[owner] = new

    # ------------------------------------------------------------------
    # Hook: PG consistency (PGCL, quorum configs)
    # ------------------------------------------------------------------
    def on_pgcl(self, owner: str, pg_index: int, old: int, new: int) -> None:
        self._record(f"pgcl {owner} pg{pg_index} {old}->{new}")
        key = (owner, pg_index)
        floor = self._pgcl.get(key, old)
        if new < floor:
            self.flag(
                "pgcl-monotonic",
                f"{owner}/pg{pg_index}",
                f"PGCL moved {floor} -> {new}",
            )
        self._pgcl[key] = max(floor, new)
        durable = self._pg_durable.get(pg_index, 0)
        self._pg_durable[pg_index] = max(durable, new)

    def on_quorum_config(
        self, owner: str, pg_index: int, config: "QuorumConfig"
    ) -> None:
        self._record(
            f"quorum-config {owner} pg{pg_index} "
            f"members={len(config.members)} proven={config.is_proven}"
        )
        try:
            config.prove()
        except QuorumError as exc:
            self.flag(
                "quorum-overlap",
                f"{owner}/pg{pg_index}",
                f"active config {config!r} fails its overlap proof: {exc}",
            )

    # ------------------------------------------------------------------
    # Hook: volume points (VCL / VDL)
    # ------------------------------------------------------------------
    def on_volume_points(
        self,
        owner: str,
        old_vcl: int,
        old_vdl: int,
        new_vcl: int,
        new_vdl: int,
        reason: str,
    ) -> None:
        self._record(
            f"volume {owner} vcl {old_vcl}->{new_vcl} "
            f"vdl {old_vdl}->{new_vdl} ({reason})"
        )
        if new_vdl > new_vcl:
            self.flag(
                "vdl-le-vcl",
                owner,
                f"VDL {new_vdl} exceeds VCL {new_vcl} ({reason})",
            )
        if reason == "reset":
            # Crash recovery installs fresh points.  They may regress
            # relative to the lost generation's uncommitted tail, but never
            # below an acknowledged commit (section 3.3).
            if new_vcl < self._max_acked_scn:
                self.flag(
                    "durable-commit-lost",
                    owner,
                    f"recovered VCL {new_vcl} is below acknowledged "
                    f"commit SCN {self._max_acked_scn}",
                )
            if new_vdl < self._max_acked_scn:
                self.flag(
                    "durable-commit-lost",
                    owner,
                    f"recovered VDL {new_vdl} is below acknowledged "
                    f"commit SCN {self._max_acked_scn}",
                )
            self._vcl[owner] = new_vcl
            self._vdl[owner] = new_vdl
            return
        vcl_floor = self._vcl.get(owner, old_vcl)
        if new_vcl < vcl_floor:
            self.flag(
                "vcl-monotonic", owner, f"VCL moved {vcl_floor} -> {new_vcl}"
            )
        vdl_floor = self._vdl.get(owner, old_vdl)
        if new_vdl < vdl_floor:
            self.flag(
                "vdl-monotonic", owner, f"VDL moved {vdl_floor} -> {new_vdl}"
            )
        self._vcl[owner] = max(vcl_floor, new_vcl)
        self._vdl[owner] = max(vdl_floor, new_vdl)

    # ------------------------------------------------------------------
    # Hook: commit acknowledgements
    # ------------------------------------------------------------------
    def on_commit_ack(self, owner: str, scn: int, vcl: int) -> None:
        self._record(f"commit-ack {owner} scn={scn} vcl={vcl}")
        self.commit_acks += 1
        if scn > vcl:
            self.flag(
                "commit-ack-durable",
                owner,
                f"commit SCN {scn} acknowledged at VCL {vcl}",
            )
        vdl = self._vdl.get(owner)
        if vdl is not None and scn > vdl:
            self.flag(
                "commit-ack-durable",
                owner,
                f"commit SCN {scn} acknowledged above VDL {vdl}",
            )
        self._max_acked_scn = max(self._max_acked_scn, scn)

    # ------------------------------------------------------------------
    # Hook: epochs
    # ------------------------------------------------------------------
    def on_epoch_change(
        self, owner: str, old: "EpochStamp", new: "EpochStamp"
    ) -> None:
        self._record(f"epoch {owner} {old} -> {new}")
        floor = self._epochs.get(owner, old)
        if (
            new.volume < floor.volume
            or new.membership < floor.membership
            or new.geometry < floor.geometry
        ):
            self.flag(
                "epoch-monotonic",
                owner,
                f"epoch stamp regressed: {floor} -> {new}",
            )
            self._epochs[owner] = new
            return
        self._epochs[owner] = new

    def on_stale_epoch(
        self,
        owner: str,
        kind: str,
        presented: int,
        current: int,
        rejected: bool = True,
    ) -> None:
        self._record(
            f"stale-epoch {owner} {kind} presented={presented} "
            f"current={current} rejected={rejected}"
        )
        if not rejected:
            self.flag(
                "stale-epoch-accepted",
                owner,
                f"serviced a request at {kind} epoch {presented} "
                f"while current epoch is {current}",
            )

    # ------------------------------------------------------------------
    # Hook: membership and geometry
    # ------------------------------------------------------------------
    def on_membership_transition(
        self, before: "MembershipState", after: "MembershipState"
    ) -> None:
        self._record(
            f"membership epoch {before.epoch}->{after.epoch} "
            f"members={sorted(after.members)}"
        )
        if after.epoch <= before.epoch:
            self.flag(
                "membership-epoch",
                "membership",
                f"membership epoch did not advance: {before.epoch} -> "
                f"{after.epoch}",
            )
        try:
            after.quorum_config().prove()
        except QuorumError as exc:
            self.flag(
                "quorum-overlap",
                "membership",
                f"post-transition quorum config fails overlap proof: {exc}",
            )

    # ------------------------------------------------------------------
    # Hook: autonomous repair (Figure 5 driven by the repair planner)
    # ------------------------------------------------------------------
    def on_repair_transition(
        self,
        pg_index: int,
        stage: str,
        before: "MembershipState",
        after: "MembershipState",
        up_members: frozenset,
    ) -> None:
        """One step of an autonomous repair, with the live-member set as
        observed when the step was taken."""
        self._record(
            f"repair-{stage} pg{pg_index} epoch {before.epoch}->"
            f"{after.epoch} up={sorted(up_members)}"
        )
        if after.epoch <= before.epoch:
            self.flag(
                "repair-epoch",
                f"pg{pg_index}/{stage}",
                f"repair step did not advance the membership epoch: "
                f"{before.epoch} -> {after.epoch}",
            )
        live_before = up_members & before.members
        live_after = up_members & after.members
        if before.quorum_config().write_satisfied(
            live_before
        ) and not after.quorum_config().write_satisfied(live_after):
            self.flag(
                "repair-available-quorum",
                f"pg{pg_index}/{stage}",
                f"live members {sorted(live_before)} satisfied the write "
                f"quorum before the step but {sorted(live_after)} do not "
                f"after it: the repair reduced an available quorum",
            )

    def on_repair_rollback(
        self,
        pg_index: int,
        transitional: "MembershipState",
        restored: "MembershipState",
    ) -> None:
        self._record(
            f"repair-rollback-check pg{pg_index} epoch {restored.epoch}"
        )
        # Exactly one slot may change, and it must collapse from
        # (incumbent, candidate) back to (incumbent,): the membership
        # before the begin step, restored bit-for-bit.
        diffs = [
            i
            for i, (t, r) in enumerate(
                zip(transitional.slots, restored.slots)
            )
            if t != r
        ]
        ok = (
            len(diffs) == 1
            and len(transitional.slots[diffs[0]]) == 2
            and restored.slots[diffs[0]]
            == transitional.slots[diffs[0]][:1]
        )
        if not ok:
            self.flag(
                "repair-rollback-membership",
                f"pg{pg_index}",
                f"rollback produced {restored.slots} from "
                f"{transitional.slots}: prior membership not restored",
            )

    def on_repair_finalize(
        self, pg_index: int, candidate_id: str, candidate_scl: int
    ) -> None:
        self._record(
            f"repair-finalize pg{pg_index} {candidate_id} "
            f"scl={candidate_scl}"
        )
        durable = self._pg_durable.get(pg_index, 0)
        if candidate_scl < durable:
            self.flag(
                "repair-hydration-watermark",
                f"pg{pg_index}/{candidate_id}",
                f"replacement finalized at SCL {candidate_scl}, below PG "
                f"{pg_index}'s durable point {durable}: acked writes would "
                f"be lost with the incumbent",
            )

    def on_geometry_growth(
        self, old_epoch: int, new_epoch: int, pg_count: int
    ) -> None:
        self._record(
            f"geometry epoch {old_epoch}->{new_epoch} pgs={pg_count}"
        )
        # The watermark spans calls: a growth whose epoch does not clear
        # every epoch previously observed re-used a stamp (section 4.1).
        floor = max(old_epoch, self._max_geometry_epoch)
        if new_epoch <= floor:
            self.flag(
                "geometry-epoch",
                "volume",
                f"geometry epoch did not advance past {floor}: "
                f"{old_epoch} -> {new_epoch}",
            )
        self._max_geometry_epoch = max(floor, new_epoch)

    # ------------------------------------------------------------------
    # Hook: replicas
    # ------------------------------------------------------------------
    def on_replica_view(
        self, owner: str, read_point: int, writer_vdl_seen: int
    ) -> None:
        self._record(
            f"replica-view {owner} read_point={read_point} "
            f"vdl_seen={writer_vdl_seen}"
        )
        if read_point > writer_vdl_seen:
            self.flag(
                "replica-read-above-vdl",
                owner,
                f"read view anchored at {read_point} above the writer's "
                f"advertised VDL {writer_vdl_seen}",
            )

    def on_replica_apply(
        self, owner: str, applied_vdl: int, writer_vdl_seen: int
    ) -> None:
        self._record(
            f"replica-apply {owner} applied={applied_vdl} "
            f"vdl_seen={writer_vdl_seen}"
        )
        if applied_vdl > writer_vdl_seen:
            self.flag(
                "replica-apply-above-vdl",
                owner,
                f"applied redo to {applied_vdl} above the writer's "
                f"advertised VDL {writer_vdl_seen}",
            )

    # ------------------------------------------------------------------
    # Hook: lifecycle
    # ------------------------------------------------------------------
    def on_instance_crash(self, owner: str) -> None:
        """A database instance crashed: its in-memory trackers restart, so
        per-generation watermarks reset.  Durable facts are kept."""
        self._record(f"instance-crash {owner}")
        self._vcl.pop(owner, None)
        self._vdl.pop(owner, None)
        for key in [k for k in self._pgcl if k[0] == owner]:
            del self._pgcl[key]

    # ------------------------------------------------------------------
    # Hook: writer generations (failover invariants)
    # ------------------------------------------------------------------
    def on_writer_open(self, owner: str, volume_epoch: int) -> None:
        """A writer opened for business at ``volume_epoch``.

        Two invariants:

        - **writer-single-per-epoch**: at most one live writer per volume
          epoch.  A zombie predecessor still open at an *older* epoch is
          legal (that is what the fence is for); two writers open at the
          same epoch means fencing failed.
        - **writer-epoch-regressed**: each successive writer generation
          must open at a strictly higher volume epoch than any before it
          (bootstrap excepted); otherwise its recovery failed to change
          the locks.
        """
        self._record(f"writer-open {owner} volume-epoch={volume_epoch}")
        for other, other_epoch in self._open_writers.items():
            if other != owner and other_epoch == volume_epoch:
                self.flag(
                    "writer-single-per-epoch",
                    owner,
                    f"opened at volume epoch {volume_epoch} while "
                    f"{other} is still open at the same epoch",
                )
        if self._max_writer_epoch and volume_epoch <= self._max_writer_epoch:
            self.flag(
                "writer-epoch-regressed",
                owner,
                f"opened at volume epoch {volume_epoch}, but a writer "
                f"has already opened at epoch {self._max_writer_epoch}",
            )
        self._open_writers[owner] = volume_epoch
        self._max_writer_epoch = max(self._max_writer_epoch, volume_epoch)

    def on_writer_close(self, owner: str) -> None:
        """A writer crashed, was fenced, or retired: no longer live."""
        self._record(f"writer-close {owner}")
        self._open_writers.pop(owner, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Auditor events={self.events_seen} "
            f"violations={len(self.violations)}>"
        )


def format_violations(violations: Iterable[AuditViolation]) -> str:
    return "\n".join(str(v) for v in violations)
