"""Chaos-driven audit runs: workload + seeded faults + armed auditor.

:func:`run_audit` builds a small cluster, arms an
:class:`~repro.audit.auditor.Auditor` on every protocol component, installs
a seeded :class:`~repro.sim.chaos.ChaosSchedule`, and drives a mixed
read/write workload (including writer crash/recovery cycles and a
membership change) through the turbulence.  The result is an
:class:`AuditReport`: zero violations means every safety invariant held on
every state transition of the run.

On top of the protocol-level invariants, the runner keeps a client-side
model of acknowledged commits and flags ``client-read-consistency`` when a
read returns a value that was never possibly committed, or loses a value
whose commit was acknowledged -- the end-to-end "no committed write lost"
check of section 3.3, observed from the client's chair.

Everything is reproducible from the seed: the cluster build, the chaos
schedule, and the workload all derive their randomness from it.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.audit.auditor import Auditor, AuditViolation
from repro.db.cluster import AuroraCluster, ClusterConfig
from repro.db.instance import InstanceState
from repro.errors import (
    LockConflictError,
    MembershipError,
    ReproError,
    SimulationError,
)
from repro.repair.failover import FailoverSummary
from repro.repair.metrics import ROLLED_BACK, RepairSummary
from repro.sim.chaos import ChaosConfig, ChaosSchedule, fleet_chaos_config


@dataclass
class AuditRunConfig:
    """Shape of one audit run (everything derives from ``seed``)."""

    seed: int = 7
    steps: int = 1000
    replicas: int = 1
    keys: int = 24
    tail_size: int = 48
    #: Simulated ms allowed per client operation before it is counted as
    #: an availability error (chaos makes timeouts normal, not fatal).
    op_timeout_ms: float = 2500.0
    #: Crash + recover the writer every N steps (0 = derived from steps).
    writer_crash_every: int = 0
    #: Run a live segment replacement mid-run (skipped on tiny runs).
    membership_change: bool = True
    #: Arm the self-healing control plane (health monitor + repair
    #: planner).  With healing on, the mid-run membership change becomes a
    #: *permanent* segment crash that the healer must detect and repair.
    heal: bool = True
    #: Stochastic MTTF/MTTR background node failures on top of the chaos
    #: schedule (the fleet-wide churn the healer runs against).
    background_failures: bool = True
    background_mttf_ms: float = 3500.0
    background_mttr_ms: float = 150.0
    #: Plant a false-positive repair mid-run: isolate a healthy segment
    #: until it is confirmed dead, then let it return mid-hydration and
    #: require the planner to roll the transition back (skipped on tiny
    #: runs or when healing is off).
    plant_false_positive: bool = True
    #: Protection groups in the simulated volume (fleet mode raises this
    #: so many per-PG repairs can run concurrently).
    pg_count: int = 1
    #: Fleet storm: permanently kill one segment in each of this many
    #: *distinct* non-zero PGs mid-run; the healer must repair them all
    #: concurrently (per-PG serialization allows cross-PG concurrency).
    fleet_kills: int = 0
    #: Also kill a second member of the first storm PG shortly after, so
    #: the sweep exercises same-PG queueing under fleet load.
    fleet_double_fault: bool = False
    #: Use the correlated-AZ-burst chaos profile (see
    #: :func:`repro.sim.chaos.fleet_chaos_config`).
    az_bursts: bool = False
    #: Fail the run unless this many repairs were observed in flight at
    #: once (0 disables the gate).
    min_concurrent_repairs: int = 0
    #: Modeled baseline bulk-copy time per repair (see
    #: :attr:`repro.repair.RepairConfig.baseline_transfer_ms`).  Fleet
    #: mode sets this so repair duration is realistic relative to the
    #: detection spread -- in the real system the ~10GB segment copy
    #: dominates the window, which is exactly why simultaneous failures
    #: produce many overlapping repairs.
    repair_transfer_ms: float = 0.0
    #: Database-tier failover: arm the DbHealthMonitor +
    #: FailoverCoordinator, run the workload through a failover-aware
    #: cluster session, and replace operator-driven writer recovery with
    #: chaos writer kills (and grey failures) the coordinator must answer
    #: autonomously.
    failover: bool = False
    #: Chaos periods for writer kills / grey failures (0 = none; only
    #: meaningful with ``failover``).
    writer_kill_period_ms: float = 0.0
    writer_grey_period_ms: float = 0.0
    #: End-to-end write-unavailability budget per failover (ms); the run
    #: fails if any terminal failover exceeds it.
    failover_budget_ms: float = 30_000.0
    #: Arm per-payload-type network accounting.  Off by default: audit
    #: sweeps only need the aggregate counters, and the lite mode skips a
    #: Counter update per simulated message on the hottest path.  The
    #: engine benchmark arms it to measure batching ratios.
    detailed_stats: bool = False
    #: Write-path batching mode: "aurora" (boxcar batching, the default)
    #: or "immediate" (one WriteBatch per record, replication unframed).
    #: "immediate" exists for the perf harness, which measures the fast
    #: path against an unbatched run of the same workload.
    boxcar: str = "aurora"
    #: Group-commit policy for the writer's driver (see
    #: :data:`repro.db.driver.GROUP_COMMIT_POLICIES`).  Audit sweeps run
    #: with "adaptive" in CI to prove the derived window keeps every
    #: invariant; "fixed" stays the default for bit-compatible baselines.
    group_commit: str = "fixed"
    #: Geo-replicated disaster-recovery mode: build a two-region
    #: :class:`repro.geo.GeoCluster`, run the workload through a
    #: region-aware session, inject exactly one terminal region event
    #: (region loss or region partition) plus WAN degradation, and gate
    #: on the audited RPO/RTO objectives.
    geo: bool = False
    #: Commit acknowledgement mode for geo runs: "sync", "async", or
    #: "auto" (sync for even seeds, async for odd, so a sweep covers
    #: both RPO regimes deterministically).
    geo_ack_mode: str = "auto"
    #: Region-loss recovery budget (ms): detection + lease + promotion.
    geo_rto_budget_ms: float = 30_000.0
    #: Serving-tier proxy mode: front a replica'd cluster with a
    #: :class:`repro.db.proxy.ConnectionProxy`, drive ``proxy_sessions``
    #: logical sessions through one writer kill, and gate on zero
    #: acked-commit loss, zero read-your-writes violations, every session
    #: recovering inside ``proxy_recovery_budget_ms``, and steady-state
    #: replica time lag p95 under ``proxy_lag_slo_ms``.
    proxy: bool = False
    proxy_sessions: int = 100_000
    proxy_pool: int = 128
    proxy_recovery_budget_ms: float = 5_000.0
    proxy_lag_slo_ms: float = 10.0
    #: End-to-end integrity mode: inject silent corruption (bit rot, torn
    #: writes, lost-but-acked writes, misdirected writes) via the
    #: integrity chaos profile and gate on zero corrupt reads served plus
    #: every corruption repaired inside ``integrity_repair_budget_ms``
    #: (see DESIGN.md section 12).
    integrity: bool = False
    #: Storage backend for the cluster under audit ("aurora" or "taurus");
    #: currently plumbed by the integrity mode, which must prove the
    #: verification machinery on both layouts.
    backend: str = "aurora"
    #: Injection-to-repair budget per corruption (ms).
    integrity_repair_budget_ms: float = 12_000.0

    def as_proxy(self) -> "AuditRunConfig":
        """Switch this config to the serving-tier shape.  The storage
        control planes stay off (they have their own gates): the single
        writer kill is the disaster under test, and the replica fleet
        plus the failover coordinator are what the proxy rides on."""
        self.proxy = True
        self.heal = False
        self.membership_change = False
        self.plant_false_positive = False
        self.background_failures = False
        self.fleet_kills = 0
        self.fleet_double_fault = False
        self.az_bursts = False
        self.geo = False
        self.failover = True
        self.replicas = max(self.replicas, 3)
        return self

    def as_geo(self) -> "AuditRunConfig":
        """Switch this config to the geo disaster-recovery shape.  The
        intra-region control planes (healer, planted false positives,
        fleet storms, writer failover) stay off: the region event is the
        correlated disaster under test, and the geo chaos profile keeps
        only light intra-primary noise plus WAN degradation."""
        self.geo = True
        self.heal = False
        self.membership_change = False
        self.plant_false_positive = False
        self.background_failures = False
        self.failover = False
        self.fleet_kills = 0
        self.fleet_double_fault = False
        self.az_bursts = False
        self.replicas = 0
        return self

    def as_fleet(self) -> "AuditRunConfig":
        """Switch this config to the fleet-scale shape: a 10-PG volume,
        a 9-PG kill storm with a same-PG double fault, correlated AZ
        bursts, the >= 8 concurrent-repair gate, and autonomous writer
        failover under writer-kill + writer-grey chaos."""
        self.pg_count = max(self.pg_count, 10)
        self.fleet_kills = max(self.fleet_kills, 9)
        self.fleet_double_fault = True
        self.az_bursts = True
        self.min_concurrent_repairs = max(self.min_concurrent_repairs, 8)
        self.repair_transfer_ms = max(self.repair_transfer_ms, 750.0)
        self.failover = True
        self.replicas = max(self.replicas, 2)
        self.writer_kill_period_ms = max(
            self.writer_kill_period_ms, 6000.0
        )
        self.writer_grey_period_ms = max(
            self.writer_grey_period_ms, 5000.0
        )
        return self

    def as_integrity(self) -> "AuditRunConfig":
        """Switch this config to the integrity-audit shape.  The fail-stop
        control planes (healer, failover, planted false positives, fleet
        storms, background churn) stay off: they answer *loud* failures,
        and their own gates already cover them.  What remains is exactly
        the silent-failure machinery under test -- read-time verification,
        scrub, and quorum-vote repair -- under corruption chaos plus light
        crash/partition noise.  Operator-driven writer crash cycles are
        pushed out past the horizon so torn-write restarts are the only
        instance churn."""
        self.integrity = True
        self.heal = False
        self.membership_change = False
        self.plant_false_positive = False
        self.background_failures = False
        self.failover = False
        self.fleet_kills = 0
        self.fleet_double_fault = False
        self.az_bursts = False
        self.geo = False
        self.proxy = False
        self.writer_crash_every = 10**9
        return self


@dataclass
class AuditReport:
    """Outcome of one audit run."""

    seed: int
    steps: int
    sim_time_ms: float
    chaos_events: int
    commit_acks: int
    availability_errors: int
    writer_recoveries: int
    protocol_events: int
    violations: list[AuditViolation] = field(default_factory=list)
    event_tail: list[str] = field(default_factory=list)
    #: Self-healing telemetry (None when the healer was not armed).
    repairs: RepairSummary | None = None
    health_counters: dict = field(default_factory=dict)
    #: Confirmed-dead segments left unrepaired at run end (active or
    #: stalled records, or a PG still in a dual membership).
    unrepaired: int = 0
    #: Planted false positive: None = not planted, True = the transition
    #: rolled back as required, False = it did not.
    planted_rollback_ok: bool | None = None
    #: Fleet storm bookkeeping: segments permanently killed by the storm,
    #: and the concurrency gate (None = gate off).
    fleet_kills: int = 0
    concurrency_ok: bool | None = None
    #: Failover telemetry (None when the coordinator was not armed), the
    #: number of chaos writer kills, and the budget gate: every terminal
    #: failover resolved, with its write-unavailability window inside the
    #: configured budget (None = failover off).
    failovers: FailoverSummary | None = None
    writer_kills: int = 0
    failover_ok: bool | None = None
    #: Geo disaster-recovery telemetry (empty/None when ``geo`` is off):
    #: the terminal region records (picklable, so sweeps can merge the
    #: RPO/RTO distributions across seeds), the ack mode this run used,
    #: the single-run RPO/RTO report, and the gate -- promotion reached a
    #: terminal PROMOTED outcome with its RTO inside the budget (loss
    #: and fencing violations surface through the auditors).
    geo_records: list = field(default_factory=list)
    geo_ack_mode: str = ""
    geo_rpo_rto: object | None = None
    geo_ok: bool | None = None
    #: Serving-tier telemetry (None when ``proxy`` is off): the
    #: :class:`repro.analysis.serving.ServingReport` (picklable, so
    #: sweeps can merge recovery/lag distributions across seeds), the
    #: logical session count, and the gate -- a promotion happened, no
    #: acked write was lost, no read-your-writes violation, every
    #: session outage inside the recovery budget, lag p95 inside the SLO.
    serving: object | None = None
    proxy_sessions: int = 0
    proxy_ok: bool | None = None
    #: Integrity telemetry (None when ``integrity`` is off): the
    #: :class:`repro.analysis.integrity.IntegrityReport` (picklable, so
    #: sweeps can merge MTTD/MTTR/exposure distributions across seeds),
    #: the storage backend audited, and the gate -- at least one
    #: corruption injected, zero corrupt reads served, every corruption
    #: repaired inside budget, zero auditor violations.
    integrity: object | None = None
    backend: str = ""
    integrity_ok: bool | None = None
    #: Engine telemetry for the perf harness (`repro bench-engine`).
    events_executed: int = 0
    messages_sent: int = 0
    wall_clock_s: float = 0.0
    #: Per-payload-type message counts (only when ``detailed_stats``).
    message_types: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            not self.violations
            and self.unrepaired == 0
            and self.planted_rollback_ok is not False
            and self.concurrency_ok is not False
            and self.failover_ok is not False
            and self.geo_ok is not False
            and self.proxy_ok is not False
            and self.integrity_ok is not False
        )

    def render(self) -> str:
        lines = [
            f"audit run: seed={self.seed} steps={self.steps} "
            f"sim_time={self.sim_time_ms:.0f}ms",
            f"  chaos events:        {self.chaos_events}",
            f"  commit acks:         {self.commit_acks}",
            f"  writer recoveries:   {self.writer_recoveries}",
            f"  availability errors: {self.availability_errors}",
            f"  protocol events:     {self.protocol_events}",
            f"  violations:          {len(self.violations)}",
        ]
        if self.repairs is not None:
            lines += self.repairs.render_lines()
            lines.append(
                f"  health verdicts:     "
                f"suspected={self.health_counters.get('suspected', 0)} "
                f"confirmed={self.health_counters.get('confirmed_dead', 0)} "
                f"false_pos={self.health_counters.get('false_positives', 0)}"
            )
            if self.unrepaired:
                lines.append(
                    f"  UNREPAIRED segments: {self.unrepaired}"
                )
            if self.planted_rollback_ok is not None:
                verdict = "ok" if self.planted_rollback_ok else "FAILED"
                lines.append(
                    f"  planted false pos:   rollback {verdict}"
                )
            if self.fleet_kills:
                lines.append(
                    f"  fleet storm:         {self.fleet_kills} segments "
                    f"killed across distinct PGs"
                )
            if self.concurrency_ok is not None:
                verdict = "ok" if self.concurrency_ok else "FAILED"
                lines.append(
                    f"  concurrency gate:    {verdict} "
                    f"(peak {self.repairs.peak_concurrent})"
                )
        if self.failovers is not None:
            lines.append(f"  writer kills:        {self.writer_kills}")
            lines += self.failovers.render_lines()
            if self.failover_ok is not None:
                verdict = "ok" if self.failover_ok else "FAILED"
                lines.append(f"  failover gate:       {verdict}")
        if self.geo_ok is not None:
            from repro.geo import summarize_geo_failovers

            lines.append(f"  geo ack mode:        {self.geo_ack_mode}")
            lines += summarize_geo_failovers(self.geo_records).render_lines()
            if self.geo_rpo_rto is not None:
                lines += self.geo_rpo_rto.render_lines()
            verdict = "ok" if self.geo_ok else "FAILED"
            lines.append(f"  geo DR gate:         {verdict}")
        if self.proxy_ok is not None:
            # The failover telemetry above already covered the kill; add
            # the client-edge view.
            if self.serving is not None:
                lines += self.serving.render_lines()
            verdict = "ok" if self.proxy_ok else "FAILED"
            lines.append(f"  proxy gate:          {verdict}")
        if self.integrity_ok is not None:
            lines.append(f"  storage backend:     {self.backend}")
            if self.integrity is not None:
                lines += self.integrity.render_lines()
            verdict = "ok" if self.integrity_ok else "FAILED"
            lines.append(f"  integrity gate:      {verdict}")
        if self.violations:
            lines.append("")
            lines.append(f"VIOLATIONS (reproduce with --seed {self.seed}):")
            for violation in self.violations:
                lines.append(f"  {violation.invariant}: {violation.subject}")
                lines.append(f"    {violation.detail}")
            lines.append("")
            lines.append("event log tail:")
            for event in self.event_tail:
                lines.append(f"  {event}")
        return "\n".join(lines)


def run_audit(config: AuditRunConfig | None = None) -> AuditReport:
    """Run a seeded chaos workload with the invariant auditor armed."""
    cfg = config if config is not None else AuditRunConfig()
    wall_start = time.perf_counter()
    if cfg.geo:
        return _run_geo_audit(cfg, wall_start)
    if cfg.proxy:
        return _run_proxy_audit(cfg, wall_start)
    if cfg.integrity:
        return _run_integrity_audit(cfg, wall_start)
    cluster_cfg = ClusterConfig(seed=cfg.seed, pg_count=cfg.pg_count)
    if cfg.boxcar == "immediate":
        from repro.db.driver import BoxcarMode

        cluster_cfg.instance.driver.boxcar_mode = BoxcarMode.IMMEDIATE
    cluster_cfg.instance.driver.group_commit = cfg.group_commit
    cluster = AuroraCluster.build(config=cluster_cfg, seed=cfg.seed)
    cluster.network.set_stats_detail(cfg.detailed_stats)
    auditor = Auditor(tail_size=cfg.tail_size)
    cluster.arm_auditor(auditor)
    if cfg.heal:
        from repro.repair import RepairConfig

        cluster.arm_healer(
            repair_config=RepairConfig(
                baseline_transfer_ms=cfg.repair_transfer_ms
            )
        )
    for _ in range(cfg.replicas):
        cluster.add_replica()
    if cfg.failover:
        cluster.arm_failover()
    cluster.run_for(10.0)  # let replicas settle before the storm

    horizon_ms = max(4000.0, cfg.steps * 4.0)
    chaos_cfg = fleet_chaos_config() if cfg.az_bursts else None
    if cfg.failover and (
        cfg.writer_kill_period_ms > 0 or cfg.writer_grey_period_ms > 0
    ):
        chaos_cfg = chaos_cfg if chaos_cfg is not None else ChaosConfig()
        chaos_cfg.writer_kill_period_ms = cfg.writer_kill_period_ms
        chaos_cfg.writer_grey_period_ms = cfg.writer_grey_period_ms
    schedule = ChaosSchedule.generate(
        seed=cfg.seed,
        nodes=sorted(cluster.nodes),
        azs={az: cluster.failures.az_nodes(az)
             for az in ("az1", "az2", "az3")},
        horizon_ms=horizon_ms,
        config=chaos_cfg,
    )
    runner = _WorkloadRunner(cluster, auditor, cfg)
    runner.chaos_horizon_ms = cluster.loop.now + horizon_ms
    schedule.install(
        cluster.failures,
        writer_kill=runner.kill_writer if cfg.failover else None,
        writer_grey=runner.grey_writer if cfg.failover else None,
    )
    if cfg.background_failures:
        cluster.failures.enable_background_failures(
            sorted(cluster.nodes),
            mttf_ms=cfg.background_mttf_ms,
            mttr_ms=cfg.background_mttr_ms,
            horizon_ms=cluster.loop.now + horizon_ms,
        )

    runner.run()

    failovers = None
    failover_ok = None
    if cfg.failover:
        runner.settle_failover()
        failovers = cluster.failover.summary()
        failover_ok = runner.failover_gate()
    repairs = None
    health_counters: dict = {}
    unrepaired = 0
    concurrency_ok = None
    if cfg.heal:
        runner.settle_repairs()
        repairs = cluster.healer.summary()
        health_counters = dict(cluster.health.counters)
        unrepaired = _count_unrepaired(cluster)
        if cfg.min_concurrent_repairs > 0:
            concurrency_ok = (
                repairs.peak_concurrent >= cfg.min_concurrent_repairs
            )

    return AuditReport(
        seed=cfg.seed,
        steps=cfg.steps,
        sim_time_ms=cluster.loop.now,
        chaos_events=len(schedule),
        commit_acks=auditor.commit_acks,
        availability_errors=runner.availability_errors,
        writer_recoveries=runner.recoveries,
        protocol_events=auditor.events_seen,
        violations=list(auditor.violations),
        event_tail=auditor.event_tail,
        repairs=repairs,
        health_counters=health_counters,
        unrepaired=unrepaired,
        planted_rollback_ok=runner.planted_rollback_ok,
        fleet_kills=len(runner.fleet_killed),
        concurrency_ok=concurrency_ok,
        failovers=failovers,
        writer_kills=runner.writer_kills,
        failover_ok=failover_ok,
        events_executed=cluster.loop.events_executed,
        messages_sent=cluster.network.stats.messages_sent,
        wall_clock_s=time.perf_counter() - wall_start,
        message_types=dict(cluster.network.stats.by_type),
    )


def _run_integrity_audit(
    cfg: AuditRunConfig, wall_start: float
) -> AuditReport:
    """End-to-end integrity audit: silent corruption under a live workload.

    The integrity chaos profile injects disk bit rot (stored block
    versions and redo records), torn writes surfacing at crash restart,
    lost-but-acked writes, and misdirected writes, on top of light node
    crash / partition noise, while the mixed workload keeps reading and
    writing.  The machinery of DESIGN.md section 12 -- read-time
    verification with quarantine + peer read-repair, record scrub, and
    the rotating quorum-vote sweep -- must find and repair every
    injection.  The gate: at least one corruption injected, zero corrupt
    reads served (``integrity-corrupt-served``), zero repairs sourced
    from a corrupt peer copy (``integrity-repair-propagated-corruption``),
    and every corruption's injection-to-repair exposure inside
    ``cfg.integrity_repair_budget_ms`` (``integrity-unrepaired-past-
    budget``).  Runs on either storage backend via ``cfg.backend``.
    """
    from repro.analysis.integrity import integrity_report
    from repro.sim.chaos import integrity_chaos_config
    from repro.storage.node import StorageNodeConfig

    # A fast scrub rotation: the audit horizon is seconds, not hours, so
    # the sweep must cover the whole segment well inside it (the repair
    # budget assumes roughly two rotations' worth of detection latency).
    node_cfg = StorageNodeConfig(scrub_interval=400.0)
    cluster_cfg = ClusterConfig(
        seed=cfg.seed,
        pg_count=cfg.pg_count,
        backend=cfg.backend,
        node=node_cfg,
    )
    cluster_cfg.instance.driver.group_commit = cfg.group_commit
    cluster = AuroraCluster.build(config=cluster_cfg, seed=cfg.seed)
    cluster.network.set_stats_detail(cfg.detailed_stats)
    auditor = Auditor(tail_size=cfg.tail_size)
    cluster.arm_auditor(auditor)
    for _ in range(cfg.replicas):
        cluster.add_replica()
    integrity = cluster.failures.integrity
    integrity.bind_auditor(auditor)
    cluster.failures.attach_storage(cluster.nodes.values())
    # GC, truncation, and restores can destroy corrupt bytes without the
    # repair hooks firing; the periodic reconcile closes those entries so
    # the unrepaired gate only counts damage that is actually still live.
    cluster.failures.start_integrity_reconcile()
    cluster.run_for(10.0)

    horizon_ms = max(6000.0, cfg.steps * 4.0)
    schedule = ChaosSchedule.generate(
        seed=cfg.seed,
        nodes=sorted(cluster.nodes),
        azs={az: cluster.failures.az_nodes(az)
             for az in ("az1", "az2", "az3")},
        horizon_ms=horizon_ms,
        config=integrity_chaos_config(),
    )
    runner = _WorkloadRunner(cluster, auditor, cfg)
    runner.chaos_horizon_ms = cluster.loop.now + horizon_ms
    schedule.install(cluster.failures)

    runner.run()

    # Run the chaos horizon out (late injections must still land), then
    # keep the fleet scrubbing -- with light keepalive traffic so SCLs
    # and gossip keep advancing -- until every open corruption closes.
    while cluster.loop.now < runner.chaos_horizon_ms:
        cluster.run_for(50.0)
    if not integrity.by_kind():
        # Non-vacuity backstop: a schedule whose draws all missed (no
        # eligible victim at fire time -- a caught-up fleet has nothing
        # above its GC floors) would let the gate pass without exercising
        # anything.  Write fresh records, then land one corruption
        # deterministically before settling.
        injectors = (
            cluster.failures.bit_rot_any,
            cluster.failures.lost_write_any,
            cluster.failures.misdirected_write_any,
        )
        for attempt in range(30):
            # Inject right after the write lands, before the next PGMRPL
            # update hoists the GC floor over the fresh records and
            # closes the eligibility window again.
            runner._keepalive(attempt)
            if injectors[attempt % len(injectors)]() is not None:
                cluster.run_for(60.0)
                break
            cluster.run_for(60.0)
    for spin in range(4000):
        if integrity.open_count() == 0:
            break
        cluster.run_for(25.0)
        if spin % 40 == 0:
            runner._keepalive(spin)
    cluster.run_for(200.0)
    runner._harvest_pending()
    integrity.audit_unrepaired(cfg.integrity_repair_budget_ms)

    def summed(counter: str) -> int:
        return sum(n.counters[counter] for n in cluster.nodes.values())

    report = integrity_report(
        backend=cfg.backend,
        by_kind=integrity.by_kind(),
        mttd_samples_ms=integrity.mttd_samples(),
        mttr_samples_ms=integrity.mttr_samples(),
        exposure_samples_ms=integrity.exposure_samples(),
        reads_intercepted=summed("reads_intercepted"),
        versions_quarantined=sum(
            n.segment.stats["versions_quarantined"]
            for n in cluster.nodes.values()
        ),
        ingest_rejects=summed("ingest_rejects"),
        vote_rounds=summed("vote_rounds"),
        vote_repairs=summed("vote_repairs"),
        scrub_runs=summed("scrub_runs"),
        corrupt_reads_served=integrity.corrupt_reads_served,
        repair_budget_ms=cfg.integrity_repair_budget_ms,
    )
    integrity_ok = (
        report.ok
        # The gate must not pass vacuously: the schedule has to have
        # actually landed corruption for the machinery to answer.
        and report.injected >= 1
        and not auditor.violations
    )

    return AuditReport(
        seed=cfg.seed,
        steps=cfg.steps,
        sim_time_ms=cluster.loop.now,
        chaos_events=len(schedule),
        commit_acks=auditor.commit_acks,
        availability_errors=runner.availability_errors,
        writer_recoveries=runner.recoveries,
        protocol_events=auditor.events_seen,
        violations=list(auditor.violations),
        event_tail=auditor.event_tail,
        integrity=report,
        backend=cfg.backend,
        integrity_ok=integrity_ok,
        events_executed=cluster.loop.events_executed,
        messages_sent=cluster.network.stats.messages_sent,
        wall_clock_s=time.perf_counter() - wall_start,
        message_types=dict(cluster.network.stats.by_type),
    )


def _run_proxy_audit(cfg: AuditRunConfig, wall_start: float) -> AuditReport:
    """Serving-tier audit: >=100k logical sessions through a writer kill.

    A replica'd cluster with the failover plane armed is fronted by a
    :class:`repro.db.proxy.ConnectionProxy`; a
    :class:`repro.workloads.sessions.SessionScaleWorkload` drives
    ``cfg.proxy_sessions`` logical sessions (closed loop, think times
    that dwarf the horizon) while exactly one deterministic writer kill
    lands mid-horizon.  The workload flags ``proxy-read-your-writes``
    and ``proxy-read-consistency`` violations live; after the failover
    settles, :meth:`~repro.workloads.sessions.SessionScaleWorkload.
    reconcile` re-reads every acknowledged private write and flags any
    loss as ``proxy-acked-write-loss``.  The gate additionally requires
    the kill to have produced a promotion, every session outage inside
    the recovery budget, and steady-state replica time lag p95 inside
    the SLO.
    """
    from repro.analysis.serving import serving_report
    from repro.db.proxy import ConnectionProxy, ProxyConfig
    from repro.repair import PROMOTED
    from repro.workloads.sessions import (
        SessionScaleConfig,
        SessionScaleWorkload,
    )

    cluster_cfg = ClusterConfig(seed=cfg.seed, pg_count=cfg.pg_count)
    cluster_cfg.instance.driver.group_commit = cfg.group_commit
    cluster = AuroraCluster.build(config=cluster_cfg, seed=cfg.seed)
    cluster.network.set_stats_detail(cfg.detailed_stats)
    auditor = Auditor(tail_size=cfg.tail_size)
    cluster.arm_auditor(auditor)
    for _ in range(cfg.replicas):
        cluster.add_replica()
    cluster.arm_failover()
    cluster.run_for(200.0)  # replicas attach and catch up

    horizon_ms = max(12_000.0, cfg.steps * 40.0)
    proxy = ConnectionProxy(
        cluster,
        ProxyConfig(
            pool_size=cfg.proxy_pool,
            lag_slo_ms=cfg.proxy_lag_slo_ms,
            recovery_budget_ms=cfg.proxy_recovery_budget_ms,
        ),
    )
    workload = SessionScaleWorkload(
        proxy,
        SessionScaleConfig(
            sessions=cfg.proxy_sessions,
            horizon_ms=horizon_ms,
            think_ms=max(60_000.0, horizon_ms * 6.0),
            seed=cfg.seed,
        ),
        flag=auditor.flag,
    )

    # Exactly one writer kill, at a seed-derived point mid-horizon (away
    # from the edges so both the pre-kill steady state and the post-kill
    # recovery are observed inside the horizon).
    rng = random.Random(cfg.seed * 104_729 + 7)
    kill_at = cluster.loop.now + horizon_ms * (0.35 + 0.3 * rng.random())
    kills: list[float] = []

    def kill_writer() -> None:
        writer = cluster.writer
        if writer is None or cluster.failover_in_progress:
            return
        kills.append(cluster.loop.now)
        name = writer.name
        writer.crash()
        cluster.network.fail_node(name)

    cluster.loop.schedule(kill_at - cluster.loop.now, kill_writer)

    workload.run()

    # Let the failover plane drain before judging loss.
    for _spin in range(4000):
        writer = cluster.writer
        if (
            cluster.failover.idle
            and not cluster.failover_in_progress
            and writer is not None
            and writer.state is InstanceState.OPEN
        ):
            break
        cluster.run_for(25.0)
    cluster.run_for(200.0)
    workload.reconcile()

    stats = workload.stats
    promoted = [
        r for r in cluster.failover.records if r.outcome == PROMOTED
    ]
    serving = serving_report(
        sessions=cfg.proxy_sessions,
        ops=stats.ops_completed,
        recovery_samples_ms=proxy.stats.recovery_samples,
        lag_samples_ms=proxy.lag.samples,
        replica_reads=proxy.stats.replica_reads,
        writer_reads=proxy.stats.writer_reads,
        floor_exclusions=proxy.stats.floor_exclusions,
        pool_waits=proxy.stats.pool_waits,
        ryw_violations=stats.ryw_violations,
        lost_acked_writes=stats.lost_acked_writes,
        recovery_budget_s=cfg.proxy_recovery_budget_ms / 1000.0,
        lag_slo_ms=cfg.proxy_lag_slo_ms,
    )
    proxy_ok = (
        serving.ok
        and len(kills) == 1
        and len(promoted) == 1
        # The kill must actually have been *observed* at the client edge
        # -- otherwise the recovery gate would pass vacuously.
        and len(proxy.stats.recovery_samples) > 0
        and not auditor.violations
    )

    return AuditReport(
        seed=cfg.seed,
        steps=cfg.steps,
        sim_time_ms=cluster.loop.now,
        chaos_events=len(kills),
        commit_acks=auditor.commit_acks,
        availability_errors=stats.errors,
        writer_recoveries=len(promoted),
        protocol_events=auditor.events_seen,
        violations=list(auditor.violations),
        event_tail=auditor.event_tail,
        failovers=cluster.failover.summary(),
        writer_kills=len(kills),
        serving=serving,
        proxy_sessions=cfg.proxy_sessions,
        proxy_ok=proxy_ok,
        events_executed=cluster.loop.events_executed,
        messages_sent=cluster.network.stats.messages_sent,
        wall_clock_s=time.perf_counter() - wall_start,
        message_types=dict(cluster.network.stats.by_type),
    )


def _run_geo_audit(cfg: AuditRunConfig, wall_start: float) -> AuditReport:
    """Geo disaster-recovery audit: two regions, lossy WAN, one terminal
    region event, audited RPO/RTO gates.

    The run drives a keyed workload through a region-failover-aware
    session while the geo chaos profile degrades the WAN and eventually
    destroys (or partitions away) the primary region.  At promotion the
    runner reconciles its client-side model of acknowledged commits
    against the promoted region: a sync-acked commit the secondary does
    not serve flags ``geo-sync-commit-loss``; an async loss inside the
    applied replication frontier flags ``geo-rpo-exceeds-lag``.  The
    measured RPO/RTO land on the promotion record for
    :mod:`repro.analysis.rpo_rto`.
    """
    from repro.analysis.rpo_rto import rpo_rto_from_records
    from repro.errors import ConfigurationError
    from repro.geo import GEO_TERMINAL, PROMOTED, SYNC, GeoCluster, GeoConfig
    from repro.sim.chaos import geo_chaos_config

    ack_mode = cfg.geo_ack_mode
    if ack_mode == "auto":
        # Deterministic coverage of both RPO regimes across a sweep.
        ack_mode = SYNC if cfg.seed % 2 == 0 else "async"
    geo = GeoCluster.build(
        GeoConfig(
            seed=cfg.seed,
            pg_count=cfg.pg_count,
            ack_mode=ack_mode,
            group_commit=cfg.group_commit,
        )
    )
    geo.network.set_stats_detail(cfg.detailed_stats)
    primary_auditor = Auditor(tail_size=cfg.tail_size)
    secondary_auditor = Auditor(tail_size=cfg.tail_size)
    geo.arm_auditors(primary_auditor, secondary_auditor)
    geo.arm_geo_failover()
    geo.run_for(10.0)

    horizon_ms = max(24_000.0, cfg.steps * 8.0)
    schedule = ChaosSchedule.generate(
        seed=cfg.seed,
        nodes=sorted(geo.primary.nodes),
        azs={az: geo.failures.az_nodes(az)
             for az in ("az1", "az2", "az3")},
        horizon_ms=horizon_ms,
        config=geo_chaos_config(),
    )
    runner = _GeoWorkloadRunner(geo, primary_auditor, cfg)
    runner.chaos_horizon_ms = geo.loop.now + horizon_ms
    schedule.install(
        geo.failures,
        region_loss=geo.lose_region,
        region_partition=runner.region_partition,
        wan_brownout=geo.wan_brownout,
        stream_stall=geo.stall_stream,
    )
    runner.run()
    runner.settle_geo()
    geo.check_fencing(primary_auditor)

    coordinator = geo.geo_failover
    promoted_records = [
        r for r in coordinator.records if r.outcome == PROMOTED
    ]
    geo_ok = (
        geo.promoted
        and len(promoted_records) == 1
        and all(r.outcome in GEO_TERMINAL for r in coordinator.records)
        and all(
            r.rto_ms is not None and r.rto_ms <= cfg.geo_rto_budget_ms
            for r in promoted_records
        )
        and runner.reconciled
    )
    try:
        rpo_rto = rpo_rto_from_records(
            coordinator.records, rto_budget_s=cfg.geo_rto_budget_ms / 1000.0
        )
    except ConfigurationError:
        rpo_rto = None  # nothing promoted; geo_ok is already False

    return AuditReport(
        seed=cfg.seed,
        steps=cfg.steps,
        sim_time_ms=geo.loop.now,
        chaos_events=len(schedule),
        commit_acks=primary_auditor.commit_acks
        + secondary_auditor.commit_acks,
        availability_errors=runner.availability_errors,
        writer_recoveries=sum(
            r.promotion_attempts for r in coordinator.records
        ),
        protocol_events=primary_auditor.events_seen
        + secondary_auditor.events_seen,
        violations=list(primary_auditor.violations)
        + list(secondary_auditor.violations),
        event_tail=primary_auditor.event_tail
        + secondary_auditor.event_tail,
        geo_records=list(coordinator.records),
        geo_ack_mode=ack_mode,
        geo_rpo_rto=rpo_rto,
        geo_ok=geo_ok,
        events_executed=geo.loop.events_executed,
        messages_sent=geo.network.stats.messages_sent,
        wall_clock_s=time.perf_counter() - wall_start,
        message_types=dict(geo.network.stats.by_type),
    )


class _GeoWorkloadRunner:
    """Drives the geo workload and reconciles acked commits at promotion."""

    def __init__(self, geo, primary_auditor: Auditor, cfg: AuditRunConfig):
        self.geo = geo
        self.primary_auditor = primary_auditor
        self.cfg = cfg
        self.rng = random.Random(cfg.seed * 7919 + 13)
        self.db = geo.session()
        self.availability_errors = 0
        self.chaos_horizon_ms = 0.0
        self.reconciled = False
        #: key -> [(acked_at, scn, value)] for every acknowledged
        #: auto-commit; value ``None`` records an acknowledged delete.
        self.acked_log: dict[str, list[tuple[float, int, object]]] = {}
        #: key -> every value that may be on disk (read-check model).
        self.history: dict[str, set] = {}
        #: keys with an uncertain commit outcome (timeout mid-retry);
        #: excluded from loss judgment -- their value set is ambiguous.
        self.tainted: set[str] = set()

    # ------------------------------------------------------------------
    def run(self) -> None:
        cfg = self.cfg
        # Pace the workload across the chaos horizon so writes are in
        # flight when the region event fires (ops themselves also burn
        # simulated time -- a sync commit costs a WAN round trip).
        pace = max(1.0, self.chaos_horizon_ms - self.geo.loop.now) / max(
            1, cfg.steps
        )
        for step in range(cfg.steps):
            self._maybe_reconcile()
            self._one_op(step)
            self.geo.run_for(self.rng.uniform(0.2, 1.8) * pace)
        self.geo.run_for(500.0)

    def settle_geo(self) -> None:
        """Run the chaos horizon out (the region event may fire late),
        wait for the terminal promotion, then reconcile."""
        geo = self.geo
        while geo.loop.now < self.chaos_horizon_ms:
            geo.run_for(50.0)
        for _spin in range(2000):
            if geo.promoted and geo.geo_failover.idle:
                break
            geo.run_for(25.0)
        geo.run_for(500.0)
        self._maybe_reconcile()

    def region_partition(self, duration_ms: float) -> None:
        """Chaos callback: split brain for ``duration_ms``, then heal.
        The heal is the interesting part -- the deposed primary comes
        back reachable and must stay fenced."""
        geo = self.geo
        geo.partition_regions()
        geo.loop.schedule(duration_ms, geo.heal_regions)

    # ------------------------------------------------------------------
    def _key(self) -> str:
        return f"k{self.rng.randrange(self.cfg.keys):03d}"

    def _one_op(self, step: int) -> None:
        roll = self.rng.random()
        key = self._key()
        try:
            if roll < 0.55:
                value = f"g{step}"
                # Record before driving: the value may land even if the
                # ack never arrives.
                self.history.setdefault(key, set()).add(value)
                scn = self.db.write(key, value)
                self._note_ack(key, scn, value)
            elif roll < 0.65:
                scn = self.db.remove(key)
                self._note_ack(key, scn, None)
            else:
                value = self.db.get(key)
                self._check_read(key, value)
        except SimulationError:
            self.tainted.add(key)
            self.availability_errors += 1
        except ReproError:
            self.tainted.add(key)
            self.availability_errors += 1

    def _note_ack(self, key: str, scn: int, value) -> None:
        self.acked_log.setdefault(key, []).append(
            (self.geo.loop.now, scn, value)
        )
        if value is not None:
            self.history.setdefault(key, set()).add(value)

    def _check_read(self, key: str, value) -> None:
        """Flag values that were never written.  ``None`` is never
        flagged here: after an async promotion a key's acked tail may be
        legitimately missing -- the reconciliation pass judges loss."""
        if value is None:
            return
        if value not in self.history.get(key, set()):
            self.primary_auditor.flag(
                "client-read-consistency",
                key,
                f"read returned {value!r}, which was never written "
                f"({len(self.history.get(key, set()))} known candidates)",
            )

    # ------------------------------------------------------------------
    def _maybe_reconcile(self) -> None:
        """At promotion, judge every pre-failure acknowledged commit
        against the promoted region (once, before new writes muddy it)."""
        from repro.geo import SYNC

        geo = self.geo
        if self.reconciled or not geo.promoted:
            return
        self.reconciled = True
        record = geo.promoted_record
        lost: list[tuple[float, int, str]] = []
        judged_acks: list[float] = []
        #: Acks provably covered by the applied replication frontier.
        #: Value-equality "survival" is NOT used for the recovery point:
        #: a lost delete whose key is also absent from the promoted
        #: region matches by coincidence and would understate the RPO.
        covered_acks: list[float] = []
        skipped = 0
        for key in sorted(self.acked_log):
            entries = self.acked_log[key]
            pre = [e for e in entries if e[0] < record.promoted_at]
            if not pre:
                continue
            if len(pre) != len(entries) or key in self.tainted:
                # Rewritten post-promotion (a write that blocked across
                # the failover re-applied on the new region), or an
                # uncertain outcome muddied the expected value set.
                skipped += 1
                continue
            acked_at, scn, value = pre[-1]
            try:
                current = self.db.get(key)
            except (SimulationError, ReproError):
                skipped += 1
                continue
            judged_acks.append(acked_at)
            if scn <= record.applied_vdl:
                covered_acks.append(acked_at)
            if current == value:
                continue
            lost.append((acked_at, scn, key))
            if geo.ack_mode == SYNC:
                self.primary_auditor.flag(
                    "geo-sync-commit-loss",
                    key,
                    f"sync-acked commit scn={scn} (acked at "
                    f"{acked_at:.1f}ms) missing after promotion: "
                    f"expected {value!r}, promoted region has {current!r}",
                )
            elif scn <= record.applied_vdl:
                self.primary_auditor.flag(
                    "geo-rpo-exceeds-lag",
                    key,
                    f"async loss of scn={scn} inside the applied "
                    f"replication frontier {record.applied_vdl}: "
                    f"expected {value!r}, promoted region has {current!r}",
                )
        record.lost_commits = len(lost)
        if lost:
            last_ack = max(judged_acks)
            recovery_point = max(covered_acks) if covered_acks else 0.0
            record.rpo_ms = max(0.0, last_ack - recovery_point)
        record.notes.append(
            f"reconciled {len(judged_acks)} key(s), skipped {skipped}, "
            f"lost {len(lost)}"
        )


def _run_audit_worker(config: AuditRunConfig) -> AuditReport:
    """Module-level worker so configs/reports pickle across processes."""
    return run_audit(config)


def effective_sweep_jobs(jobs: int, n_configs: int) -> int:
    """Worker processes a sweep will actually use.

    ``jobs`` is clamped to the machine's CPU count as well as the config
    count: forking more workers than cores buys nothing and the pool
    setup/pickling tax makes an oversubscribed "parallel" sweep *slower*
    than the sequential path (observed 6.18s vs 5.16s at ``--jobs 4`` on
    one core).  Anything at or below 1 means run sequentially in-process.
    """
    cores = os.cpu_count() or 1
    return min(jobs, n_configs, cores)


def run_audit_sweep(
    configs: Iterable[AuditRunConfig], jobs: int = 1
) -> list[AuditReport]:
    """Run many independent audit seeds, optionally across processes.

    Each seed derives every bit of randomness from its own config, so the
    runs are embarrassingly parallel: reports come back in input order and
    are byte-identical to what the sequential path produces.  ``jobs`` is
    a request, not a command: see :func:`effective_sweep_jobs`.
    """
    configs = list(configs)
    jobs = effective_sweep_jobs(jobs, len(configs))
    if jobs <= 1:
        return [run_audit(cfg) for cfg in configs]
    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(_run_audit_worker, configs)


def _count_unrepaired(cluster: AuroraCluster) -> int:
    """Confirmed failures the healer failed to resolve by run end:
    records still in flight, protection groups parked in a dual
    membership, and members the monitor still holds confirmed-dead.
    (A ``stalled`` record alone does not count: its retry record covers
    the same segment.)"""
    from repro.repair.health import SegmentHealth
    from repro.repair.metrics import ACTIVE

    open_records = sum(
        1 for r in cluster.healer.records if r.outcome == ACTIVE
    )
    unstable_pgs = sum(
        1
        for pg_index in cluster.metadata.pg_indexes()
        if not cluster.metadata.membership(pg_index).is_stable
    )
    dead_members = sum(
        1
        for pg_index in cluster.metadata.pg_indexes()
        for member in cluster.metadata.membership(pg_index).members
        if cluster.health.state_of(member) is SegmentHealth.DEAD
    )
    return open_records + unstable_pgs + dead_members


class _WorkloadRunner:
    """Drives the mixed workload and maintains the client-side model."""

    def __init__(
        self, cluster: AuroraCluster, auditor: Auditor, cfg: AuditRunConfig
    ) -> None:
        self.cluster = cluster
        self.auditor = auditor
        self.cfg = cfg
        self.rng = random.Random(cfg.seed * 7919 + 13)
        # In failover mode the writer identity changes under the client's
        # feet; the cluster session re-resolves it per operation.
        self.session = (
            cluster.cluster_session() if cfg.failover else cluster.session()
        )
        self.availability_errors = 0
        self.recoveries = 0
        self.writer_kills = 0
        #: End of the chaos schedule's horizon (absolute sim ms); the
        #: failover settle runs this out so late writer kills still fire.
        self.chaos_horizon_ms = 0.0
        #: key -> last value whose commit was acknowledged.
        self.committed: dict[str, str] = {}
        #: key -> every value that may have been durably committed (acked
        #: commits, plus writes whose commit outcome the client never saw).
        self.history: dict[str, set[str]] = {}
        #: keys a delete was ever attempted on (exempt from None-checks).
        self.deleted: set[str] = set()
        #: unresolved commit futures: (future, {key: value}).
        self.pending: list[tuple[object, dict[str, str]]] = []
        #: Outcome of the planted false-positive scenario (None = never
        #: planted).
        self.planted_rollback_ok: bool | None = None
        #: Segments permanently killed by the fleet storm.
        self.fleet_killed: list[str] = []

    # ------------------------------------------------------------------
    def run(self) -> None:
        cfg = self.cfg
        crash_every = cfg.writer_crash_every or max(150, cfg.steps // 4)
        membership_step = (
            cfg.steps // 2
            if cfg.membership_change and cfg.steps >= 300
            else None
        )
        plant_step = (
            cfg.steps // 3
            if cfg.plant_false_positive and cfg.heal and cfg.steps >= 300
            else None
        )
        # After the planted false positive resolves (it blocks until the
        # rollback lands), so the storm's candidate churn cannot race the
        # plant's candidate-name prediction.
        storm_step = (
            cfg.steps * 3 // 5
            if cfg.fleet_kills > 0 and cfg.heal
            else None
        )
        double_step = (
            min(cfg.steps - 1, storm_step + max(20, cfg.steps // 10))
            if storm_step is not None and cfg.fleet_double_fault
            else None
        )
        for step in range(cfg.steps):
            self._harvest_pending()
            if (
                step > 0
                and step % crash_every == 0
                and not cfg.failover
            ):
                # In failover mode the chaos schedule kills the writer and
                # the coordinator restores it; the operator-driven cadence
                # would race the autonomous plane.
                self._crash_and_recover()
            if membership_step is not None and step == membership_step:
                self._membership_change()
            if plant_step is not None and step == plant_step:
                self._plant_false_positive()
            if storm_step is not None and step == storm_step:
                self._fleet_storm()
            if double_step is not None and step == double_step:
                self._fleet_double_fault()
            self._one_op(step)
            self.cluster.run_for(self.rng.uniform(0.5, 2.5))
        # Let in-flight chaos and acks drain, then harvest final acks.
        self.cluster.run_for(500.0)
        self._harvest_pending()

    def settle_repairs(self) -> None:
        """Keep the simulation rolling until the healer drains.

        Background faults all heal (chaos durations are bounded, the
        background renewal process stops at its horizon), so every
        outstanding repair converges given time.  The client keeps issuing
        light traffic so acks continue feeding the health monitor.
        """
        cluster = self.cluster
        healer = cluster.healer
        monitor = cluster.health
        for spin in range(4000):
            if healer.idle and not self._dead_members(monitor):
                break
            cluster.run_for(25.0)
            if spin % 40 == 0:
                self._keepalive(spin)
        self.cluster.run_for(200.0)
        self._harvest_pending()

    # ------------------------------------------------------------------
    # Failover mode: chaos callbacks + settling
    # ------------------------------------------------------------------
    def kill_writer(self) -> None:
        """Chaos callback: hard-kill the writer host -- crash the instance
        and take its network link down, with no scheduled restore.
        Bringing a writer back is the failover coordinator's job now, not
        the schedule's (and not the client's)."""
        cluster = self.cluster
        writer = cluster.writer
        if (
            writer is None
            or cluster.failover_in_progress
            or writer.state is not InstanceState.OPEN
        ):
            return  # mid-failover already; don't stack kills
        # The crash resolves every in-flight commit future with
        # CommitUncertainError; _harvest_pending folds those into the
        # uncertain set, never the acknowledged set.
        writer.crash()
        cluster.network.fail_node(writer.name)
        self.writer_kills += 1

    def grey_writer(self, factor: float, duration_ms: float) -> None:
        """Chaos callback: grey failure -- the writer host turns slow, not
        dead, for ``duration_ms``.  The health monitor must ride it out
        (SUSPECT at worst); a failover here would be a false positive."""
        cluster = self.cluster
        writer = cluster.writer
        if writer is None or not cluster.network.is_up(writer.name):
            return
        name = writer.name
        cluster.failures.slow_node(name, factor)
        cluster.loop.schedule(
            duration_ms, lambda: cluster.failures.unslow_node(name)
        )

    def _await_failover(self) -> None:
        """Wait (in simulated time) for the coordinator to reopen a
        writer.  Time spent here *is* the write-unavailability window the
        failover report measures."""
        try:
            self.session.await_writer(max_ms=10_000.0)
        except SimulationError:
            self.availability_errors += 1

    def settle_failover(self) -> None:
        """Run the chaos horizon out, then wait for the failover plane to
        drain and a writer to be open.

        The workload usually finishes in simulated time well before the
        last scheduled writer kill; without running the horizon out, a
        run could report a clean failover gate having never actually
        killed its writer.
        """
        cluster = self.cluster
        while cluster.loop.now < self.chaos_horizon_ms:
            cluster.run_for(50.0)
        for _spin in range(4000):
            writer = cluster.writer
            if (
                cluster.failover.idle
                and not cluster.failover_in_progress
                and writer is not None
                and writer.state is InstanceState.OPEN
            ):
                break
            cluster.run_for(25.0)
        cluster.run_for(200.0)
        self._harvest_pending()

    def failover_gate(self) -> bool:
        """The budget gate: every confirmed writer failure resolved (no
        record left active or stalled), and every measured total
        write-unavailability window fit inside the configured budget."""
        from repro.repair.metrics import ACTIVE, STALLED

        for record in self.cluster.failover.records:
            if record.outcome in (ACTIVE, STALLED):
                return False
            window = record.unavailability_ms
            if window is not None and window > self.cfg.failover_budget_ms:
                return False
        return True

    def _dead_members(self, monitor) -> bool:
        """Members the healer still owes work for: confirmed dead, or
        *suspected* -- a failure near the end of the chaos horizon is
        still inside its confirmation window when settling starts, and
        breaking out then would strand its repair mid-flight."""
        from repro.repair.health import SegmentHealth

        metadata = self.cluster.metadata
        return any(
            monitor.state_of(member) is not SegmentHealth.HEALTHY
            for pg_index in metadata.pg_indexes()
            for member in metadata.membership(pg_index).members
        )

    def _keepalive(self, step: int) -> None:
        """One cheap write so liveness signals keep flowing while the
        healer settles (segments only ack when there is traffic)."""
        writer = self.cluster.writer
        if writer is None or writer.state is not InstanceState.OPEN:
            if self.cfg.failover:
                self._await_failover()
            else:
                try:
                    self._crash_and_recover()
                except ReproError:
                    pass
            return
        key, value = self._key(), f"keep{step}.{self.rng.randrange(1000)}"
        try:
            txn = writer.begin()
        except ReproError:
            self.availability_errors += 1
            return
        try:
            self._drive(writer.put(txn, key, value))
        except ReproError:
            # The value may have reached storage buffers; same uncertainty
            # bookkeeping as the regular put op.
            self._note_uncertain({key: value})
            self._abandon(txn)
            self.availability_errors += 1
            return
        try:
            self._commit(txn, {key: value})
        except ReproError:
            self.availability_errors += 1

    # ------------------------------------------------------------------
    # Client-side model upkeep
    # ------------------------------------------------------------------
    def _harvest_pending(self) -> None:
        still = []
        for future, writes in self.pending:
            if not future.done:
                still.append((future, writes))
                continue
            try:
                future.result()
            except ReproError:
                # The commit was rejected, but its redo may still have
                # reached a write quorum first (an epoch bump from a
                # concurrent repair can fail the future after the records
                # landed): the values are uncertain, not absent.
                self._note_uncertain(writes)
                continue
            for key, value in writes.items():
                self.committed[key] = value
                self.history.setdefault(key, set()).add(value)
        self.pending = still

    def _note_uncertain(self, writes: dict[str, str]) -> None:
        """A write batch whose commit outcome is unknown: each value may or
        may not be durable, so reads returning it are legitimate."""
        for key, value in writes.items():
            self.history.setdefault(key, set()).add(value)

    def _check_read(self, key: str, value, replica: bool) -> None:
        if key in self.deleted:
            return
        if value is None:
            # Deliberately NOT harvesting first: a commit that resolved
            # while this read was in flight postdates the read's snapshot,
            # so a None result must be judged against the model as of the
            # read's start.
            if not replica and key in self.committed:
                self.auditor.flag(
                    "client-read-consistency",
                    key,
                    f"writer read returned None but commit of "
                    f"{self.committed[key]!r} was acknowledged",
                )
            return
        # The converse race: a pending commit may have resolved during the
        # read's own drive, making its value legitimately visible before
        # the per-step harvest recorded it.  Fold it in before judging.
        self._harvest_pending()
        seen = self.history.get(key, set())
        if value not in seen:
            where = "replica" if replica else "writer"
            self.auditor.flag(
                "client-read-consistency",
                key,
                f"{where} read returned {value!r}, which was never "
                f"written ({len(seen)} known candidate values)",
            )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _one_op(self, step: int) -> None:
        writer = self.cluster.writer
        if writer is None or writer.state is not InstanceState.OPEN:
            if self.cfg.failover:
                self._await_failover()
            else:
                self._crash_and_recover()
            return
        roll = self.rng.random()
        try:
            if roll < 0.40:
                self._op_put(step)
            elif roll < 0.50:
                self._op_multi_put(step)
            elif roll < 0.75:
                self._op_get()
            elif roll < 0.80:
                self._op_scan()
            elif roll < 0.85:
                self._op_delete(step)
            elif roll < 0.90:
                self._op_rollback(step)
            else:
                self._op_replica_get()
        except LockConflictError:
            self.availability_errors += 1
        except SimulationError:
            self.availability_errors += 1
        except ReproError:
            self.availability_errors += 1

    def _key(self) -> str:
        return f"k{self.rng.randrange(self.cfg.keys):03d}"

    def _drive(self, awaitable):
        return self.session.drive(awaitable, max_ms=self.cfg.op_timeout_ms)

    def _abandon(self, txn) -> None:
        """Best-effort rollback so a failed op does not pin locks forever
        (NO-WAIT locking would otherwise starve the key until the next
        writer crash clears the lock table)."""
        try:
            self._drive(self.cluster.writer.rollback(txn))
        except ReproError:
            pass

    def _commit(self, txn, writes: dict[str, str]) -> None:
        writer = self.cluster.writer
        future = writer.commit(txn)
        self.pending.append((future, writes))
        try:
            self._drive(future)
        except SimulationError:
            # Timed out under chaos; _harvest_pending resolves it later.
            self._note_uncertain(writes)
            self.availability_errors += 1
        except ReproError:
            # Rejected -- but possibly after the redo reached a quorum.
            self._note_uncertain(writes)
            self.availability_errors += 1

    def _op_put(self, step: int) -> None:
        writer = self.cluster.writer
        key, value = self._key(), f"v{step}"
        txn = writer.begin()
        try:
            self._drive(writer.put(txn, key, value))
        except ReproError:
            self._note_uncertain({key: value})
            self._abandon(txn)
            raise
        self._commit(txn, {key: value})

    def _op_multi_put(self, step: int) -> None:
        writer = self.cluster.writer
        writes = {
            self._key(): f"m{step}.{i}" for i in range(self.rng.randint(2, 4))
        }
        txn = writer.begin()
        try:
            for key in sorted(writes):
                self._drive(writer.put(txn, key, writes[key]))
        except ReproError:
            self._note_uncertain(writes)
            self._abandon(txn)
            raise
        self._commit(txn, writes)

    def _op_get(self) -> None:
        key = self._key()
        value = self._drive(self.cluster.writer.get(key))
        self._check_read(key, value, replica=False)

    def _op_scan(self) -> None:
        low, high = sorted((self._key(), self._key()))
        self._drive(self.cluster.writer.scan(low, high))

    def _op_delete(self, step: int) -> None:
        writer = self.cluster.writer
        key = self._key()
        self.deleted.add(key)
        txn = writer.begin()
        try:
            self._drive(writer.delete(txn, key))
        except ReproError:
            self._abandon(txn)
            raise
        future = writer.commit(txn)
        try:
            self._drive(future)
        except SimulationError:
            self.availability_errors += 1

    def _op_rollback(self, step: int) -> None:
        writer = self.cluster.writer
        key, value = self._key(), f"r{step}"
        txn = writer.begin()
        # Whatever happens, the value may reach storage buffers before the
        # rollback lands; never flag a read that returns it.
        self._note_uncertain({key: value})
        try:
            self._drive(writer.put(txn, key, value))
        except ReproError:
            self._abandon(txn)
            raise
        self._drive(writer.rollback(txn))

    def _op_replica_get(self) -> None:
        if not self.cluster.replicas:
            self._op_get()
            return
        name = self.rng.choice(sorted(self.cluster.replicas))
        replica_session = self.cluster.replica_session(name)
        key = self._key()
        value = replica_session.drive(
            self.cluster.replicas[name].get(key),
            max_ms=self.cfg.op_timeout_ms,
        )
        self._check_read(key, value, replica=True)

    # ------------------------------------------------------------------
    # Writer crash / recovery under chaos
    # ------------------------------------------------------------------
    def _crash_and_recover(self) -> None:
        cluster = self.cluster
        if cluster.writer.state is InstanceState.OPEN:
            cluster.crash_writer()
        # Commit futures from the dead generation never resolve; their
        # values stay in `history` (recovery may still surface them if the
        # commit record was durable before the crash).
        for _future, writes in self.pending:
            self._note_uncertain(writes)
        self.pending = []
        self.recoveries += 1
        process = cluster.recover_writer()
        for _attempt in range(60):
            try:
                self.session.drive(process, max_ms=2000.0)
                break
            except SimulationError:
                continue  # recovery still in flight; keep driving it
            except ReproError:
                # Recovery failed (read quorum unreachable mid-chaos).
                # Wait for faults to heal, then start a fresh recovery.
                self.availability_errors += 1
                cluster.writer.state = InstanceState.CRASHED
                cluster.run_for(250.0)
                process = cluster.recover_writer()
        if cluster.writer.state is not InstanceState.OPEN:
            raise SimulationError(
                f"writer never recovered (seed {self.cfg.seed})"
            )
        if cluster.replicas:
            cluster.reattach_replicas()

    # ------------------------------------------------------------------
    # Membership change under chaos (Figure 5 under fire)
    # ------------------------------------------------------------------
    def _membership_change(self) -> None:
        cluster = self.cluster
        if cluster.writer.state is not InstanceState.OPEN:
            return
        state = cluster.metadata.membership(0)
        if not state.is_stable:
            return  # a previous attempt is still in flight
        candidates = [
            node_id
            for alts in state.slots
            for node_id in alts
            if cluster.network.is_up(node_id)
        ]
        if not candidates:
            return
        target = self.rng.choice(sorted(candidates))
        if self.cfg.heal:
            # Condemn (not merely crash) the segment: a chaos-schedule AZ
            # restore must not resurrect it -- it is down for good.  The
            # healer must now detect it, confirm it dead, and drive
            # Figure 5 on its own, no operator-driven replacement.
            cluster.failures.condemn_node(target)
            return
        cluster.failures.crash_node(target)
        try:
            self.session.drive(
                cluster.replace_segment(0, target), max_ms=20_000.0
            )
        except (SimulationError, MembershipError, ReproError):
            # Replacement stalled under chaos; the dual-quorum membership
            # is legal indefinitely, so leave it and carry on.
            self.availability_errors += 1

    # ------------------------------------------------------------------
    # Fleet storm: simultaneous permanent kills across distinct PGs
    # ------------------------------------------------------------------
    def _fleet_storm(self) -> None:
        """Permanently kill one member in each of ``fleet_kills`` distinct
        non-zero PGs at the same instant.

        The victims are *condemned*: every later restore -- including a
        chaos-schedule AZ recovery sweeping over them -- is a no-op, so
        these segments are down for good and the healer must drive a full
        Figure 5 repair for every one of them.  PG 0 is left out -- it
        already hosts the mid-run membership change and the planted false
        positive.
        """
        cluster = self.cluster
        pgs = [p for p in cluster.metadata.pg_indexes() if p != 0]
        for pg_index in pgs:
            if len(self.fleet_killed) >= self.cfg.fleet_kills:
                break
            state = cluster.metadata.membership(pg_index)
            if not state.is_stable:
                continue  # a repair is already in flight here; next PG
            up = sorted(
                m for m in state.members if cluster.network.is_up(m)
            )
            if not up:
                continue
            target = self.rng.choice(up)
            cluster.failures.condemn_node(target)
            self.fleet_killed.append(target)

    def _fleet_double_fault(self) -> None:
        """A second permanent kill in the first storm PG: the healer must
        queue it behind the in-flight repair (per-PG serialization)."""
        cluster = self.cluster
        if not self.fleet_killed:
            return
        pg_index = cluster.metadata.pg_of(self.fleet_killed[0])
        state = cluster.metadata.membership(pg_index)
        up = sorted(
            m
            for m in state.members
            if cluster.network.is_up(m) and m not in self.fleet_killed
        )
        if not up:
            return
        target = self.rng.choice(up)
        cluster.failures.condemn_node(target)
        self.fleet_killed.append(target)

    # ------------------------------------------------------------------
    # Planted false positive (grey failure that comes back mid-repair)
    # ------------------------------------------------------------------
    def _plant_false_positive(self) -> None:
        """Isolate a healthy segment until the healer starts replacing it,
        then let it return and require the transition to roll back.

        The incumbent is partitioned (not crashed): its durable state is
        intact the whole time, exactly the paper's "network problem"
        false-positive scenario.  The candidate is slowed so hydration
        cannot win the race against the returning incumbent.
        """
        from repro.repair.metrics import ACTIVE

        cluster = self.cluster
        healer = cluster.healer
        state = cluster.metadata.membership(0)
        if not state.is_stable or healer.active_repair(0) is not None:
            return  # needs a quiet PG; skip rather than entangle repairs
        up = sorted(
            m for m in state.members if cluster.network.is_up(m)
        )
        if not up:
            return
        target = self.rng.choice(up)
        # Bump the target's failure generation (cancelling pre-scheduled
        # background events) so nothing crashes it for real: the scenario
        # needs the segment to *return*.
        cluster.failures.restore_node(target)
        # Quarantine (not pairwise-partition) the target and the names
        # its replacement candidate could get: a quarantine also drops
        # traffic with nodes created *later* -- a concurrent repair's
        # candidate would otherwise gossip with the target and keep
        # reviving it in the monitor, so it could never be confirmed
        # dead.  The quarantined candidate then cannot hydrate, which
        # removes the race between hydration finishing and the incumbent
        # returning: the rollback path is the only way out.  Candidate
        # names are slot-specific but draw generations from a
        # cluster-wide counter, and concurrent repairs can consume
        # generations between this prediction and our begin -- so
        # reserve a window of future generations.  Only a candidate for
        # *this* slot can ever match these names, so the reservations
        # are inert for every other repair.
        predictions = {
            cluster.segment_name(
                0,
                state.slot_of(target),
                generation=cluster._candidate_counter + 1 + drift,
            )
            for drift in range(6)
        }
        for predicted in predictions:
            cluster.failures.quarantine_node(predicted, allow={target})
        cluster.failures.quarantine_node(target, allow=predictions)
        record = None
        for spin in range(1500):
            record = next(
                (
                    r
                    for r in healer.records
                    if r.segment_id == target
                    and r.outcome == ACTIVE
                    and r.candidate_id is not None
                ),
                None,
            )
            if record is not None:
                break
            cluster.run_for(5.0)
            if spin % 60 == 0:
                self._keepalive(spin)
        if record is None:
            cluster.failures.lift_quarantine(target)
            for predicted in predictions:
                cluster.failures.lift_quarantine(predicted)
            self.planted_rollback_ok = False
            return
        if record.candidate_id not in predictions:
            # The counter drifted past the reserved window; isolate the
            # actual candidate instead (best effort against the race).
            cluster.failures.quarantine_node(
                record.candidate_id, allow={target}
            )
        # The incumbent "returns": lift its quarantine and let its acks
        # and gossip revive it in the monitor.
        cluster.failures.lift_quarantine(target)
        for spin in range(1500):
            if record.outcome != ACTIVE:
                break
            cluster.run_for(5.0)
            if spin % 60 == 0:
                self._keepalive(spin)
        for isolated in predictions | {record.candidate_id}:
            cluster.failures.lift_quarantine(isolated)
        self.planted_rollback_ok = record.outcome == ROLLED_BACK
