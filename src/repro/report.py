"""Cluster introspection reports.

Gathers the state an operator (or a curious reader of the paper) wants to
see at a glance: the consistency points, per-segment log/GC state, quorum
membership and epochs, cache/commit statistics, and network traffic --
as a plain dict (for programmatic use) and as formatted text (for the CLI).
"""

from __future__ import annotations

from typing import Any

from repro.db.cluster import AuroraCluster


def cluster_report(cluster: AuroraCluster) -> dict[str, Any]:
    """Structured snapshot of a cluster's observable state."""
    writer = cluster.writer
    driver = writer.driver
    segments = {}
    for name in sorted(cluster.nodes):
        node = cluster.nodes[name]
        segment = node.segment
        segments[name] = {
            "pg": segment.pg_index,
            "kind": segment.kind.value,
            "az": cluster.metadata.placement(name).az,
            "up": cluster.network.is_up(name),
            "scl": segment.scl,
            "hot_log": segment.hot_log_size,
            "blocks": len(segment.blocks),
            "gc_floor": segment.gc_floor,
            "gc_horizon": segment.gc_horizon,
            "backed_up_upto": segment.backed_up_upto,
            "epochs": {
                "volume": node.epochs.current.volume,
                "membership": node.epochs.current.membership,
                "geometry": node.epochs.current.geometry,
            },
        }
    memberships = {}
    for pg_index in cluster.metadata.pg_indexes():
        state = cluster.metadata.membership(pg_index)
        memberships[pg_index] = {
            "epoch": state.epoch,
            "stable": state.is_stable,
            "members": sorted(state.members),
            "pgcl": (
                driver.pg_trackers[pg_index].pgcl
                if pg_index in driver.pg_trackers
                else None
            ),
            "quorum_override": cluster.metadata.has_quorum_override(
                pg_index
            ),
        }
    return {
        "time_ms": cluster.loop.now,
        "writer": {
            "name": writer.name,
            "state": writer.state.value,
            "vcl": writer.vcl,
            "vdl": writer.vdl,
            "pgmrpl": writer.current_pgmrpl(),
            "next_lsn": writer.allocator.next_lsn,
            "epochs": {
                "volume": driver.epochs.volume,
                "membership": driver.epochs.membership,
                "geometry": driver.epochs.geometry,
            },
            "active_txns": writer.txns.active_count,
            "commits": {
                "requested": writer.stats.commits_requested,
                "acknowledged": writer.stats.commits_acknowledged,
                "queue_depth": driver.commit_queue.depth,
            },
            "cache": {
                "blocks": len(writer.cache),
                "hit_rate": round(writer.cache.stats.hit_rate, 4),
                "evictions": writer.cache.stats.evictions,
            },
            "reads": {
                "issued": driver.stats.reads_issued,
                "completed": driver.stats.reads_completed,
                "hedges": driver.stats.hedges_issued,
            },
        },
        "replicas": {
            name: {
                "applied_vdl": replica.applied_vdl,
                "lag": replica.replica_lag,
                "chunks_applied": replica.stats.chunks_applied,
            }
            for name, replica in cluster.replicas.items()
        },
        "protection_groups": memberships,
        "segments": segments,
        "network": {
            "sent": cluster.network.stats.messages_sent,
            "delivered": cluster.network.stats.messages_delivered,
            "dropped": cluster.network.stats.messages_dropped,
            "by_type": dict(cluster.network.stats.by_type),
        },
        "s3_snapshots": len(cluster.s3),
    }


def format_report(report: dict[str, Any]) -> str:
    """Render a report dict as readable multi-line text."""
    lines: list[str] = []
    writer = report["writer"]
    lines.append(
        f"cluster @ t={report['time_ms']:.1f} ms | writer "
        f"{writer['name']} ({writer['state']})"
    )
    lines.append(
        f"  consistency: VCL={writer['vcl']} VDL={writer['vdl']} "
        f"PGMRPL={writer['pgmrpl']} next_lsn={writer['next_lsn']}"
    )
    epochs = writer["epochs"]
    lines.append(
        f"  epochs: volume={epochs['volume']} "
        f"membership={epochs['membership']} geometry={epochs['geometry']}"
    )
    commits = writer["commits"]
    lines.append(
        f"  commits: {commits['acknowledged']}/{commits['requested']} "
        f"acked, queue depth {commits['queue_depth']}; "
        f"active txns {writer['active_txns']}"
    )
    cache = writer["cache"]
    reads = writer["reads"]
    lines.append(
        f"  cache: {cache['blocks']} blocks, hit rate "
        f"{cache['hit_rate']:.1%}, {cache['evictions']} evictions | "
        f"storage reads: {reads['completed']}/{reads['issued']} "
        f"({reads['hedges']} hedged)"
    )
    for pg_index, pg in report["protection_groups"].items():
        override = " [quorum override]" if pg["quorum_override"] else ""
        lines.append(
            f"  PG{pg_index}: epoch={pg['epoch']} "
            f"{'stable' if pg['stable'] else 'IN TRANSITION'} "
            f"PGCL={pg['pgcl']}{override}"
        )
    lines.append("  segments:")
    for name, seg in report["segments"].items():
        status = "up" if seg["up"] else "DOWN"
        lines.append(
            f"    {name:12s} {seg['kind']:4s} {seg['az']} {status:4s} "
            f"scl={seg['scl']:<6d} hotlog={seg['hot_log']:<5d} "
            f"blocks={seg['blocks']:<4d} gc_floor={seg['gc_floor']}"
        )
    if report["replicas"]:
        lines.append("  replicas:")
        for name, replica in report["replicas"].items():
            lines.append(
                f"    {name}: applied_vdl={replica['applied_vdl']} "
                f"lag={replica['lag']} chunks={replica['chunks_applied']}"
            )
    network = report["network"]
    lines.append(
        f"  network: {network['sent']} sent / {network['delivered']} "
        f"delivered / {network['dropped']} dropped; "
        f"S3 snapshots: {report['s3_snapshots']}"
    )
    return "\n".join(lines)
