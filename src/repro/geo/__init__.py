"""Geo-replicated Global Database tier: lossy-WAN redo shipping, region
-loss failover, and audited disaster-recovery guarantees.

See :mod:`repro.geo.cluster` for the one-call entry point::

    from repro.geo import GeoCluster, GeoConfig

    geo = GeoCluster.build(GeoConfig(seed=7, ack_mode="sync"))
    geo.arm_geo_failover()
    db = geo.session()
    db.write("k", "v")          # acked only once the secondary applied it
    geo.lose_region()           # chaos: the primary region vanishes
    db.write("k", "v2")         # retries through RegionUnavailableError,
                                # lands on the promoted secondary
"""

from repro.geo.cluster import GeoCluster, GeoConfig, RegionBackend
from repro.geo.failover import (
    GEO_TERMINAL,
    PROMOTED,
    GeoFailoverConfig,
    GeoFailoverCoordinator,
    GeoFailoverRecord,
    GeoFailoverSummary,
    summarize_geo_failovers,
)
from repro.geo.replicator import (
    ASYNC,
    SYNC,
    GeoApplier,
    GeoSender,
    GeoSenderConfig,
)

__all__ = [
    "ASYNC",
    "GEO_TERMINAL",
    "PROMOTED",
    "SYNC",
    "GeoApplier",
    "GeoCluster",
    "GeoConfig",
    "GeoFailoverConfig",
    "GeoFailoverCoordinator",
    "GeoFailoverRecord",
    "GeoFailoverSummary",
    "GeoSender",
    "GeoSenderConfig",
    "RegionBackend",
    "summarize_geo_failovers",
]
