"""Cross-region redo shipping over the reliable WAN layer.

Two actors implement the paper-consistent "log is the database" approach
to geo-replication: the primary never ships pages or tuples, only the
same physical redo stream its in-region replicas already consume.

- :class:`GeoSender` lives in the primary region.  It subscribes to the
  writer's :class:`~repro.db.replication.ReplicationPublisher` stream
  (MTR chunks, VDL updates, commit notices -- possibly boxcar-framed),
  unwraps frames, and offers each item to a
  :class:`~repro.sim.wan.WanSender` for reliable, in-order delivery
  across the lossy link.  In *sync* ack mode it additionally installs
  itself as the writer's ``commit_gate``: a locally-durable commit is
  acknowledged only once the secondary's applied-VDL frontier (carried
  back on WAN acks) has passed its SCN, which is what makes region loss
  RPO-zero for acknowledged commits.  A WAN-silence *lease* self-fences
  the writer: a primary that cannot hear the secondary for ``lease_ms``
  steps down before the secondary's promotion wait elapses, so a
  cross-region split brain never yields two acking writers.

- :class:`GeoApplier` lives in the secondary region.  It owns a plain
  :class:`~repro.db.driver.StorageDriver` against the secondary volume's
  metadata and replays the shipped redo into the secondary storage
  fleet.  Chunks are withheld until the primary's *durable* VDL covers
  them (the audited invariant: the secondary's applied VDL never exceeds
  the primary's durable VDL), so the secondary volume is always a
  consistent prefix of the primary.  Its applied VDL -- the replication
  lag frontier -- is piggybacked on every WAN ack, and pushed eagerly
  when the secondary quorum advances it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.db.driver import StorageDriver
from repro.db.instance import InstanceState, WriterInstance
from repro.db.replication import (
    CommitNotice,
    MTRChunk,
    ReplicationFrame,
    VDLUpdate,
)
from repro.errors import ConfigurationError, ReplicationLagExceededError
from repro.sim.network import Actor, Message
from repro.sim.wan import (
    WanAck,
    WanFrame,
    WanHeartbeat,
    WanReceiver,
    WanSender,
    WanSenderConfig,
)
from repro.storage.messages import RequestRejected, WriteAck

#: Commit acknowledgement modes for the geo tier.
SYNC = "sync"
ASYNC = "async"


@dataclass(frozen=True)
class GeoHeartbeatInfo:
    """Primary state piggybacked on WAN heartbeats: the epochs the
    secondary must dominate at promotion, and the durable VDL that gates
    what the applier may submit."""

    epochs: Any
    vdl: int


@dataclass
class GeoSenderConfig:
    """Knobs for the primary-side replication endpoint (times in ms)."""

    #: ``"sync"`` gates commit acks on the secondary's applied frontier;
    #: ``"async"`` acks on local durability (RPO bounded by the lag).
    ack_mode: str = ASYNC
    wan_sender: WanSenderConfig = field(default_factory=WanSenderConfig)
    #: WAN-silence lease: an OPEN writer that has heard no ack for this
    #: long closes itself.  Must comfortably exceed any tolerated WAN
    #: brownout, and the promotion side waits it out (plus a margin)
    #: before recovering, so a partitioned stale primary is provably
    #: fenced before the secondary starts acking.  ``0`` disables.
    lease_ms: float = 2_500.0
    #: Sync mode: longest a locally-durable commit may wait for the
    #: remote frontier before failing (retryably) with
    #: :class:`~repro.errors.ReplicationLagExceededError`.
    sync_lag_bound_ms: float = 2_000.0
    #: Gate-expiry / lease check cadence.
    poll_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.ack_mode not in (SYNC, ASYNC):
            raise ConfigurationError(
                f"ack_mode must be {SYNC!r} or {ASYNC!r}, "
                f"got {self.ack_mode!r}"
            )
        if self.sync_lag_bound_ms <= 0:
            raise ConfigurationError("sync_lag_bound_ms must be > 0")


class GeoSender(Actor):
    """Primary-region endpoint: taps the writer's replication stream."""

    def __init__(
        self,
        name: str,
        writer: WriterInstance,
        peer: str,
        config: GeoSenderConfig | None = None,
    ) -> None:
        super().__init__(name)
        self.writer = writer
        self.peer = peer
        self.config = config if config is not None else GeoSenderConfig()
        self.wan: WanSender | None = None
        #: Highest secondary applied VDL reported on WAN acks.
        self.remote_applied_vdl = 0
        #: ``True`` once a redo chunk was refused by the bounded WAN
        #: buffer: the shipped prefix has a permanent gap and the
        #: secondary can never catch up past it.
        self.stream_broken = False
        self.chunks_dropped = 0
        self.commits_gated = 0
        self.commits_lag_failed = 0
        #: Simulated time of the lease-triggered self-fence, if any.
        self.self_fenced_at: float | None = None
        #: Pending sync gates, SCN-ordered: (scn, deadline, release, fail).
        self._gated: deque = deque()
        self._last_info: GeoHeartbeatInfo | None = None
        self._tick_scheduled = False
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Wire the WAN sender and the commit gate (after attach)."""
        self.wan = WanSender(
            self.loop,
            transmit=lambda p: self.network.send(self.name, self.peer, p),
            config=self.config.wan_sender,
            heartbeat_info=self._heartbeat_info,
            on_ack_info=self._on_ack_info,
        )
        self.writer.publisher.attach_replica(self.name)
        if self.config.ack_mode == SYNC:
            self.writer.commit_gate = self.gate_commit
        self._schedule_tick()

    def stop(self) -> None:
        """Tear down permanently (region lost or superseded)."""
        if self._stopped:
            return
        self._stopped = True
        if self.wan is not None:
            self.wan.stop()
        self._fail_all_gated("geo replication endpoint stopped")

    def stall_stream(self, duration_ms: float) -> None:
        """Chaos hook: pause data frames (heartbeats keep flowing)."""
        if self.wan is not None:
            self.wan.stall(duration_ms)

    # ------------------------------------------------------------------
    # Stream intake
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        if self._stopped or self.wan is None:
            return
        payload = message.payload
        if isinstance(payload, WanAck):
            self.wan.on_ack(payload)
        elif isinstance(payload, ReplicationFrame):
            for item in payload.items:
                self._offer(item)
        else:
            self._offer(payload)

    def _offer(self, item: Any) -> None:
        size = len(item.records) if isinstance(item, MTRChunk) else 1
        if not self.wan.offer(item, size=size):
            # A refused VDL update or commit notice is superseded by the
            # next one; a refused redo chunk is a hole forever.
            if isinstance(item, MTRChunk):
                self.stream_broken = True
                self.chunks_dropped += 1

    def _heartbeat_info(self) -> GeoHeartbeatInfo | None:
        if self.writer.state is InstanceState.OPEN:
            self._last_info = GeoHeartbeatInfo(
                epochs=self.writer.driver.epochs, vdl=self.writer.vdl
            )
        return self._last_info

    # ------------------------------------------------------------------
    # The sync commit gate
    # ------------------------------------------------------------------
    def gate_commit(
        self,
        scn: int,
        release: Callable[[], None],
        fail: Callable[[BaseException], None],
    ) -> None:
        """``WriterInstance.commit_gate`` hook (sync ack mode only)."""
        if self.config.ack_mode != SYNC or scn <= self.remote_applied_vdl:
            release()
            return
        if self._stopped or self.stream_broken or self.wan.backpressured:
            self.commits_lag_failed += 1
            fail(
                ReplicationLagExceededError(
                    f"commit {scn} is locally durable but the secondary "
                    "region cannot keep up (stream "
                    + ("broken" if self.stream_broken else "backpressured")
                    + "); retry or accept async-mode risk"
                )
            )
            return
        self.commits_gated += 1
        self._gated.append(
            (scn, self.loop.now + self.config.sync_lag_bound_ms,
             release, fail)
        )

    def _on_ack_info(self, info: Any) -> None:
        if info is None:
            return
        if info > self.remote_applied_vdl:
            self.remote_applied_vdl = info
            self._release_gated()

    def _release_gated(self) -> None:
        while self._gated and self._gated[0][0] <= self.remote_applied_vdl:
            _, _, release, _ = self._gated.popleft()
            release()

    def _fail_all_gated(self, reason: str) -> None:
        while self._gated:
            scn, _, _, fail = self._gated.popleft()
            self.commits_lag_failed += 1
            fail(
                ReplicationLagExceededError(
                    f"commit {scn} is locally durable but unacked: {reason}"
                )
            )

    # ------------------------------------------------------------------
    # Housekeeping: gate expiry and the WAN-silence lease
    # ------------------------------------------------------------------
    def _schedule_tick(self) -> None:
        if self._tick_scheduled or self._stopped:
            return
        self._tick_scheduled = True
        self.loop.schedule(self.config.poll_ms, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self._stopped:
            return
        now = self.loop.now
        self._release_gated()
        while self._gated and self._gated[0][1] <= now:
            scn, _, _, fail = self._gated.popleft()
            self.commits_lag_failed += 1
            fail(
                ReplicationLagExceededError(
                    f"commit {scn} is locally durable but the secondary "
                    f"applied frontier ({self.remote_applied_vdl}) did not "
                    f"reach it within {self.config.sync_lag_bound_ms:.0f} ms"
                )
            )
        lease = self.config.lease_ms
        if (
            lease > 0
            and self.wan is not None
            and now - self.wan.last_ack_at > lease
            and self.writer.state is InstanceState.OPEN
        ):
            # Split-brain defence: we may merely be partitioned from the
            # secondary, which will promote after waiting this lease out.
            # Step down first so no commit is acked past promotion.
            self.self_fenced_at = now
            self.writer.close(
                reason=(
                    f"geo replication lease expired ({lease:.0f} ms "
                    "without a WAN ack)"
                )
            )
            self._fail_all_gated("primary self-fenced on lease expiry")
        self._schedule_tick()


class GeoApplier(Actor):
    """Secondary-region endpoint: replays redo into the secondary volume."""

    def __init__(self, name: str, cluster, peer: str) -> None:
        super().__init__(name)
        #: The secondary-region :class:`~repro.db.cluster.AuroraCluster`.
        self.cluster = cluster
        self.peer = peer
        self.driver: StorageDriver | None = None
        self.receiver: WanReceiver | None = None
        #: Highest *durable* VDL the primary has reported (stream VDL
        #: updates and heartbeats); gates what may be submitted.
        self.primary_vdl = 0
        #: Freshest epoch stamp seen from the primary (heartbeats); the
        #: promotion merges it so the promoted epoch strictly dominates.
        self.primary_epochs = None
        self.last_primary_signal_at = 0.0
        self.commit_notices = 0
        self.last_commit_scn = 0
        self.chunks_applied = 0
        self.records_applied = 0
        #: Redo chunks received in order but beyond ``primary_vdl``.
        self._pending: deque = deque()
        #: Liveness hook: called on every primary signal (the geo health
        #: monitor's ``note_signal`` for the primary writer).
        self.on_signal: Callable[[], None] | None = None
        #: Optional :class:`repro.audit.Auditor` for the geo invariants.
        self.audit_probe = None
        self._stopped = False

    @property
    def applied_vdl(self) -> int:
        """The replication lag frontier: the secondary's durable VDL."""
        return self.driver.vdl if self.driver is not None else 0

    @property
    def lag(self) -> int:
        """LSN distance between the primary's durable point and ours."""
        return max(0, self.primary_vdl - self.applied_vdl)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Wire the applier driver and WAN receiver (after attach)."""
        self.driver = StorageDriver(
            instance_id=self.name,
            loop=self.loop,
            send=lambda dst, p: self.network.send(self.name, dst, p),
            rpc=lambda dst, p: self.network.rpc(self.name, dst, p),
            metadata=self.cluster.metadata,
            rng=self.cluster.rng,
        )
        self.driver.configure_all_pgs()
        self.driver.on_vdl_advance.append(self._on_applied_advance)
        # A foreign volume-epoch bump means the secondary writer was
        # promoted (or someone else fenced the volume): stop applying.
        self.driver.on_fenced.append(self.stop)
        self.receiver = WanReceiver(
            self.loop,
            transmit=lambda p: self.network.send(self.name, self.peer, p),
            deliver=self._apply_item,
            ack_info=lambda: self.applied_vdl,
            on_heartbeat=self._on_heartbeat,
        )

    def stop(self) -> None:
        """Stop applying permanently (promotion fenced the volume)."""
        self._stopped = True
        self._pending.clear()

    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, (WanFrame, WanHeartbeat)):
            if self.receiver is not None:
                self.receiver.on_message(payload)
        elif isinstance(payload, WriteAck):
            if self.driver is not None and not self._stopped:
                self.driver.on_write_ack(payload)
        elif isinstance(payload, RequestRejected):
            if self.driver is not None and not self._stopped:
                self.driver.on_rejection(payload)

    def _apply_item(self, item: Any) -> None:
        self._note_signal()
        if self._stopped:
            return
        if isinstance(item, MTRChunk):
            self._pending.append(item.records)
            self._flush()
        elif isinstance(item, VDLUpdate):
            if item.vdl > self.primary_vdl:
                self.primary_vdl = item.vdl
                self._flush()
        elif isinstance(item, CommitNotice):
            # Commit records ride MTR chunks; notices are bookkeeping.
            self.commit_notices += 1
            if item.scn > self.last_commit_scn:
                self.last_commit_scn = item.scn


    def _on_heartbeat(self, info: Any) -> None:
        self._note_signal()
        if info is None or self._stopped:
            return
        self.primary_epochs = info.epochs
        if info.vdl > self.primary_vdl:
            self.primary_vdl = info.vdl
            self._flush()

    def _flush(self) -> None:
        """Submit every pending chunk the primary's durable VDL covers.

        The stream is FIFO and the publisher emits a VDL update only
        after the chunks it covers, so withheld chunks release in order;
        chunks beyond the primary VDL when the primary dies are exactly
        the writes the primary itself never acknowledged.
        """
        while (
            self._pending
            and self._pending[0][-1].lsn <= self.primary_vdl
        ):
            records = self._pending.popleft()
            self.driver.submit(list(records))
            self.chunks_applied += 1
            self.records_applied += len(records)

    def _on_applied_advance(self, vdl: int) -> None:
        if self.audit_probe is not None and vdl > self.primary_vdl:
            # Structurally impossible while _flush gates submissions;
            # audited so a regression surfaces as a violation, not as
            # silent divergence.
            self.audit_probe.flag(
                "geo-applied-ahead-of-primary",
                self.name,
                f"secondary applied VDL {vdl} exceeds the primary's "
                f"durable VDL {self.primary_vdl}",
            )
        if self.receiver is not None and not self._stopped:
            # Tell the sender promptly: sync commit acks wait on this.
            self.receiver.push_ack()

    def _note_signal(self) -> None:
        self.last_primary_signal_at = self.loop.now
        if self.on_signal is not None:
            self.on_signal()
