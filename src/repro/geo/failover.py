"""Region-loss disaster recovery: detection, fenced promotion, RPO/RTO.

The in-region :class:`~repro.repair.failover.FailoverCoordinator` answers
a dead *writer* with a replica promotion inside the same volume.  The
:class:`GeoFailoverCoordinator` answers a dead *region* with a secondary
-region promotion, and the safety argument changes shape: the two regions
share no storage quorum, so the epoch fence that protects an in-region
promotion cannot reach a partitioned primary.  The protocol therefore
pairs two unilateral, consensus-free rules (the same avoid-coordination
philosophy the paper applies to I/Os and membership):

1. **The primary self-fences on lease expiry.**  A writer that has heard
   no WAN ack for ``lease_ms`` closes itself (see
   :class:`~repro.geo.replicator.GeoSender`), resolving in-flight commits
   as uncertain.  No commit is ever acknowledged by a primary that the
   secondary might already have replaced.
2. **The secondary out-waits the lease before promoting.**  After the
   geo health monitor confirms primary silence, the coordinator waits
   ``lease_ms + lease_margin_ms`` past the *last observed primary
   signal* before recovering the secondary writer.  By that point a
   merely-partitioned primary has provably stepped down.

Promotion itself is the paper's stateless crash recovery run against the
secondary volume: merge the freshest primary epochs the applier saw,
bump the volume epoch (strict dominance is audited), fence the secondary
PGs, recover to the highest locally-durable VDL.  Each promotion is
stamped into a :class:`GeoFailoverRecord` carrying the
disaster-recovery numbers -- detection, promotion, RTO, and the RPO the
workload reconciliation measures afterwards -- which
:mod:`repro.analysis.rpo_rto` folds into sweep-level distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.db.instance import InstanceState
from repro.repair.metrics import ACTIVE, ROLLED_BACK, STALLED, LatencyStats
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geo.cluster import GeoCluster
    from repro.repair.db_health import DbHealthMonitor

#: Terminal outcome: the secondary region's writer is open for business.
PROMOTED = "promoted"

GEO_TERMINAL = frozenset({PROMOTED, ROLLED_BACK, STALLED})


@dataclass
class GeoFailoverConfig:
    """Coordinator knobs (times in simulated ms)."""

    #: Poll slice while waiting out the lease / promotion recovery.
    poll_ms: float = 10.0
    #: Extra silence required beyond the primary's self-fence lease
    #: before promotion may begin.  Covers the gap between the two
    #: sides' reference points: the coordinator waits from the applier's
    #: last *received* signal, while the primary's lease runs from its
    #: last *received* ack -- one (possibly brownout-inflated) WAN flight
    #: later -- plus both sides' poll granularity.
    lease_margin_ms: float = 750.0
    #: Budget for promotion recovery; exceeding it stamps ``stalled``.
    max_promotion_ms: float = 20_000.0
    #: Pause between failed promotion-recovery attempts.
    retry_wait_ms: float = 250.0


@dataclass
class GeoFailoverRecord:
    """One region-loss event's journey through disaster recovery."""

    primary_id: str
    ack_mode: str
    failed_at: float
    confirmed_at: float
    began_at: float | None = None
    promoted_at: float | None = None
    finished_at: float | None = None
    outcome: str = ACTIVE
    promotion_attempts: int = 0
    #: The replication lag frontier at promotion (secondary applied VDL).
    applied_vdl: int = 0
    #: Highest primary durable VDL the applier ever observed.
    primary_vdl_seen: int = 0
    #: VDL the promoted writer opened with (>= applied_vdl: recovery may
    #: find redo that was shipped and stored but not yet ack-counted).
    recovered_vdl: int = 0
    #: Filled by the workload reconciliation: acknowledged commits the
    #: promoted region does not serve, and the data-loss window they span.
    lost_commits: int = 0
    rpo_ms: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def detection_ms(self) -> float:
        """Region failure to confirmed-silent."""
        return self.confirmed_at - self.failed_at

    @property
    def promotion_ms(self) -> float | None:
        """Promotion start (post lease wait) to secondary writer open."""
        if self.promoted_at is None or self.began_at is None:
            return None
        return self.promoted_at - self.began_at

    @property
    def rto_ms(self) -> float | None:
        """Recovery Time Objective: last primary liveness signal to the
        promoted writer accepting commits."""
        if self.promoted_at is None:
            return None
        return self.promoted_at - self.failed_at

    def __str__(self) -> str:
        rto = f" rto={self.rto_ms:.0f}ms" if self.rto_ms is not None else ""
        return (
            f"geo-failover {self.primary_id} [{self.outcome}]"
            f" mode={self.ack_mode} detect={self.detection_ms:.0f}ms{rto}"
            f" rpo={self.rpo_ms:.0f}ms lost={self.lost_commits}"
        )


@dataclass
class GeoFailoverSummary:
    """Aggregated disaster-recovery statistics (one run or a sweep)."""

    confirmed: int = 0
    promoted: int = 0
    rolled_back: int = 0
    stalled: int = 0
    active: int = 0
    sync_runs: int = 0
    async_runs: int = 0
    lost_commits: int = 0
    detection: LatencyStats = field(default_factory=LatencyStats)
    promotion: LatencyStats = field(default_factory=LatencyStats)
    rto: LatencyStats = field(default_factory=LatencyStats)
    rpo: LatencyStats = field(default_factory=LatencyStats)

    def merge(self, other: "GeoFailoverSummary") -> None:
        self.confirmed += other.confirmed
        self.promoted += other.promoted
        self.rolled_back += other.rolled_back
        self.stalled += other.stalled
        self.active += other.active
        self.sync_runs += other.sync_runs
        self.async_runs += other.async_runs
        self.lost_commits += other.lost_commits
        self.detection.merge(other.detection)
        self.promotion.merge(other.promotion)
        self.rto.merge(other.rto)
        self.rpo.merge(other.rpo)

    def render_lines(self) -> list[str]:
        lines = [
            f"  region failovers:    {self.confirmed} "
            f"(promoted={self.promoted} rolled_back={self.rolled_back} "
            f"stalled={self.stalled} active={self.active})",
        ]
        if self.detection.count:
            lines.append(f"  region detection:    {self.detection.describe()}")
        if self.promotion.count:
            lines.append(f"  promotion time:      {self.promotion.describe()}")
        if self.rto.count:
            lines.append(f"  RTO:                 {self.rto.describe()}")
        if self.rpo.count:
            lines.append(
                f"  RPO:                 {self.rpo.describe()} "
                f"({self.lost_commits} acked commit(s) lost, async mode)"
            )
        return lines


def summarize_geo_failovers(
    records: list[GeoFailoverRecord],
) -> GeoFailoverSummary:
    from repro.geo.replicator import SYNC

    summary = GeoFailoverSummary(confirmed=len(records))
    for record in records:
        if record.outcome == PROMOTED:
            summary.promoted += 1
        elif record.outcome == ROLLED_BACK:
            summary.rolled_back += 1
        elif record.outcome == STALLED:
            summary.stalled += 1
        else:
            summary.active += 1
        if record.ack_mode == SYNC:
            summary.sync_runs += 1
        else:
            summary.async_runs += 1
        summary.lost_commits += record.lost_commits
        summary.detection.samples.append(record.detection_ms)
        if record.promotion_ms is not None:
            summary.promotion.samples.append(record.promotion_ms)
        if record.rto_ms is not None:
            summary.rto.samples.append(record.rto_ms)
            summary.rpo.samples.append(record.rpo_ms)
    return summary


class GeoFailoverCoordinator:
    """Promotes the secondary region when the primary falls silent."""

    def __init__(
        self,
        geo: "GeoCluster",
        monitor: "DbHealthMonitor",
        config: GeoFailoverConfig | None = None,
    ) -> None:
        self.geo = geo
        self.monitor = monitor
        self.config = config if config is not None else GeoFailoverConfig()
        self.records: list[GeoFailoverRecord] = []
        self._active: GeoFailoverRecord | None = None
        self._returned: set[str] = set()
        monitor.on_confirmed_dead.append(self._on_confirmed_dead)
        monitor.on_recovered.append(self._on_recovered)

    @property
    def idle(self) -> bool:
        return self._active is None

    def summary(self) -> GeoFailoverSummary:
        return summarize_geo_failovers(self.records)

    # ------------------------------------------------------------------
    def _on_confirmed_dead(
        self, instance_id: str, failed_at: float, confirmed_at: float
    ) -> None:
        if instance_id != self.geo.primary_writer_id:
            return
        if self._active is not None or self.geo.promoted:
            return
        self._returned.discard(instance_id)
        record = GeoFailoverRecord(
            primary_id=instance_id,
            ack_mode=self.geo.ack_mode,
            failed_at=failed_at,
            confirmed_at=confirmed_at,
        )
        self.records.append(record)
        self._active = record
        Process(self.geo.loop, self._promote(record))

    def _on_recovered(self, instance_id: str) -> None:
        self._returned.add(instance_id)

    # ------------------------------------------------------------------
    def _promote(self, record: GeoFailoverRecord):
        cfg = self.config
        geo = self.geo
        loop = geo.loop
        applier = geo.applier
        geo.failover_in_progress = True
        geo.region_unavailable = True
        try:
            # Out-wait the primary's self-fence lease, measured from the
            # last primary signal the *applier* observed.  If signals
            # resume meanwhile (and chaos did not truly kill the region),
            # this was a false positive: stand down, nothing changed.
            while (
                loop.now
                < applier.last_primary_signal_at
                + geo.lease_ms
                + cfg.lease_margin_ms
            ):
                if (
                    record.primary_id in self._returned
                    and not geo.primary_lost
                ):
                    record.notes.append(
                        "primary signals resumed during the lease wait"
                    )
                    geo.region_unavailable = False
                    self._finish(record, ROLLED_BACK)
                    return
                yield cfg.poll_ms
            # Point of no return: stop applying (a post-promotion frame
            # must never mutate the promoted volume) and snapshot the
            # replication frontier the RPO gate is judged against.
            applier.stop()
            record.applied_vdl = applier.applied_vdl
            record.primary_vdl_seen = applier.primary_vdl
            if applier.primary_epochs is not None:
                # Promotion must dominate every epoch the primary ever
                # established, or a zombie's stamp could outrank ours.
                geo.secondary.metadata.record_epochs(applier.primary_epochs)
            record.began_at = loop.now
            writer = geo.secondary.writer
            deadline = record.confirmed_at + cfg.max_promotion_ms
            process = writer.recover()
            while True:
                record.promotion_attempts += 1
                while not process.finished and loop.now < deadline:
                    yield cfg.poll_ms
                if (
                    process.finished
                    and process.completion.exception() is None
                    and writer.state is InstanceState.OPEN
                ):
                    break
                if loop.now >= deadline:
                    record.notes.append(
                        f"promotion exceeded {cfg.max_promotion_ms:.0f}ms"
                    )
                    self._finish(record, STALLED)
                    return
                writer.state = InstanceState.CRASHED
                yield cfg.retry_wait_ms
                process = writer.recover()
            record.promoted_at = loop.now
            record.recovered_vdl = writer.vdl
            self._check_epoch_dominance(record, writer)
            geo.on_promoted(record)
            self._finish(record, PROMOTED)
        finally:
            geo.failover_in_progress = False
            if self._active is record:
                self._active = None

    def _check_epoch_dominance(self, record: GeoFailoverRecord, writer):
        """Audited invariant: the promoted region's volume epoch strictly
        dominates every epoch the primary was known to hold, so any
        late-healing zombie loses every epoch comparison."""
        known = self.geo.applier.primary_epochs
        if known is None:
            return
        promoted = writer.driver.epochs
        if promoted.volume <= known.volume:
            record.notes.append(
                f"promoted volume epoch {promoted.volume} does not "
                f"dominate the primary's {known.volume}"
            )
            auditor = writer.driver.audit_probe
            if auditor is not None:
                auditor.flag(
                    "geo-promoted-epoch-not-dominant",
                    writer.name,
                    f"promoted with volume epoch {promoted.volume} <= "
                    f"last known primary volume epoch {known.volume}",
                )

    def _finish(self, record: GeoFailoverRecord, outcome: str) -> None:
        record.outcome = outcome
        record.finished_at = self.geo.loop.now
