"""A geo-replicated Global Database: two regions, one WAN, one facade.

:class:`GeoCluster` wires the whole tier together on ONE simulated event
loop and network:

- a **primary region**: an ordinary :class:`~repro.db.cluster.AuroraCluster`
  (any registered storage backend) carrying the workload;
- a **secondary region**: a second, fully independent volume whose
  storage fleet lives on region-prefixed AZs (``geo-az1`` ...) via
  :class:`RegionBackend`, so failure domains never straddle the WAN and
  a whole region can be condemned by name;
- the cross-region transport: a :class:`~repro.sim.wan.WanLink`
  installed on the sender/applier pair, with the
  :class:`~repro.geo.replicator.GeoSender` /
  :class:`~repro.geo.replicator.GeoApplier` endpoints on top;
- the disaster-recovery plane (:meth:`arm_geo_failover`): a secondary
  -region :class:`~repro.repair.HealthMonitor` whose gossip-fed
  ``freshest_signal`` serves as the observer-liveness frontier for a
  :class:`~repro.repair.DbHealthMonitor` watching the primary, plus the
  :class:`~repro.geo.failover.GeoFailoverCoordinator`.

The facade duck-types the surface
:class:`~repro.db.session.ClusterSession` resolves against (``writer``,
``failover_in_progress``, ``loop``, ``run_for``) and adds
``region_unavailable`` so sessions raise the typed
:class:`~repro.errors.RegionUnavailableError` while promotion is
pending: a client created before region loss keeps working across it,
transparently re-resolving to the promoted region.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field

from repro.db.cluster import AuroraCluster, ClusterConfig
from repro.db.instance import InstanceState, WriterInstance
from repro.db.session import ClusterSession
from repro.errors import ConfigurationError
from repro.geo.failover import GeoFailoverConfig, GeoFailoverCoordinator
from repro.geo.replicator import ASYNC, GeoApplier, GeoSender, GeoSenderConfig
from repro.sim.events import EventLoop
from repro.sim.failures import FailureInjector
from repro.sim.network import Network
from repro.sim.wan import WanConfig, WanLink
from repro.storage.backend import SlotSpec, StorageBackend, resolve_backend


class RegionBackend(StorageBackend):
    """Region-scoping wrapper: delegates every policy decision to the
    wrapped backend but prefixes its AZ names, so a secondary volume's
    failure domains (``geo-az1`` ...) are disjoint from the primary's and
    AZ-level chaos in one region never touches the other."""

    def __init__(self, inner, region: str) -> None:
        self.inner = resolve_backend(inner)
        self.region = region
        self.name = f"{self.inner.name}@{region}"

    def segment_layout(self) -> tuple[SlotSpec, ...]:
        return tuple(
            SlotSpec(az=f"{self.region}-{spec.az}", kind=spec.kind)
            for spec in self.inner.segment_layout()
        )

    def replication(self):
        return self.inner.replication()

    def membership_quorum_config(self, metadata, pg_index, state):
        return self.inner.membership_quorum_config(metadata, pg_index, state)

    def write_targets(self, metadata, pg_index):
        return self.inner.write_targets(metadata, pg_index)

    def read_fallback_members(self, metadata, pg_index):
        return self.inner.read_fallback_members(metadata, pg_index)

    def tracked_members(self, metadata, pg_index):
        return self.inner.tracked_members(metadata, pg_index)

    def baseline_sources(self, metadata, pg_index):
        return self.inner.baseline_sources(metadata, pg_index)

    def max_tolerated_kills(self) -> int:
        return self.inner.max_tolerated_kills()


@dataclass
class GeoConfig:
    """Shape of the geo-replicated deployment."""

    seed: int = 42
    pg_count: int = 1
    #: Storage backend for BOTH regions (name or instance); the secondary
    #: gets it wrapped in a :class:`RegionBackend`.
    backend: object = "aurora"
    #: ``"sync"`` or ``"async"`` commit acknowledgement (see
    #: :class:`~repro.geo.replicator.GeoSenderConfig`).
    ack_mode: str = ASYNC
    wan: WanConfig = field(default_factory=WanConfig)
    #: Full sender config; built from ``ack_mode`` when ``None``.
    sender: GeoSenderConfig | None = None
    #: Name prefix / AZ prefix for the secondary region.
    secondary_region: str = "geo"
    #: Group-commit policy for both regions' writers (see
    #: :data:`repro.db.driver.GROUP_COMMIT_POLICIES`).
    group_commit: str = "fixed"

    def __post_init__(self) -> None:
        if not self.secondary_region:
            raise ConfigurationError("secondary_region must be non-empty")


class GeoCluster:
    """Two wired regions plus the cross-region replication/DR plane."""

    def __init__(
        self,
        config: GeoConfig,
        primary: AuroraCluster,
        secondary: AuroraCluster,
    ) -> None:
        self.config = config
        self.primary = primary
        self.secondary = secondary
        self.sender: GeoSender | None = None
        self.applier: GeoApplier | None = None
        self.wan: WanLink | None = None
        #: Set by :meth:`lose_region`: the primary region is definitively
        #: gone (chaos-level ground truth, used to veto false-positive
        #: rollbacks, never consulted by the detection path itself).
        self.primary_lost = False
        #: True from region-loss confirmation until promotion completes;
        #: sessions surface it as :class:`RegionUnavailableError`.
        self.region_unavailable = False
        self.failover_in_progress = False
        self.promoted = False
        self.promoted_record = None
        #: DR plane (see :meth:`arm_geo_failover`).
        self.secondary_health = None
        self.geo_health = None
        self.geo_failover = None
        self.primary_writer_id = (
            primary.writer.name if primary.writer is not None else ""
        )
        self._region_partitioned = False
        self._brownout_token = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, config: GeoConfig | None = None, seed: int | None = None
    ) -> "GeoCluster":
        config = config if config is not None else GeoConfig()
        if seed is not None:
            config.seed = seed
        rng = random.Random(config.seed)
        loop = EventLoop()
        network = Network(loop, rng)
        failures = FailureInjector(loop, network, rng)
        shared = (loop, network, failures, rng)
        primary_cfg = ClusterConfig(
            seed=config.seed,
            pg_count=config.pg_count,
            backend=config.backend,
        )
        primary_cfg.instance.driver.group_commit = config.group_commit
        primary = AuroraCluster.build(
            primary_cfg,
            shared=shared,
            bootstrap=False,
        )
        secondary_cfg = ClusterConfig(
            seed=config.seed,
            pg_count=config.pg_count,
            backend=RegionBackend(
                config.backend, config.secondary_region
            ),
            name_prefix=f"{config.secondary_region}-",
        )
        secondary_cfg.instance.driver.group_commit = config.group_commit
        secondary = AuroraCluster.build(
            secondary_cfg,
            shared=shared,
            bootstrap=False,
        )
        geo = cls(config, primary, secondary)
        geo._wire()
        geo._bootstrap()
        return geo

    def _wire(self) -> None:
        region = self.config.secondary_region
        network = self.network
        self.applier = GeoApplier(
            f"{region}-rx", self.secondary, peer=f"{region}-tx"
        )
        network.attach(self.applier, az=f"{region}-az1")
        self.applier.start()
        sender_config = (
            self.config.sender
            if self.config.sender is not None
            else GeoSenderConfig(ack_mode=self.config.ack_mode)
        )
        self.sender = GeoSender(
            f"{region}-tx",
            self.primary.writer,
            peer=self.applier.name,
            config=sender_config,
        )
        network.attach(self.sender, az="az1")
        self.sender.start()
        wan_config = self.config.wan
        if wan_config.seed == 0:
            # Derive a per-deployment link seed so sweeps decorrelate,
            # without touching the clusters' shared random stream.
            wan_config = dataclasses.replace(
                wan_config,
                seed=(self.config.seed * 2_654_435_761 + 1) % (2**31),
            )
        self.wan = WanLink(wan_config)
        network.set_wan_link(self.sender.name, self.applier.name, self.wan)

    def _bootstrap(self) -> None:
        writer = self.primary.writer
        writer.bootstrap()
        for _ in range(200):
            if writer.vcl >= writer.allocator.highest_allocated:
                break
            self.loop.run(until=self.loop.now + 1.0)

    # ------------------------------------------------------------------
    # ClusterSession facade
    # ------------------------------------------------------------------
    @property
    def loop(self) -> EventLoop:
        return self.primary.loop

    @property
    def network(self) -> Network:
        return self.primary.network

    @property
    def failures(self) -> FailureInjector:
        return self.primary.failures

    @property
    def ack_mode(self) -> str:
        return (
            self.sender.config.ack_mode
            if self.sender is not None
            else self.config.ack_mode
        )

    @property
    def lease_ms(self) -> float:
        return self.sender.config.lease_ms if self.sender is not None else 0.0

    @property
    def writer(self) -> WriterInstance | None:
        """The active region's writer; ``None`` while the active region
        is lost and promotion has not completed (sessions then raise the
        typed :class:`RegionUnavailableError` and retry)."""
        if self.promoted:
            return self.secondary.writer
        if self.region_unavailable:
            return None
        return self.primary.writer

    def run_for(self, duration_ms: float) -> None:
        self.loop.run(until=self.loop.now + duration_ms)

    def session(self) -> ClusterSession:
        """A region-failover-aware client session."""
        return ClusterSession(self)

    def settle(self) -> None:
        """Drain until the active region's volume is fully durable."""
        for _ in range(200):
            writer = (
                self.secondary.writer if self.promoted
                else self.primary.writer
            )
            if (
                writer.state is not InstanceState.OPEN
                or writer.driver.volume.lag == 0
            ):
                return
            self.run_for(5.0)

    # ------------------------------------------------------------------
    # Auditing and the DR plane
    # ------------------------------------------------------------------
    def arm_auditors(self, primary_auditor, secondary_auditor) -> None:
        """One auditor per volume (PG indexes collide across regions, so
        sharing one would cross-wire its per-PG watermarks); the runner
        merges their violation lists."""
        self.primary.arm_auditor(primary_auditor)
        self.secondary.arm_auditor(secondary_auditor)
        self.applier.audit_probe = secondary_auditor

    def arm_geo_failover(
        self,
        db_health_config=None,
        failover_config: GeoFailoverConfig | None = None,
    ):
        """Attach the disaster-recovery plane; returns
        ``(monitor, coordinator)``.

        Detection is the adaptive :class:`~repro.repair.DbHealthMonitor`
        machinery with one twist: the only database-tier signal source is
        the primary itself (via the WAN stream the applier observes), so
        the observer-liveness frontier MUST come from somewhere else or
        silence would never accrue.  The secondary region's storage
        gossip provides it: a :class:`~repro.repair.HealthMonitor` over
        the secondary fleet keeps a continuously advancing
        ``freshest_signal`` with zero extra traffic, proving the
        *observer's* side of the world alive while the primary is quiet.
        """
        from repro.repair import WRITER, DbHealthMonitor, HealthMonitor

        monitor_ref = HealthMonitor(self.loop, self.secondary.metadata)
        self.secondary_health = monitor_ref
        self.applier.driver.health_probe = monitor_ref
        for node in self.secondary.nodes.values():
            node.health_probe = monitor_ref
        monitor_ref.start()
        monitor = DbHealthMonitor(
            self.loop,
            db_health_config,
            reference_frontier=monitor_ref.freshest_signal,
        )
        self.geo_health = monitor
        monitor.register_instance(self.primary_writer_id, WRITER)
        self.applier.on_signal = (
            lambda: monitor.note_signal(self.primary_writer_id)
        )
        monitor.start()
        self.geo_failover = GeoFailoverCoordinator(
            self, monitor, failover_config
        )
        return monitor, self.geo_failover

    def on_promoted(self, record) -> None:
        """Called by the coordinator the moment the secondary writer is
        open: flip the facade to the promoted region."""
        self.promoted = True
        self.promoted_record = record
        self.region_unavailable = False
        if self.geo_health is not None:
            self.geo_health.deregister_instance(self.primary_writer_id)
            # One terminal region event per deployment: the monitor's
            # job is done (and the old primary must never be re-judged).
            self.geo_health.stop()

    def check_fencing(self, auditor) -> None:
        """Audited invariant (call once the run settles): the deposed
        primary never acknowledged a commit at or after promotion --
        the lease self-fence provably beat the promotion."""
        record = self.promoted_record
        if record is None or record.promoted_at is None:
            return
        writer = self.primary.writer
        last_ack = writer.stats.last_commit_ack_at
        if last_ack is not None and last_ack >= record.promoted_at:
            auditor.flag(
                "geo-stale-primary-ack",
                writer.name,
                f"stale primary acked a commit at {last_ack:.1f}ms, at or "
                f"after the secondary's promotion at "
                f"{record.promoted_at:.1f}ms (fence failed)",
            )

    # ------------------------------------------------------------------
    # Chaos surface
    # ------------------------------------------------------------------
    def _primary_names(self) -> set[str]:
        names = {self.sender.name}
        names.update(self.primary.nodes)
        names.update(self.primary.replicas)
        if self.primary.writer is not None:
            names.add(self.primary.writer.name)
        return names

    def _secondary_names(self) -> set[str]:
        names = {self.applier.name}
        names.update(self.secondary.nodes)
        if self.secondary.writer is not None:
            names.add(self.secondary.writer.name)
        return names

    def lose_region(self) -> None:
        """Chaos: the primary region vanishes wholesale (power + WAN).

        Every primary-region host is crashed and condemned -- a later
        restore event must not resurrect any of them -- and the primary's
        own monitors retire their nodes so no ghost is ever judged.  The
        writer is crashed explicitly (a network-level ``fail_node`` alone
        does not kill the instance process).
        """
        if self.primary_lost:
            return
        self.primary_lost = True
        self.region_unavailable = True
        writer = self.primary.writer
        if writer is not None and writer.state is not InstanceState.CLOSED:
            writer.crash()
        self.sender.stop()
        for name in sorted(self._primary_names()):
            self.failures.condemn_node(name)
        if self.primary.health is not None:
            for name in self.primary.nodes:
                self.primary.health.retire(name)
            self.primary.health.stop()
        if self.primary.db_health is not None:
            self.primary.db_health.stop()

    def partition_regions(self) -> None:
        """Chaos: split brain -- the WAN between the regions is cut, but
        BOTH regions stay up and the primary keeps serving until its
        lease self-fence.  Heal with :meth:`heal_regions`."""
        if self._region_partitioned:
            return
        self._region_partitioned = True
        self.network.partition(self._primary_names(), self._secondary_names())

    def heal_regions(self) -> None:
        if not self._region_partitioned:
            return
        self._region_partitioned = False
        self.network.heal_partition(
            self._primary_names(), self._secondary_names()
        )

    def wan_brownout(
        self,
        loss_rate: float,
        latency_factor: float,
        duration_ms: float,
    ) -> None:
        """Chaos: degrade (not cut) the WAN for ``duration_ms``."""
        self._brownout_token += 1
        token = self._brownout_token
        self.wan.set_brownout(loss_rate, latency_factor)

        def _clear() -> None:
            if self._brownout_token == token:
                self.wan.clear_brownout()

        self.loop.schedule(duration_ms, _clear)

    def stall_stream(self, duration_ms: float) -> None:
        """Chaos: the replication stream stops shipping data frames
        (heartbeats continue -- a stalled stream is lag, not death)."""
        self.sender.stall_stream(duration_ms)
