"""Segments: the unit of failure, repair, and replication.

A segment stores "the redo log for their portion of the database volume as
well as coalesced data blocks" (section 2.1).  Section 4.2 splits the six
copies of a protection group into three **full** segments (redo log + data
blocks) and three **tail** segments (redo log only), cutting cost
amplification from 6x to roughly 3x.

The segment implements the storage half of Figure 2:

- activity 1/2: :meth:`receive` -- append to the hot log (update queue) and
  advance the SCL chain tracker,
- activity 3/5: :meth:`coalesce` -- sort/group hot-log records by block and
  apply redo to materialize block versions (full segments only; also done
  on demand by :meth:`read_block`),
- activity 6: :meth:`snapshot_for_backup` -- point-in-time state for S3,
- activity 7: :meth:`garbage_collect` -- drop hot-log records and block
  versions no longer needed,
- activity 8: :meth:`scrub` -- verify checksums.

Reads are only served between PGMRPL and SCL (section 3.4): "The storage
nodes will only accept read requests between PGMRPL and SCL."
"""

from __future__ import annotations

import enum
from bisect import bisect_right, insort
from typing import Iterable

from repro.core.consistency import SegmentChainTracker
from repro.core.lsn import NULL_LSN, TruncationRange
from repro.core.records import NO_BLOCK, ChainDigest, LogRecord
from repro.errors import ConfigurationError, ReadPointError
from repro.storage.page import BlockVersionChain, image_checksum


class SegmentKind(enum.Enum):
    """Full segments materialize data blocks; tail segments hold log only.

    LOG segments play the Taurus log-store role: durability-first copies
    that hold the redo log like tails but can materialize block versions
    *on demand*, so reads can fall back to the log tail while page stores
    hydrate asynchronously.
    """

    FULL = "full"
    TAIL = "tail"
    LOG = "log"


class Segment:
    """One copy of a protection group's log (and, if full, its blocks)."""

    def __init__(
        self,
        segment_id: str,
        pg_index: int,
        kind: SegmentKind = SegmentKind.FULL,
    ) -> None:
        self.segment_id = segment_id
        self.pg_index = pg_index
        self.kind = kind
        self.chain = SegmentChainTracker()
        #: The hot log / update queue: every not-yet-GC'd record by LSN.
        self.hot_log: dict[int, LogRecord] = {}
        #: Sorted mirror of ``hot_log``'s keys.  Receives are near-append
        #: (LSNs mostly arrive in order), so maintaining the index costs a
        #: binary search per record and saves a full sort per coalesce
        #: tick / gossip query / recovery scan.
        self._lsn_index: list[int] = []
        #: Materialized block version chains (full segments only).
        self.blocks: dict[int, BlockVersionChain] = {}
        #: Highest LSN whose redo has been applied to blocks.
        self.coalesced_upto = NULL_LSN
        #: Highest LSN included in a completed backup.
        self.backed_up_upto = NULL_LSN
        #: GC floor advertised by database instances (min over instances).
        self.gc_floor = NULL_LSN
        #: Highest LSN below which hot-log records may have been GC'd; a
        #: hydrating peer must take everything at or below this point from
        #: the materialized blocks / backup rather than the hot log.
        self.gc_horizon = NULL_LSN
        #: Truncation ranges installed by crash recoveries; records inside
        #: any of them are annulled and refused even if they arrive later
        #: ("even if in-flight asynchronous operations complete during the
        #: process of crash recovery, they are ignored").
        self.truncations: list[TruncationRange] = []
        self.stats = {
            "records_received": 0,
            "duplicates": 0,
            "annulled_refused": 0,
            "records_gossiped_in": 0,
            "coalesce_applications": 0,
            "gc_records_dropped": 0,
            "gc_versions_dropped": 0,
            "reads_served": 0,
            "scrub_failures": 0,
        }

    # ------------------------------------------------------------------
    # Foreground: receive + acknowledge
    # ------------------------------------------------------------------
    @property
    def scl(self) -> int:
        return self.chain.scl

    def receive(self, record: LogRecord, via_gossip: bool = False) -> bool:
        """Store a record; returns True if the SCL advanced.

        Receiving is unconditional: "storage nodes do not have a vote in
        determining whether to accept a write, they must do so" (section
        2.3).  Duplicates are idempotently ignored.
        """
        if record.pg_index != self.pg_index:
            raise ConfigurationError(
                f"record for PG {record.pg_index} routed to segment "
                f"{self.segment_id} of PG {self.pg_index}"
            )
        if any(t.contains(record.lsn) for t in self.truncations):
            self.stats["annulled_refused"] += 1
            return False
        if record.lsn in self.hot_log or record.lsn <= self.chain.scl:
            self.stats["duplicates"] += 1
            return False
        self.hot_log[record.lsn] = record
        insort(self._lsn_index, record.lsn)
        self.stats["records_received"] += 1
        if via_gossip:
            self.stats["records_gossiped_in"] += 1
        return self.chain.offer(record.lsn, record.prev_pg_lsn)

    # ------------------------------------------------------------------
    # Background: sort/group + coalesce
    # ------------------------------------------------------------------
    def coalesce(self, upto: int | None = None) -> int:
        """Apply redo for chain-complete records to block versions.

        Only records at or below the SCL are eligible (the chain guarantees
        nothing is missing below it).  Tail segments never materialize;
        log segments materialize only on demand (``upto`` given), never in
        the background.  Returns the number of records applied.
        """
        if self.kind is SegmentKind.TAIL:
            return 0
        if self.kind is SegmentKind.LOG and upto is None:
            return 0
        limit = self.scl if upto is None else min(upto, self.scl)
        if limit <= self.coalesced_upto:
            return 0
        index = self._lsn_index
        lo = bisect_right(index, self.coalesced_upto)
        hi = bisect_right(index, limit)
        applied = 0
        hot_log = self.hot_log
        for lsn in index[lo:hi]:
            self._apply_record(hot_log[lsn])
            applied += 1
        self.coalesced_upto = limit
        self.stats["coalesce_applications"] += applied
        return applied

    def _apply_record(self, record: LogRecord) -> None:
        if record.block == NO_BLOCK:
            return  # pure control records change no block
        chain = self.blocks.get(record.block)
        if chain is None:
            chain = BlockVersionChain(record.block)
            self.blocks[record.block] = chain
        if chain.latest_lsn >= record.lsn:
            return  # already applied (idempotence)
        new_image = record.payload.apply(chain.latest_image())
        chain.append(record.lsn, new_image)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_block(self, block: int, read_point: int) -> dict:
        """Serve the latest durable version of ``block`` at ``read_point``.

        Materializes on demand ("materializing blocks in background or
        on-demand to satisfy a read request").  Raises
        :class:`ReadPointError` outside the [gc_floor, SCL] window and on
        tail segments (which hold no blocks).
        """
        if self.kind is SegmentKind.TAIL:
            raise ReadPointError(read_point, 0, 0)
        if (
            self.kind is SegmentKind.LOG
            and self.coalesced_upto < self.gc_horizon
        ):
            # History below the GC horizon is gone from the hot log and was
            # never materialized here (e.g. after a backup restore); an
            # on-demand coalesce would produce silently incomplete images.
            # Refuse so the driver reroutes to a page store.
            raise ReadPointError(read_point, 0, 0)
        if not self.gc_floor <= read_point <= self.scl:
            raise ReadPointError(read_point, self.gc_floor, self.scl)
        self.coalesce(upto=read_point)
        self.stats["reads_served"] += 1
        chain = self.blocks.get(block)
        if chain is None:
            return {}
        return chain.image_at(read_point)

    def block_version_lsn(self, block: int, read_point: int) -> int:
        """LSN of the version that :meth:`read_block` would serve."""
        chain = self.blocks.get(block)
        if chain is None:
            return NULL_LSN
        version = chain.version_at(read_point)
        return version.lsn if version is not None else NULL_LSN

    # ------------------------------------------------------------------
    # Gossip support
    # ------------------------------------------------------------------
    def records_after(self, lsn: int, limit: int = 1024) -> list[LogRecord]:
        """Hot-log records above ``lsn``, in LSN order (gossip fill-ins)."""
        index = self._lsn_index
        lo = bisect_right(index, lsn)
        return [self.hot_log[l] for l in index[lo : lo + limit]]

    def missing_below_scl_of(self, peer_scl: int) -> bool:
        """Would gossip with a peer at ``peer_scl`` teach this segment
        anything?"""
        return peer_scl > self.scl

    # ------------------------------------------------------------------
    # Recovery support
    # ------------------------------------------------------------------
    def chain_digests(self) -> tuple[ChainDigest, ...]:
        """Digests of every hot-log record (recovery scan payload)."""
        return tuple(
            ChainDigest.of(self.hot_log[lsn]) for lsn in self._lsn_index
        )

    def truncate(self, pg_point: int, truncation: TruncationRange) -> int:
        """Annul records above this PG's surviving point; returns count.

        ``pg_point`` is the highest surviving LSN routed to this PG (the
        per-PG anchor of the volume-wide truncation range); the segment
        chain is clamped there so post-recovery records re-link cleanly.
        """
        self.truncations.append(truncation)
        # Annul only the window (pg_point, truncation.last].  LSNs above the
        # range belong to post-recovery writer generations (the allocator
        # jumps above it): a TruncateRequest delivered late, to a segment
        # that was unreachable while recovery ran, must not destroy records
        # gossiped in from the new generation since.
        index = self._lsn_index
        lo = bisect_right(index, pg_point)
        hi = bisect_right(index, truncation.last)
        doomed = index[lo:hi]
        for lsn in doomed:
            del self.hot_log[lsn]
        self._lsn_index = index[:lo] + index[hi:]
        self.chain.truncate(pg_point, truncation.last)
        for chain in self.blocks.values():
            chain.truncate_above(pg_point, truncation.last)
        if self.chain.scl <= truncation.last:
            self.coalesced_upto = min(self.coalesced_upto, pg_point)
        return len(doomed)

    # ------------------------------------------------------------------
    # Backup, GC, scrub
    # ------------------------------------------------------------------
    def snapshot_for_backup(self) -> dict:
        """Point-in-time snapshot shipped to the simulated S3."""
        self.coalesce()
        snapshot = {
            "segment_id": self.segment_id,
            "pg_index": self.pg_index,
            "scl": self.scl,
            "blocks": {
                block: chain.image_at(self.scl)
                for block, chain in self.blocks.items()
            },
            "hot_log_lsns": list(self._lsn_index),
        }
        return snapshot

    def mark_backed_up(self, upto: int) -> None:
        self.backed_up_upto = max(self.backed_up_upto, upto)

    def restore_from_snapshot(self, payload: dict) -> int:
        """Rebuild this (fresh) segment from an S3 backup snapshot.

        Point-in-time restore: the snapshot's coalesced block images become
        the baseline (one version each, stamped at the snapshot SCL); the
        chain re-anchors at the snapshot SCL and ``gc_horizon`` marks
        everything below it as complete-from-backup, so post-restore crash
        recovery and gossip hydration compose with the normal machinery.
        Returns the restored SCL.
        """
        snapshot_scl = payload["scl"]
        self.hot_log.clear()
        self._lsn_index.clear()
        self.blocks = {}
        if self.kind is SegmentKind.FULL:
            for block, image in payload["blocks"].items():
                chain = BlockVersionChain(block)
                if image or snapshot_scl > NULL_LSN:
                    chain.append(snapshot_scl, dict(image))
                self.blocks[block] = chain
        self.chain.rebase(snapshot_scl)
        # A log segment restores no block baseline, so it must not claim
        # materialization through the snapshot point; the read_block guard
        # then routes reads to page stores until it adopts a baseline.
        if self.kind is not SegmentKind.LOG:
            self.coalesced_upto = snapshot_scl
        self.backed_up_upto = snapshot_scl
        self.gc_horizon = max(self.gc_horizon, snapshot_scl)
        return snapshot_scl

    def advance_gc_floor(self, floor: int) -> None:
        """Adopt a new PGMRPL-derived GC floor (monotonic)."""
        self.gc_floor = max(self.gc_floor, floor)

    def garbage_collect(self) -> tuple[int, int]:
        """Drop unneeded hot-log records and block versions.

        A hot-log record may be dropped once it is (a) coalesced into a
        block version (or this is a tail segment and it is backed up),
        (b) covered by a completed backup, and (c) below the GC floor --
        "garbage collects backed-up data that will no longer be referenced
        by an instance".  Block versions are dropped below the GC floor.
        Returns ``(records_dropped, versions_dropped)``.
        """
        # Log segments use the coalesced bound like fulls: a hot-log record
        # is only droppable once its effects are materialized here, so a
        # log store never discards history it might have to serve.
        materialized = (
            self.backed_up_upto
            if self.kind is SegmentKind.TAIL
            else self.coalesced_upto
        )
        record_limit = min(materialized, self.backed_up_upto, self.gc_floor)
        self.gc_horizon = max(self.gc_horizon, record_limit)
        index = self._lsn_index
        cut = bisect_right(index, record_limit)
        doomed = index[:cut]
        for lsn in doomed:
            del self.hot_log[lsn]
        self._lsn_index = index[cut:]
        versions_dropped = 0
        for chain in self.blocks.values():
            versions_dropped += chain.gc_below(self.gc_floor)
        self.stats["gc_records_dropped"] += len(doomed)
        self.stats["gc_versions_dropped"] += versions_dropped
        return (len(doomed), versions_dropped)

    def scrub(self) -> list[tuple[int, int]]:
        """Verify every block version checksum; returns (block, lsn) failures."""
        failures: list[tuple[int, int]] = []
        for block, chain in self.blocks.items():
            for lsn in chain.scrub():
                failures.append((block, lsn))
        self.stats["scrub_failures"] += len(failures)
        return failures

    def collect_scrub_versions(
        self, failures: Iterable[tuple[int, int]]
    ) -> tuple[tuple[int, int, tuple[tuple[str, object], ...]], ...]:
        """Clean copies of the requested ``(block, lsn)`` versions, for a
        peer's :class:`~repro.storage.messages.ScrubRepairResponse`.

        Versions this segment holds corrupt (or not at all) are omitted --
        never propagate a bad image to the requester.
        """
        out = []
        for block, lsn in failures:
            chain = self.blocks.get(block)
            if chain is None:
                continue
            version = chain.version_at(lsn)
            if version is None or version.lsn != lsn or not version.verify():
                continue
            out.append((
                block,
                lsn,
                tuple(sorted(version.image.items(), key=lambda kv: repr(kv[0]))),
            ))
        return tuple(out)

    def apply_scrub_versions(
        self,
        versions: Iterable[tuple[int, int, Iterable[tuple[str, object]]]],
    ) -> int:
        """Overwrite local corrupt versions with a peer's clean images;
        returns the number of versions repaired."""
        repaired = 0
        for block, lsn, image in versions:
            chain = self.blocks.get(block)
            if chain is None:
                continue
            for version in chain._versions:  # noqa: SLF001 - repair path
                if version.lsn == lsn:
                    version.image = dict(image)
                    version.checksum = image_checksum(version.image)
                    repaired += 1
        return repaired

    def repair_scrub_failures(
        self, authoritative: "Segment", failures: Iterable[tuple[int, int]]
    ) -> int:
        """Re-fetch corrupted versions from a healthy peer; returns count.

        In-process convenience (tests, offline tooling); the storage node's
        scrub tick uses the same collect/apply pair over the network.
        """
        return self.apply_scrub_versions(
            authoritative.collect_scrub_versions(failures)
        )

    # ------------------------------------------------------------------
    # Hydration (membership repair, section 4.2)
    # ------------------------------------------------------------------
    def hydrate_from(self, source: "Segment") -> int:
        """Bootstrap a new segment from a healthy peer; returns records copied.

        Tail repair "simply requires reading from the other members ...
        using our SCL to determine and fill in the gaps"; full repair also
        copies the materialized block baseline.
        """
        copied = 0
        if (
            self.kind is not SegmentKind.TAIL
            and source.kind is not SegmentKind.TAIL
        ):
            source.coalesce()
            for block, chain in source.blocks.items():
                if block not in self.blocks:
                    self.blocks[block] = BlockVersionChain(block)
                ours = self.blocks[block]
                for version in chain.versions:
                    if version.lsn > ours.latest_lsn:
                        ours.append(version.lsn, version.image)
            self.coalesced_upto = max(
                self.coalesced_upto, source.coalesced_upto
            )
        # Records at or below the source's GC horizon are no longer in its
        # hot log; they are covered by the copied block baseline (full) or
        # by the S3 backup (tail), so the chain re-anchors there.
        self.chain.rebase(source.gc_horizon)
        self.gc_horizon = max(self.gc_horizon, source.gc_horizon)
        for record in source.records_after(self.scl, limit=10**9):
            self.receive(record, via_gossip=True)
            copied += 1
        return copied

    @property
    def hot_log_size(self) -> int:
        return len(self.hot_log)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Segment {self.segment_id} pg={self.pg_index} "
            f"{self.kind.value} scl={self.scl}>"
        )
