"""Segments: the unit of failure, repair, and replication.

A segment stores "the redo log for their portion of the database volume as
well as coalesced data blocks" (section 2.1).  Section 4.2 splits the six
copies of a protection group into three **full** segments (redo log + data
blocks) and three **tail** segments (redo log only), cutting cost
amplification from 6x to roughly 3x.

The segment implements the storage half of Figure 2:

- activity 1/2: :meth:`receive` -- append to the hot log (update queue) and
  advance the SCL chain tracker,
- activity 3/5: :meth:`coalesce` -- sort/group hot-log records by block and
  apply redo to materialize block versions (full segments only; also done
  on demand by :meth:`read_block`),
- activity 6: :meth:`snapshot_for_backup` -- point-in-time state for S3,
- activity 7: :meth:`garbage_collect` -- drop hot-log records and block
  versions no longer needed,
- activity 8: :meth:`scrub` -- verify checksums.

Reads are only served between PGMRPL and SCL (section 3.4): "The storage
nodes will only accept read requests between PGMRPL and SCL."
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right
from dataclasses import replace
from typing import Iterable

from repro.core.consistency import SegmentChainTracker
from repro.core.lsn import NULL_LSN, TruncationRange
from repro.core.records import NO_BLOCK, ChainDigest, LogRecord, record_digest
from repro.errors import ConfigurationError, CorruptVersionError, ReadPointError
from repro.storage.page import BlockVersionChain, image_checksum


class SegmentKind(enum.Enum):
    """Full segments materialize data blocks; tail segments hold log only.

    LOG segments play the Taurus log-store role: durability-first copies
    that hold the redo log like tails but can materialize block versions
    *on demand*, so reads can fall back to the log tail while page stores
    hydrate asynchronously.
    """

    FULL = "full"
    TAIL = "tail"
    LOG = "log"


class Segment:
    """One copy of a protection group's log (and, if full, its blocks)."""

    def __init__(
        self,
        segment_id: str,
        pg_index: int,
        kind: SegmentKind = SegmentKind.FULL,
    ) -> None:
        self.segment_id = segment_id
        self.pg_index = pg_index
        self.kind = kind
        self.chain = SegmentChainTracker()
        #: The hot log / update queue: every not-yet-GC'd record by LSN.
        self.hot_log: dict[int, LogRecord] = {}
        #: Sorted mirror of ``hot_log``'s keys.  Receives are near-append
        #: (LSNs mostly arrive in order), so maintaining the index costs a
        #: binary search per record and saves a full sort per coalesce
        #: tick / gossip query / recovery scan.
        self._lsn_index: list[int] = []
        #: Struct-of-arrays mirror of the hot log, parallel to
        #: ``_lsn_index``: ``_records[i]`` is ``hot_log[_lsn_index[i]]`` and
        #: ``_digests[i]`` its ingest digest.  The coalesce / gossip /
        #: recovery / GC loops walk these flat arrays instead of doing a
        #: dict probe per record; every mutation site (receive, truncate,
        #: GC, restore, lose, corrupt) keeps all three aligned.
        self._records: list[LogRecord] = []
        self._digests: list[int] = []
        #: Materialized block version chains (full segments only).
        self.blocks: dict[int, BlockVersionChain] = {}
        #: Highest LSN whose redo has been applied to blocks.
        self.coalesced_upto = NULL_LSN
        #: Highest LSN included in a completed backup.
        self.backed_up_upto = NULL_LSN
        #: GC floor advertised by database instances (min over instances).
        self.gc_floor = NULL_LSN
        #: Highest LSN below which hot-log records may have been GC'd; a
        #: hydrating peer must take everything at or below this point from
        #: the materialized blocks / backup rather than the hot log.
        self.gc_horizon = NULL_LSN
        #: Truncation ranges installed by crash recoveries; records inside
        #: any of them are annulled and refused even if they arrive later
        #: ("even if in-flight asynchronous operations complete during the
        #: process of crash recovery, they are ignored").
        self.truncations: list[TruncationRange] = []
        #: Content digest of every hot-log record, captured at ingest.  The
        #: scrubber and the coalescer re-derive digests to detect bit-rot
        #: on stored records before their redo is ever applied.
        self.record_digests: dict[int, int] = {}
        #: Hot-log LSNs whose stored record failed digest verification;
        #: coalescing stops below the lowest one until peer repair replaces
        #: the record.
        self._corrupt_record_lsns: set[int] = set()
        #: Below this LSN the per-version chain structure is condensed
        #: (snapshot restore / hydration collapse history into a single
        #: baseline version), so cross-peer structural votes are only
        #: meaningful above it.  Monotone.
        self.granular_floor = NULL_LSN
        #: Rotating cursor for scrub block sampling (full coverage every
        #: ``ceil(len(blocks)/sample)`` scrub rounds, deterministically).
        self._scrub_cursor = 0
        self.stats = {
            "records_received": 0,
            "duplicates": 0,
            "annulled_refused": 0,
            "records_gossiped_in": 0,
            "coalesce_applications": 0,
            "gc_records_dropped": 0,
            "gc_versions_dropped": 0,
            "reads_served": 0,
            "scrub_failures": 0,
            "record_scrub_failures": 0,
            "versions_quarantined": 0,
            "votes_answered": 0,
        }

    # ------------------------------------------------------------------
    # Foreground: receive + acknowledge
    # ------------------------------------------------------------------
    @property
    def scl(self) -> int:
        return self.chain.scl

    def receive(self, record: LogRecord, via_gossip: bool = False) -> bool:
        """Store a record; returns True if the SCL advanced.

        Receiving is unconditional: "storage nodes do not have a vote in
        determining whether to accept a write, they must do so" (section
        2.3).  Duplicates are idempotently ignored.
        """
        if record.pg_index != self.pg_index:
            raise ConfigurationError(
                f"record for PG {record.pg_index} routed to segment "
                f"{self.segment_id} of PG {self.pg_index}"
            )
        if self.truncations and any(
            t.contains(record.lsn) for t in self.truncations
        ):
            self.stats["annulled_refused"] += 1
            return False
        lsn = record.lsn
        if lsn in self.hot_log or lsn <= self.chain.scl:
            self.stats["duplicates"] += 1
            return False
        digest = getattr(record, "_digest", None)
        if digest is None:
            digest = record_digest(record)
        self.hot_log[lsn] = record
        index = self._lsn_index
        if not index or lsn > index[-1]:
            # In-order arrival (the overwhelmingly common case): append.
            index.append(lsn)
            self._records.append(record)
            self._digests.append(digest)
        else:
            pos = bisect_left(index, lsn)
            index.insert(pos, lsn)
            self._records.insert(pos, record)
            self._digests.insert(pos, digest)
        self.record_digests[lsn] = digest
        self.stats["records_received"] += 1
        if via_gossip:
            self.stats["records_gossiped_in"] += 1
        return self.chain.offer(record.lsn, record.prev_pg_lsn)

    # ------------------------------------------------------------------
    # Background: sort/group + coalesce
    # ------------------------------------------------------------------
    def coalesce(self, upto: int | None = None) -> int:
        """Apply redo for chain-complete records to block versions.

        Only records at or below the SCL are eligible (the chain guarantees
        nothing is missing below it).  Tail segments never materialize;
        log segments materialize only on demand (``upto`` given), never in
        the background.  Returns the number of records applied.
        """
        if self.kind is SegmentKind.TAIL:
            return 0
        if self.kind is SegmentKind.LOG and upto is None:
            return 0
        limit = self.scl if upto is None else min(upto, self.scl)
        if limit <= self.coalesced_upto:
            return 0
        index = self._lsn_index
        lo = bisect_right(index, self.coalesced_upto)
        hi = bisect_right(index, limit)
        applied = 0
        records = self._records
        digests = self._digests
        blocks = self.blocks
        for i in range(lo, hi):
            record = records[i]
            # Verify the stored record against its ingest digest before
            # applying redo: bit-rot on a hot-log record must never be
            # materialized into a corrupt version carrying a *valid* image
            # checksum.  Coalescing stalls just below the damaged record
            # until peer repair replaces it.
            digest = getattr(record, "_digest", None)
            if digest is None:
                digest = record_digest(record)
            if digest != digests[i]:
                lsn = index[i]
                if lsn not in self._corrupt_record_lsns:
                    self._corrupt_record_lsns.add(lsn)
                    self.stats["record_scrub_failures"] += 1
                self.coalesced_upto = lsn - 1
                self.stats["coalesce_applications"] += applied
                return applied
            block = record.block
            if block != NO_BLOCK:
                chain = blocks.get(block)
                if chain is None:
                    chain = BlockVersionChain(block)
                    blocks[block] = chain
                if chain.latest_lsn < record.lsn:
                    # Payloads are pure: apply against the stored image view
                    # and hand ownership of the fresh image to the chain.
                    chain.append_owned(
                        record.lsn,
                        record.payload.apply(chain.latest_image_view()),
                    )
            applied += 1
        self.coalesced_upto = limit
        self.stats["coalesce_applications"] += applied
        return applied

    def _apply_record(self, record: LogRecord) -> None:
        if record.block == NO_BLOCK:
            return  # pure control records change no block
        chain = self.blocks.get(record.block)
        if chain is None:
            chain = BlockVersionChain(record.block)
            self.blocks[record.block] = chain
        if chain.latest_lsn >= record.lsn:
            return  # already applied (idempotence)
        new_image = record.payload.apply(chain.latest_image_view())
        chain.append_owned(record.lsn, new_image)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_block(self, block: int, read_point: int) -> dict:
        """Serve the latest durable version of ``block`` at ``read_point``.

        Materializes on demand ("materializing blocks in background or
        on-demand to satisfy a read request").  Raises
        :class:`ReadPointError` outside the [gc_floor, SCL] window and on
        tail segments (which hold no blocks), and
        :class:`CorruptVersionError` when the served version fails
        verification.
        """
        version = self.read_version(block, read_point)
        return dict(version.image) if version is not None else {}

    def read_version(self, block: int, read_point: int):
        """Guarded, verified read returning the served :class:`BlockVersion`
        (``None`` for a never-written block).

        Every read verifies the served version's checksum (DESIGN.md §12):
        raises :class:`CorruptVersionError` when it fails verification --
        quarantining the version so it can never be served or vouched for
        until repaired -- or when a corrupt hot-log record at or below the
        read point stalled coalescing (the image would be silently
        incomplete).
        """
        if self.kind is SegmentKind.TAIL:
            raise ReadPointError(read_point, 0, 0)
        if (
            self.kind is SegmentKind.LOG
            and self.coalesced_upto < self.gc_horizon
        ):
            # History below the GC horizon is gone from the hot log and was
            # never materialized here (e.g. after a backup restore); an
            # on-demand coalesce would produce silently incomplete images.
            # Refuse so the driver reroutes to a page store.
            raise ReadPointError(read_point, 0, 0)
        if not self.gc_floor <= read_point <= self.scl:
            raise ReadPointError(read_point, self.gc_floor, self.scl)
        self.coalesce(upto=read_point)
        if self._corrupt_record_lsns:
            blocking = min(self._corrupt_record_lsns)
            if blocking <= min(read_point, self.scl):
                raise CorruptVersionError(block, blocking)
        chain = self.blocks.get(block)
        version = chain.version_at(read_point) if chain is not None else None
        if version is not None and not version.verify():
            if not version.quarantined:
                version.quarantined = True
                self.stats["versions_quarantined"] += 1
            raise CorruptVersionError(block, version.lsn)
        self.stats["reads_served"] += 1
        return version

    def block_version_lsn(self, block: int, read_point: int) -> int:
        """LSN of the version that :meth:`read_block` would serve."""
        chain = self.blocks.get(block)
        if chain is None:
            return NULL_LSN
        version = chain.version_at(read_point)
        return version.lsn if version is not None else NULL_LSN

    # ------------------------------------------------------------------
    # Gossip support
    # ------------------------------------------------------------------
    def records_after(self, lsn: int, limit: int = 1024) -> list[LogRecord]:
        """Hot-log records above ``lsn``, in LSN order (gossip fill-ins).

        Verified on the way out: a record whose stored bytes no longer
        match the ingest digest is withheld (and remembered as corrupt for
        scrub repair) rather than shipped.  This matters most for lagging
        copies -- a Taurus page store draining the log, or a hydrating
        replacement -- which would otherwise ingest the rotted bytes as
        authentic and materialize them under a *valid* image checksum.
        The requester fills the hole from another peer's clean copy.
        """
        index = self._lsn_index
        lo = bisect_right(index, lsn)
        records = self._records
        digests = self._digests
        out: list[LogRecord] = []
        for i in range(lo, len(index)):
            if len(out) >= limit:
                break
            record = records[i]
            if record_digest(record) != digests[i]:
                l = index[i]
                if l not in self._corrupt_record_lsns:
                    self._corrupt_record_lsns.add(l)
                    self.stats["record_scrub_failures"] += 1
                continue
            out.append(record)
        return out

    def missing_below_scl_of(self, peer_scl: int) -> bool:
        """Would gossip with a peer at ``peer_scl`` teach this segment
        anything?"""
        return peer_scl > self.scl

    # ------------------------------------------------------------------
    # Recovery support
    # ------------------------------------------------------------------
    def chain_digests(self) -> tuple[ChainDigest, ...]:
        """Digests of every hot-log record (recovery scan payload)."""
        return tuple(ChainDigest.of(record) for record in self._records)

    def truncate(self, pg_point: int, truncation: TruncationRange) -> int:
        """Annul records above this PG's surviving point; returns count.

        ``pg_point`` is the highest surviving LSN routed to this PG (the
        per-PG anchor of the volume-wide truncation range); the segment
        chain is clamped there so post-recovery records re-link cleanly.
        """
        self.truncations.append(truncation)
        # Annul only the window (pg_point, truncation.last].  LSNs above the
        # range belong to post-recovery writer generations (the allocator
        # jumps above it): a TruncateRequest delivered late, to a segment
        # that was unreachable while recovery ran, must not destroy records
        # gossiped in from the new generation since.
        index = self._lsn_index
        lo = bisect_right(index, pg_point)
        hi = bisect_right(index, truncation.last)
        doomed = index[lo:hi]
        for lsn in doomed:
            del self.hot_log[lsn]
            self.record_digests.pop(lsn, None)
            self._corrupt_record_lsns.discard(lsn)
        del self._lsn_index[lo:hi]
        del self._records[lo:hi]
        del self._digests[lo:hi]
        self.chain.truncate(pg_point, truncation.last)
        for chain in self.blocks.values():
            chain.truncate_above(pg_point, truncation.last)
        if self.chain.scl <= truncation.last:
            self.coalesced_upto = min(self.coalesced_upto, pg_point)
        return len(doomed)

    # ------------------------------------------------------------------
    # Backup, GC, scrub
    # ------------------------------------------------------------------
    def snapshot_for_backup(self) -> dict:
        """Point-in-time snapshot shipped to the simulated S3."""
        self.coalesce()
        snapshot = {
            "segment_id": self.segment_id,
            "pg_index": self.pg_index,
            "scl": self.scl,
            "blocks": {
                block: chain.image_at(self.scl)
                for block, chain in self.blocks.items()
            },
            "hot_log_lsns": list(self._lsn_index),
        }
        return snapshot

    def mark_backed_up(self, upto: int) -> None:
        self.backed_up_upto = max(self.backed_up_upto, upto)

    def restore_from_snapshot(self, payload: dict) -> int:
        """Rebuild this (fresh) segment from an S3 backup snapshot.

        Point-in-time restore: the snapshot's coalesced block images become
        the baseline (one version each, stamped at the snapshot SCL); the
        chain re-anchors at the snapshot SCL and ``gc_horizon`` marks
        everything below it as complete-from-backup, so post-restore crash
        recovery and gossip hydration compose with the normal machinery.
        Returns the restored SCL.
        """
        snapshot_scl = payload["scl"]
        self.hot_log.clear()
        self._lsn_index.clear()
        self._records.clear()
        self._digests.clear()
        self.record_digests.clear()
        self._corrupt_record_lsns.clear()
        self.blocks = {}
        if self.kind is SegmentKind.FULL:
            for block, image in payload["blocks"].items():
                chain = BlockVersionChain(block)
                if image or snapshot_scl > NULL_LSN:
                    chain.append(snapshot_scl, dict(image))
                self.blocks[block] = chain
        self.chain.rebase(snapshot_scl)
        # A log segment restores no block baseline, so it must not claim
        # materialization through the snapshot point; the read_block guard
        # then routes reads to page stores until it adopts a baseline.
        if self.kind is not SegmentKind.LOG:
            self.coalesced_upto = snapshot_scl
        self.backed_up_upto = snapshot_scl
        self.gc_horizon = max(self.gc_horizon, snapshot_scl)
        # The restored baseline collapses per-block history into one
        # version at the snapshot SCL; structural votes below it would
        # disagree with peers that kept granular chains.
        self.granular_floor = max(self.granular_floor, snapshot_scl)
        return snapshot_scl

    def advance_gc_floor(self, floor: int) -> None:
        """Adopt a new PGMRPL-derived GC floor (monotonic)."""
        self.gc_floor = max(self.gc_floor, floor)

    def garbage_collect(self) -> tuple[int, int]:
        """Drop unneeded hot-log records and block versions.

        A hot-log record may be dropped once it is (a) coalesced into a
        block version (or this is a tail segment and it is backed up),
        (b) covered by a completed backup, and (c) below the GC floor --
        "garbage collects backed-up data that will no longer be referenced
        by an instance".  Block versions are dropped below the GC floor.
        Returns ``(records_dropped, versions_dropped)``.
        """
        # Log segments use the coalesced bound like fulls: a hot-log record
        # is only droppable once its effects are materialized here, so a
        # log store never discards history it might have to serve.
        materialized = (
            self.backed_up_upto
            if self.kind is SegmentKind.TAIL
            else self.coalesced_upto
        )
        record_limit = min(materialized, self.backed_up_upto, self.gc_floor)
        self.gc_horizon = max(self.gc_horizon, record_limit)
        index = self._lsn_index
        cut = bisect_right(index, record_limit)
        doomed = index[:cut]
        for lsn in doomed:
            del self.hot_log[lsn]
            self.record_digests.pop(lsn, None)
            self._corrupt_record_lsns.discard(lsn)
        del self._lsn_index[:cut]
        del self._records[:cut]
        del self._digests[:cut]
        versions_dropped = 0
        for chain in self.blocks.values():
            versions_dropped += chain.gc_below(self.gc_floor)
        self.stats["gc_records_dropped"] += len(doomed)
        self.stats["gc_versions_dropped"] += versions_dropped
        return (len(doomed), versions_dropped)

    def scrub(self) -> list[tuple[int, int]]:
        """Verify every block version checksum; returns (block, lsn) failures."""
        failures: list[tuple[int, int]] = []
        for block, chain in self.blocks.items():
            for lsn in chain.scrub():
                failures.append((block, lsn))
        self.stats["scrub_failures"] += len(failures)
        return failures

    def collect_scrub_versions(
        self, failures: Iterable[tuple[int, int]]
    ) -> tuple[tuple[int, int, tuple[tuple[str, object], ...]], ...]:
        """Clean copies of the requested ``(block, lsn)`` versions, for a
        peer's :class:`~repro.storage.messages.ScrubRepairResponse`.

        Versions this segment holds corrupt (or not at all) are omitted --
        never propagate a bad image to the requester.
        """
        out = []
        for block, lsn in failures:
            chain = self.blocks.get(block)
            if chain is None:
                continue
            version = chain.version_at(lsn)
            if version is None or version.lsn != lsn or not version.verify():
                continue
            out.append((
                block,
                lsn,
                tuple(sorted(version.image.items(), key=lambda kv: repr(kv[0]))),
            ))
        return tuple(out)

    def apply_scrub_versions(
        self,
        versions: Iterable[tuple[int, int, Iterable[tuple[str, object]]]],
    ) -> int:
        """Overwrite local corrupt versions with a peer's clean images;
        returns the number of versions repaired."""
        repaired = 0
        for block, lsn, image in versions:
            chain = self.blocks.get(block)
            if chain is None:
                continue
            for version in chain._versions:  # noqa: SLF001 - repair path
                if version.lsn == lsn:
                    version.image = dict(image)
                    version.checksum = image_checksum(version.image)
                    repaired += 1
        return repaired

    def repair_scrub_failures(
        self, authoritative: "Segment", failures: Iterable[tuple[int, int]]
    ) -> int:
        """Re-fetch corrupted versions from a healthy peer; returns count.

        In-process convenience (tests, offline tooling); the storage node's
        scrub tick uses the same collect/apply pair over the network.
        """
        return self.apply_scrub_versions(
            authoritative.collect_scrub_versions(failures)
        )

    # ------------------------------------------------------------------
    # Integrity: record scrub + quorum-vote repair (DESIGN.md §12)
    # ------------------------------------------------------------------
    def scrub_records(self) -> list[int]:
        """Verify every hot-log record against its ingest digest.

        Returns the LSNs of records whose stored bytes no longer match
        (bit-rot on the log itself); they are also remembered so coalescing
        refuses to apply them until peer repair replaces the record.
        """
        bad = self._corrupt_record_lsns
        index = self._lsn_index
        records = self._records
        digests = self._digests
        for i in range(len(index)):
            lsn = index[i]
            if lsn in bad:
                continue
            if record_digest(records[i]) != digests[i]:
                bad.add(lsn)
                self.stats["record_scrub_failures"] += 1
        return sorted(bad)

    @property
    def corrupt_record_lsns(self) -> frozenset[int]:
        return frozenset(self._corrupt_record_lsns)

    def vote_window(self) -> tuple[int, int]:
        """``(lo, hi]``: where this copy's version chains are granular and
        materialized, i.e. structurally comparable across peers.

        Below ``granular_floor`` history was condensed by restore or
        hydration; below ``gc_floor`` versions have been collected; above
        ``coalesced_upto`` nothing is materialized yet.
        """
        return (max(self.granular_floor, self.gc_floor), self.coalesced_upto)

    def scrub_sample_blocks(self, n: int) -> list[int]:
        """Next ``n`` blocks under the rotating scrub cursor.

        Sampling healthy-looking blocks is what catches corruption with a
        *valid* checksum (misdirected writes, lost-but-acked writes): only
        a cross-peer content vote can expose those, so the scrubber sweeps
        every block through the vote on a deterministic rotation.
        """
        if not self.blocks or n <= 0:
            return []
        order = sorted(self.blocks)
        start = self._scrub_cursor % len(order)
        picked = [
            order[(start + i) % len(order)]
            for i in range(min(n, len(order)))
        ]
        self._scrub_cursor = (start + len(picked)) % len(order)
        return picked

    def vote_request_blocks(
        self, blocks_of_interest: Iterable[int]
    ) -> tuple[tuple[int, int, int, tuple[tuple[int, int], ...]], ...]:
        """Build the per-block entries of an IntegrityVoteRequest.

        For each block: this copy's granular window and its retained
        ``(version_lsn, checksum)`` pairs inside it.  A checksum of 0 marks
        a version held but unvouchable (quarantined or locally corrupt) so
        a responder knows to attach its image.
        """
        lo, hi = self.vote_window()
        out = []
        for block in blocks_of_interest:
            chain = self.blocks.get(block)
            pairs = []
            if chain is not None:
                for version in chain._versions:  # noqa: SLF001 - scrub path
                    if lo < version.lsn <= hi:
                        pairs.append(
                            (
                                version.lsn,
                                version.checksum if version.verify() else 0,
                            )
                        )
            out.append((block, lo, hi, tuple(pairs)))
        return tuple(out)

    def answer_vote(
        self,
        blocks: Iterable[tuple[int, int, int, tuple[tuple[int, int], ...]]],
        record_lsns: Iterable[int] = (),
    ) -> tuple[
        tuple[tuple[int, int, int, tuple[tuple[int, int, object], ...]], ...],
        tuple[LogRecord, ...],
    ]:
        """Answer a peer's integrity vote (IntegrityVoteResponse payload).

        Per block: the overlap of our granular window with the requested
        one, and our *verified* versions inside it -- a corrupt or
        quarantined local version is never vouched for nor shipped.  Images
        ride along only where the requester's checksum was absent or
        different.  Clean hot-log records are attached for probed LSNs and
        for every differing version (so a lost write's record is restored
        together with its image).
        """
        self.stats["votes_answered"] += 1
        blocks = tuple(blocks)
        # Log stores materialize on demand so their chains can vouch: this
        # is the Taurus log-tail-replay fallback that breaks a 2-copy page
        # store tie.  Skip when history below the GC horizon was never
        # materialized here (same guard as read_block).
        if (
            self.kind is SegmentKind.LOG
            and self.coalesced_upto >= self.gc_horizon
        ):
            hi_needed = max((b[2] for b in blocks), default=NULL_LSN)
            if hi_needed > self.coalesced_upto:
                self.coalesce(upto=hi_needed)
        lo_own, hi_own = self.vote_window()
        reply_blocks = []
        want_records: set[int] = set(record_lsns)
        for block, req_lo, req_hi, pairs in blocks:
            cover_lo = max(lo_own, req_lo)
            cover_hi = min(hi_own, req_hi)
            if self.kind is SegmentKind.TAIL or cover_lo >= cover_hi:
                reply_blocks.append((block, cover_lo, cover_lo, ()))
                continue
            theirs = dict(pairs)
            chain = self.blocks.get(block)
            entries = []
            if chain is not None:
                for version in chain._versions:  # noqa: SLF001 - scrub path
                    if not cover_lo < version.lsn <= cover_hi:
                        continue
                    if not version.verify():
                        continue
                    image = None
                    if theirs.get(version.lsn) != version.checksum:
                        image = tuple(
                            sorted(
                                version.image.items(),
                                key=lambda kv: repr(kv[0]),
                            )
                        )
                        want_records.add(version.lsn)
                    entries.append((version.lsn, version.checksum, image))
            reply_blocks.append((block, cover_lo, cover_hi, tuple(entries)))
        records = []
        for lsn in sorted(want_records):
            record = self.hot_log.get(lsn)
            if (
                record is not None
                and record_digest(record) == self.record_digests.get(lsn)
            ):
                records.append(record)
        return tuple(reply_blocks), tuple(records)

    def repair_version(
        self, block: int, lsn: int, image: Iterable[tuple[str, object]]
    ) -> bool:
        """Adopt a majority-agreed image: overwrite the local version in
        place (clearing quarantine) or insert it mid-chain (lost write)."""
        if any(t.contains(lsn) for t in self.truncations):
            return False
        chain = self.blocks.get(block)
        if chain is None:
            chain = BlockVersionChain(block)
            self.blocks[block] = chain
        version = chain.version_at(lsn)
        if version is not None and version.lsn == lsn:
            version.image = dict(image)
            version.checksum = image_checksum(version.image)
            version.quarantined = False
            return True
        chain.insert(lsn, dict(image))
        return True

    def drop_version(self, block: int, lsn: int) -> bool:
        """Remove a version the peer majority does not have (the local
        artifact of a misdirected write)."""
        chain = self.blocks.get(block)
        return chain.remove_version(lsn) if chain is not None else False

    def restore_record(self, record: LogRecord) -> bool:
        """Re-adopt a clean peer copy of a hot-log record.

        Replaces a bit-rotted stored record, or refills the record a
        lost-but-acked write dropped.  Bypasses :meth:`receive`'s duplicate
        guard (the LSN is typically at or below our SCL already) but still
        honours truncation annulment and the GC horizon.
        """
        if any(t.contains(record.lsn) for t in self.truncations):
            return False
        if record.lsn <= self.gc_horizon:
            return False
        digest = record_digest(record)
        existing = record.lsn in self.hot_log
        self.hot_log[record.lsn] = record
        pos = bisect_left(self._lsn_index, record.lsn)
        if existing:
            self._records[pos] = record
            self._digests[pos] = digest
        else:
            self._lsn_index.insert(pos, record.lsn)
            self._records.insert(pos, record)
            self._digests.insert(pos, digest)
        self.record_digests[record.lsn] = digest
        self._corrupt_record_lsns.discard(record.lsn)
        return True

    def corrupt_record(self, lsn: int, payload=None) -> LogRecord | None:
        """Injector API: silently mangle the stored hot-log record at
        ``lsn``.  The digest captured at ingest is deliberately left
        untouched -- that mismatch is what :meth:`scrub_records` and the
        verified :meth:`coalesce` detect.  Returns the mangled record, or
        ``None`` if the LSN is not in the hot log.
        """
        record = self.hot_log.get(lsn)
        if record is None:
            return None
        mangled = replace(
            record,
            payload=("__bit_rot__", lsn) if payload is None else payload,
        )
        self.hot_log[lsn] = mangled
        # Keep the flat mirror pointing at the mangled object, or the
        # verified coalesce/gossip loops would keep reading the clean copy
        # and the injected rot would be undetectable by design.
        pos = bisect_left(self._lsn_index, lsn)
        if pos < len(self._lsn_index) and self._lsn_index[pos] == lsn:
            self._records[pos] = mangled
        return mangled

    def lose_record(self, lsn: int) -> LogRecord | None:
        """Injector API: drop an acknowledged record -- and its
        materialized version -- as if the disk write never happened.

        The SCL keeps covering ``lsn``; that is the fault being modelled
        (a lost-but-acked write): gossip never re-fetches below the SCL,
        so only a cross-peer integrity vote can notice the hole.  Returns
        the dropped record, or ``None`` if the LSN is not in the hot log.
        """
        record = self.hot_log.pop(lsn, None)
        if record is None:
            return None
        index = self._lsn_index
        pos = bisect_left(index, lsn)
        if pos < len(index) and index[pos] == lsn:
            del index[pos]
            del self._records[pos]
            del self._digests[pos]
        self.record_digests.pop(lsn, None)
        self._corrupt_record_lsns.discard(lsn)
        chain = self.blocks.get(record.block)
        if chain is not None:
            chain.remove_version(lsn)
        return record

    # ------------------------------------------------------------------
    # Hydration (membership repair, section 4.2)
    # ------------------------------------------------------------------
    def hydrate_from(self, source: "Segment") -> int:
        """Bootstrap a new segment from a healthy peer; returns records copied.

        Tail repair "simply requires reading from the other members ...
        using our SCL to determine and fill in the gaps"; full repair also
        copies the materialized block baseline.
        """
        copied = 0
        if (
            self.kind is not SegmentKind.TAIL
            and source.kind is not SegmentKind.TAIL
        ):
            source.coalesce()
            for block, chain in source.blocks.items():
                if block not in self.blocks:
                    self.blocks[block] = BlockVersionChain(block)
                ours = self.blocks[block]
                for version in chain.versions:
                    if version.lsn > ours.latest_lsn:
                        ours.append(version.lsn, version.image)
            self.coalesced_upto = max(
                self.coalesced_upto, source.coalesced_upto
            )
        # Records at or below the source's GC horizon are no longer in its
        # hot log; they are covered by the copied block baseline (full) or
        # by the S3 backup (tail), so the chain re-anchors there.
        self.chain.rebase(source.gc_horizon)
        self.gc_horizon = max(self.gc_horizon, source.gc_horizon)
        # Copied chains inherit the source's structure only inside its own
        # granular window; below that (and below any pre-existing local
        # baseline) this copy is condensed relative to other peers.
        self.granular_floor = max(
            self.granular_floor, source.granular_floor, source.gc_horizon
        )
        for record in source.records_after(self.scl, limit=10**9):
            self.receive(record, via_gossip=True)
            copied += 1
        return copied

    @property
    def hot_log_size(self) -> int:
        return len(self.hot_log)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Segment {self.segment_id} pg={self.pg_index} "
            f"{self.kind.value} scl={self.scl}>"
        )
