"""Pluggable storage backends: segment layout, quorum, and routing policy.

The storage tier's *mechanisms* (segments, chain trackers, gossip, epochs,
recovery scans) are backend-agnostic; what varies between designs is the
*policy*: how many copies a protection group keeps, which of them sit on
the synchronous durability path, which serve reads, and what quorum rule
acknowledges a commit.  A :class:`StorageBackend` bundles those choices so
``repro.db.cluster``/``driver``, ``repro.storage.metadata``, and
``repro.repair.planner`` ask the backend instead of assuming Aurora's
symmetric 4/6 layout.

Two backends are provided:

- :class:`AuroraBackend` -- the paper's design: six copies, two per AZ,
  4/6 write / 3/6 read quorum (optionally the section-4.2 full/tail mix).
  This is the default and is byte-identical to the pre-backend behaviour.
- :class:`TaurusBackend` -- the log/page split of "Taurus Database: How to
  be Fast, Available, and Frugal in the Cloud" (PAPERS.md): three log
  stores (one per AZ) form the synchronous durability path with a 2/3
  write *and* read quorum, while two page stores hydrate asynchronously
  from the log via gossip and serve steady-state reads.  Writes touch only
  the three log stores, so write amplification drops from 6x to 3x; reads
  fall back to the log tail (on-demand materialization) whenever the page
  stores lag or fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quorum import QuorumConfig, group_transition_config
from repro.errors import ConfigurationError
from repro.storage.segment import SegmentKind

#: The simulated availability zones (one region, three AZs -- section 2.2).
AZS = ("az1", "az2", "az3")


@dataclass(frozen=True)
class SlotSpec:
    """Placement template for one membership slot."""

    az: str
    kind: SegmentKind


@dataclass(frozen=True)
class ReplicationConfig:
    """The replica arithmetic of one backend, for cost/durability models.

    ``sync_write_copies`` counts the copies on the synchronous durability
    path (every copy a commit's redo is shipped to before acknowledgement);
    ``write_loss_failures``/``read_loss_failures`` are the minimum number
    of *sync-path* copy failures that break the write/read quorum; and
    ``segments_per_az`` is how many sync-path copies share one AZ (the
    correlated-failure exposure).
    """

    copies_per_pg: int
    sync_write_copies: int
    full_copies: int
    log_only_copies: int
    write_loss_failures: int
    read_loss_failures: int
    segments_per_az: int
    az_count: int = 3


class StorageBackend:
    """Policy object consulted by the cluster, driver, and repair planner.

    Methods taking a ``metadata`` argument receive the volume's
    :class:`~repro.storage.metadata.StorageMetadataService` (placement and
    membership directory); backends are stateless and shareable.
    """

    name = "abstract"

    def replication(self) -> ReplicationConfig:
        raise NotImplementedError

    def segment_layout(self) -> tuple[SlotSpec, ...]:
        """Per-slot AZ and segment kind for a fresh protection group."""
        raise NotImplementedError

    @property
    def slot_count(self) -> int:
        return len(self.segment_layout())

    def membership_quorum_config(
        self, metadata, pg_index: int, state
    ) -> QuorumConfig:
        """The proved quorum config for a (possibly dual) membership."""
        raise NotImplementedError

    def write_targets(self, metadata, pg_index: int):
        """Members on the synchronous write path, or ``None`` for all."""
        return None

    def read_fallback_members(self, metadata, pg_index: int) -> frozenset[str]:
        """Members that can serve reads when no full copy is caught up."""
        return frozenset()

    def tracked_members(self, metadata, pg_index: int):
        """Members whose acks feed PGCL bookkeeping, or ``None`` for the
        quorum config's own members."""
        return None

    def baseline_sources(self, metadata, pg_index: int) -> list:
        """Placements a hydrating replacement may pull a baseline from."""
        return metadata.full_segments_of_pg(pg_index)

    def max_tolerated_kills(self) -> int:
        """Segment crashes per PG the write quorum provably survives."""
        return self.replication().write_loss_failures - 1

    def _slot_kinds(self, metadata, state) -> dict[str, SegmentKind]:
        """Kind per member, inferred from placements slot-by-slot.

        A replacement candidate inherits its slot's kind, so the lookup
        works even before (or after) either alternative is placed, as long
        as one of them is.
        """
        kinds: dict[str, SegmentKind] = {}
        for alternatives in state.slots:
            kind = None
            for member in alternatives:
                try:
                    kind = metadata.placement(member).kind
                    break
                except ConfigurationError:
                    continue
            if kind is None:
                raise ConfigurationError(
                    f"no placement known for any of {alternatives}"
                )
            for member in alternatives:
                kinds[member] = kind
        return kinds


class AuroraBackend(StorageBackend):
    """The paper's 6-way symmetric quorum (default backend).

    ``full_tail=True`` selects the section-4.2 cost mix (3 full + 3 tail
    segments); the quorum policy for that mix is installed by the cluster's
    full/tail metadata service exactly as before this abstraction existed.
    """

    name = "aurora"

    def __init__(self, full_tail: bool = False) -> None:
        self.full_tail = full_tail

    def replication(self) -> ReplicationConfig:
        return ReplicationConfig(
            copies_per_pg=6,
            sync_write_copies=6,
            full_copies=3 if self.full_tail else 6,
            log_only_copies=3 if self.full_tail else 0,
            write_loss_failures=3,
            read_loss_failures=4,
            segments_per_az=2,
        )

    def segment_layout(self) -> tuple[SlotSpec, ...]:
        specs = []
        for slot in range(6):
            az = AZS[slot % 3]
            # Full slots 0, 2, 4: one full segment per AZ (section 4.2).
            kind = (
                SegmentKind.FULL
                if not self.full_tail or slot in (0, 2, 4)
                else SegmentKind.TAIL
            )
            specs.append(SlotSpec(az=az, kind=kind))
        return tuple(specs)

    def membership_quorum_config(
        self, metadata, pg_index: int, state
    ) -> QuorumConfig:
        return state.quorum_config()


class TaurusBackend(StorageBackend):
    """Taurus's log/page split: 3 log stores (sync) + 2 page stores (async).

    Durability runs entirely through the log stores: a commit is
    acknowledged once 2 of the 3 log stores hold the redo (majority, so
    write/write and read/write overlap hold; one log store -- or a whole
    AZ -- can be down without blocking writes).  The page stores never
    appear in the quorum config; they drain the log via the ordinary
    gossip machinery and acknowledge what they have, which the driver's
    bookkeeping uses to route steady-state reads to them.  When neither
    page store is caught up to a read point, the read falls back to a log
    store, which materializes the requested block on demand from its log
    tail.
    """

    name = "taurus"

    #: Slots 0-2: the replicated log, one store per AZ.  Slots 3-4: the
    #: two page stores (different AZs, so one AZ loss costs at most one).
    _LAYOUT = (
        SlotSpec(az="az1", kind=SegmentKind.LOG),
        SlotSpec(az="az2", kind=SegmentKind.LOG),
        SlotSpec(az="az3", kind=SegmentKind.LOG),
        SlotSpec(az="az2", kind=SegmentKind.FULL),
        SlotSpec(az="az3", kind=SegmentKind.FULL),
    )

    def replication(self) -> ReplicationConfig:
        return ReplicationConfig(
            copies_per_pg=5,
            sync_write_copies=3,
            full_copies=2,
            log_only_copies=3,
            write_loss_failures=2,
            read_loss_failures=2,
            segments_per_az=1,
        )

    def segment_layout(self) -> tuple[SlotSpec, ...]:
        return self._LAYOUT

    def membership_quorum_config(
        self, metadata, pg_index: int, state
    ) -> QuorumConfig:
        """Majority-of-log-stores quorum, transition-aware.

        Each member group (cartesian expansion over slots) is restricted
        to its log-store members; the write quorum is the AND of each
        group's majority and the read quorum the OR (exactly the shape of
        Aurora's transition config, over the log subset).  Page-store
        replacements leave the config unchanged -- they are invisible to
        the durability quorum.
        """
        kinds = self._slot_kinds(metadata, state)
        log_groups = []
        for group in state.member_groups():
            logs = frozenset(
                m for m in group if kinds[m] is SegmentKind.LOG
            )
            if not logs:
                raise ConfigurationError(
                    f"PG {pg_index} membership has no log stores"
                )
            if logs not in log_groups:
                log_groups.append(logs)
        return group_transition_config(log_groups)

    def write_targets(self, metadata, pg_index: int):
        state = metadata.membership(pg_index)
        kinds = self._slot_kinds(metadata, state)
        return frozenset(
            m for m in state.members if kinds[m] is SegmentKind.LOG
        )

    def read_fallback_members(self, metadata, pg_index: int) -> frozenset[str]:
        targets = self.write_targets(metadata, pg_index)
        return targets if targets is not None else frozenset()

    def tracked_members(self, metadata, pg_index: int):
        return metadata.membership(pg_index).members

    def baseline_sources(self, metadata, pg_index: int) -> list:
        return [
            p
            for p in metadata.segments_of_pg(pg_index)
            if p.kind is not SegmentKind.TAIL
        ]


#: Registry consulted by :func:`resolve_backend` and the benchmark /
#: conformance fixtures.
BACKENDS = {
    "aurora": AuroraBackend,
    "taurus": TaurusBackend,
}


def resolve_backend(backend, full_tail: bool = False) -> StorageBackend:
    """Turn a name or backend instance into a backend instance.

    ``full_tail`` applies only to the Aurora backend (the section-4.2
    segment mix is an Aurora cost option, not a separate backend).
    """
    if isinstance(backend, StorageBackend):
        return backend
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown storage backend {backend!r}; "
            f"known: {sorted(BACKENDS)}"
        ) from None
    if cls is AuroraBackend:
        return AuroraBackend(full_tail=full_tail)
    if full_tail:
        raise ConfigurationError(
            f"full_tail is an Aurora option; backend {backend!r} has its "
            "own layout"
        )
    return cls()
