"""Volume geometry: protection groups concatenated into one address space.

"Protection groups are concatenated together to form a storage volume, which
has a one to one relationship with the database instance." (section 2.1)

Blocks are addressed by a single global block number; the geometry maps a
block to its protection group by simple range partitioning.  Growing the
volume appends protection groups and increments the **geometry epoch**
(section 4.1): "we also use epochs to manage volume growth, using a volume
geometry epoch that increments with each protection group added".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, VolumeGeometryError

#: Paper scale: segments hold 10 GB; a 64 TB volume has 6,400 PGs and
#: 38,400 segments.  The simulator uses far fewer blocks per PG, but the
#: analysis module uses these constants for the durability arithmetic.
SEGMENT_SIZE_GB = 10
COPIES_PER_PG = 6


@dataclass
class VolumeGeometry:
    """Block-to-protection-group routing for one volume."""

    blocks_per_pg: int
    pg_count: int
    #: Segment copies per protection group (backend-dependent; Aurora's 6
    #: by default, Taurus uses 3 log stores + 2 page stores = 5).
    copies_per_pg: int = COPIES_PER_PG
    geometry_epoch: int = 1
    growth_log: list[tuple[int, int]] = field(default_factory=list)
    #: Optional :class:`repro.audit.Auditor` observer (zero-cost when None).
    audit_probe: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.blocks_per_pg < 1 or self.pg_count < 1:
            raise ConfigurationError(
                f"need blocks_per_pg >= 1 and pg_count >= 1, got "
                f"({self.blocks_per_pg}, {self.pg_count})"
            )

    @property
    def total_blocks(self) -> int:
        return self.blocks_per_pg * self.pg_count

    def pg_of_block(self, block: int) -> int:
        """Protection group index owning ``block``."""
        if not 0 <= block < self.total_blocks:
            raise VolumeGeometryError(
                f"block {block} outside volume of {self.total_blocks} blocks"
            )
        return block // self.blocks_per_pg

    def blocks_of_pg(self, pg_index: int) -> range:
        if not 0 <= pg_index < self.pg_count:
            raise VolumeGeometryError(
                f"PG {pg_index} outside volume of {self.pg_count} PGs"
            )
        start = pg_index * self.blocks_per_pg
        return range(start, start + self.blocks_per_pg)

    def grow(self, additional_pgs: int = 1) -> int:
        """Append protection groups; returns the new geometry epoch."""
        if additional_pgs < 1:
            raise ConfigurationError(
                f"additional_pgs must be >= 1, got {additional_pgs}"
            )
        old_epoch = self.geometry_epoch
        self.pg_count += additional_pgs
        self.geometry_epoch += 1
        self.growth_log.append((self.geometry_epoch, self.pg_count))
        if self.audit_probe is not None:
            self.audit_probe.on_geometry_growth(
                old_epoch, self.geometry_epoch, self.pg_count
            )
        return self.geometry_epoch

    def segment_count(self) -> int:
        return self.pg_count * self.copies_per_pg
