"""Simulated Amazon S3: the backup/restore archive.

The real system continuously backs segments up to S3 (Figure 2, activity 6)
and garbage-collects hot-log state that a backup already covers (activity
7).  The protocol only depends on the *control flow* -- what has been backed
up to where, and up to which LSN -- so the archive is an in-memory versioned
object store with deterministic behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BackupObject:
    """One archived snapshot of a segment."""

    key: str
    segment_id: str
    pg_index: int
    scl: int
    taken_at: float
    payload: dict


@dataclass
class SimulatedS3:
    """An in-memory stand-in for the S3 backup bucket."""

    objects: dict[str, BackupObject] = field(default_factory=dict)
    puts: int = 0
    deletes: int = 0

    def put_snapshot(
        self,
        segment_id: str,
        pg_index: int,
        scl: int,
        taken_at: float,
        payload: dict,
    ) -> BackupObject:
        """Archive a segment snapshot; newer snapshots shadow older ones."""
        key = f"{segment_id}/{scl}"
        obj = BackupObject(
            key=key,
            segment_id=segment_id,
            pg_index=pg_index,
            scl=scl,
            taken_at=taken_at,
            payload=payload,
        )
        self.objects[key] = obj
        self.puts += 1
        return obj

    def latest_snapshot(self, segment_id: str) -> BackupObject | None:
        """Most recent (highest-SCL) snapshot for a segment."""
        best: BackupObject | None = None
        for obj in self.objects.values():
            if obj.segment_id != segment_id:
                continue
            if best is None or obj.scl > best.scl:
                best = obj
        return best

    def snapshots_for_pg(self, pg_index: int) -> list[BackupObject]:
        return sorted(
            (o for o in self.objects.values() if o.pg_index == pg_index),
            key=lambda o: (o.segment_id, o.scl),
        )

    def collect_garbage(self, keep_latest_per_segment: int = 2) -> int:
        """Drop all but the newest N snapshots per segment; returns count.

        Models activity 7: "garbage collects backed-up data that will no
        longer be referenced by an instance".
        """
        by_segment: dict[str, list[BackupObject]] = {}
        for obj in self.objects.values():
            by_segment.setdefault(obj.segment_id, []).append(obj)
        removed = 0
        for snapshots in by_segment.values():
            snapshots.sort(key=lambda o: o.scl, reverse=True)
            for stale in snapshots[keep_latest_per_segment:]:
                del self.objects[stale.key]
                self.deletes += 1
                removed += 1
        return removed

    def __len__(self) -> int:
        return len(self.objects)
