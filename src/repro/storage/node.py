"""The storage-node actor: Figure 2 wired to the simulated network.

Foreground path (the *only* latency a database write observes):

1. receive redo records (:class:`WriteBatch`),
2. append them to the update queue / hot log, and
3. ACKnowledge back with the segment's SCL after a local disk write.

Everything else happens in background ticks, each independent and crash-safe:

4. GOSSIP with peers to fill chain holes,
5. COALESCE records into data-block versions,
6. BACKUP point-in-time snapshots to (simulated) S3,
7. GARBAGE COLLECT hot-log records and block versions, and
8. SCRUB checksums, repairing from a healthy peer on mismatch.

Every request is epoch-validated first; stale callers get
:class:`RequestRejected` and must refresh ("Aurora ... just changes the
locks on the door").  The node never votes: "storage nodes do not have a
vote in determining whether to accept a write, they must do so."
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.epochs import EpochRegistry
from repro.errors import ReadPointError, StaleEpochError
from repro.sim.latency import LatencyModel, disk_service
from repro.sim.network import Actor, Message
from repro.storage.backup import SimulatedS3
from repro.storage.messages import (
    BaselineRequest,
    BaselineResponse,
    EpochWrite,
    EpochWriteAck,
    GCFloorUpdate,
    GossipQuery,
    GossipResponse,
    ReadBlockRequest,
    ReadBlockResponse,
    RecoveryScanRequest,
    RecoveryScanResponse,
    RequestRejected,
    ScrubRepairRequest,
    ScrubRepairResponse,
    TruncateAck,
    TruncateRequest,
    WriteAck,
    WriteBatch,
)
from repro.storage.metadata import StorageMetadataService
from repro.storage.page import BlockVersionChain
from repro.storage.segment import Segment, SegmentKind


@dataclass
class StorageNodeConfig:
    """Tunable behaviour of a storage node (times in ms)."""

    disk: LatencyModel | None = None
    gossip_interval: float = 20.0
    coalesce_interval: float = 10.0
    backup_interval: float = 500.0
    gc_interval: float = 200.0
    scrub_interval: float = 2_000.0
    #: Records returned per gossip response (bounds message size).
    gossip_batch_limit: int = 512
    #: A gossip RPC unanswered after this long is reported to the health
    #: monitor (when one is attached) as negative evidence about the peer.
    gossip_timeout_ms: float = 60.0
    enable_background: bool = True

    def __post_init__(self) -> None:
        if self.disk is None:
            self.disk = disk_service()


class StorageNode(Actor):
    """One simulated storage node hosting one segment.

    (The real fleet multiplexes many segments per node; one-per-node keeps
    the failure model transparent -- crashing a node crashes exactly one
    segment -- without changing any protocol behaviour.)
    """

    def __init__(
        self,
        segment: Segment,
        metadata: StorageMetadataService,
        s3: SimulatedS3,
        rng: random.Random,
        config: StorageNodeConfig | None = None,
    ) -> None:
        super().__init__(name=segment.segment_id)
        self.segment = segment
        self.metadata = metadata
        self.s3 = s3
        self.rng = rng
        self.config = config if config is not None else StorageNodeConfig()
        self.epochs = EpochRegistry()
        #: PGMRPL per database instance that has opened the volume.
        self._instance_read_floors: dict[str, int] = {}
        self.counters = {
            "write_batches": 0,
            "acks_sent": 0,
            "rejections_sent": 0,
            "gossip_rounds": 0,
            "gossip_records_pulled": 0,
            "backups_taken": 0,
            "gc_runs": 0,
            "scrub_runs": 0,
            "scrub_repairs": 0,
            "reads_answered": 0,
        }
        self._started = False
        #: Per-instance fire time of the latest scheduled write ACK.  The
        #: SCL is read when the ACK leaves, so an ACK already scheduled at
        #: or after a new batch's disk-completion time covers that batch
        #: too -- back-to-back boxcars share one ACK instead of each
        #: paying for their own wire message.
        self._pending_ack_time: dict[str, float] = {}
        #: Optional :class:`repro.repair.HealthMonitor` observer.  Peer
        #: liveness evidence from gossip (replies, queries, timeouts) is
        #: reported here; ``None`` costs one attribute load, exactly like
        #: ``audit_probe``.
        self.health_probe = None
        #: Optional :class:`repro.repair.DbHealthMonitor` observer: the
        #: sending instance on every write batch and GC-floor update is
        #: database-tier liveness evidence.
        self.db_health_probe = None

    def attach_audit_probe(self, probe) -> None:
        """Arm a :class:`repro.audit.Auditor`: the node's epoch registry and
        segment chain report every transition (no-op cost when unarmed)."""
        self.epochs.audit_probe = probe
        self.epochs.audit_owner = self.name
        chain = self.segment.chain
        chain.audit_probe = probe
        chain.audit_owner = self.name
        probe.register_segment(self.name, self.segment.pg_index)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin background activity (call after attaching to the network)."""
        if self._started or not self.config.enable_background:
            self._started = True
            return
        self._started = True
        self._schedule_tick(self.config.gossip_interval, self._gossip_tick)
        self._schedule_tick(self.config.coalesce_interval, self._coalesce_tick)
        self._schedule_tick(self.config.backup_interval, self._backup_tick)
        self._schedule_tick(self.config.gc_interval, self._gc_tick)
        self._schedule_tick(self.config.scrub_interval, self._scrub_tick)

    def _schedule_tick(self, interval: float, tick) -> None:
        """Reschedule ``tick`` forever with +/-20% jitter (avoids lockstep)."""
        delay = interval * self.rng.uniform(0.8, 1.2)

        def _fire() -> None:
            if self.network is not None and self.network.is_up(self.name):
                tick()
            self._schedule_tick(interval, tick)

        self.loop.schedule(delay, _fire)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, WriteBatch):
            self._on_write_batch(message, payload)
        elif isinstance(payload, ReadBlockRequest):
            self._on_read_block(message, payload)
        elif isinstance(payload, GossipQuery):
            self._on_gossip_query(message, payload)
        elif isinstance(payload, RecoveryScanRequest):
            self._on_recovery_scan(message, payload)
        elif isinstance(payload, TruncateRequest):
            self._on_truncate(message, payload)
        elif isinstance(payload, EpochWrite):
            self._on_epoch_write(message, payload)
        elif isinstance(payload, GCFloorUpdate):
            self._on_gc_floor(payload)
        elif isinstance(payload, BaselineRequest):
            self._on_baseline(message, payload)
        elif isinstance(payload, ScrubRepairRequest):
            self._on_scrub_request(message, payload)
        # Unknown payloads are dropped silently, like any real node.

    def _check_epochs(self, message: Message, epochs) -> bool:
        """Validate a request's stamp; reject-and-False when stale."""
        try:
            self.epochs.check_and_learn(epochs)
            return True
        except StaleEpochError as exc:
            self.counters["rejections_sent"] += 1
            rejection = RequestRejected(
                segment_id=self.name,
                reason=str(exc),
                current_epochs=self.epochs.current,
            )
            if message.request_id is not None:
                self.network.reply(message, rejection)
            else:
                self.network.send(self.name, message.src, rejection)
            return False

    # ------------------------------------------------------------------
    # Foreground: writes (activities 1, 2 + ACK)
    # ------------------------------------------------------------------
    def _on_write_batch(self, message: Message, batch: WriteBatch) -> None:
        if self.db_health_probe is not None:
            # Redo-stream advance: proof the sending instance is alive,
            # whether or not its epochs are current.
            self.db_health_probe.note_signal(batch.instance_id)
        if not self._check_epochs(message, batch.epochs):
            return
        self.counters["write_batches"] += 1
        for record in batch.records:
            self.segment.receive(record)
        self._adopt_read_floor(batch.instance_id, batch.pgmrpl)
        # The ACK leaves after the local durable write completes.
        disk_delay = self.config.disk.sample(self.rng)
        self._schedule_ack(batch.instance_id, self.loop.now + disk_delay)

    def _schedule_ack(self, instance_id: str, fire_at: float) -> None:
        if self._pending_ack_time.get(instance_id, -1.0) >= fire_at:
            return  # a later-or-equal pending ACK already covers this batch
        self._pending_ack_time[instance_id] = fire_at
        self.loop.schedule_at(fire_at, self._fire_ack, instance_id, fire_at)

    def _fire_ack(self, instance_id: str, fire_at: float) -> None:
        if self._pending_ack_time.get(instance_id) == fire_at:
            del self._pending_ack_time[instance_id]
        self._send_ack(instance_id)

    def _send_ack(self, instance_id: str) -> None:
        self.counters["acks_sent"] += 1
        self.network.send(
            self.name,
            instance_id,
            WriteAck(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                scl=self.segment.scl,
                epochs=self.epochs.current,
            ),
        )

    # ------------------------------------------------------------------
    # Foreground: reads
    # ------------------------------------------------------------------
    def _on_read_block(self, message: Message, request: ReadBlockRequest) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        disk_delay = self.config.disk.sample(self.rng)
        self.loop.schedule(disk_delay, self._serve_read, message, request)

    def _serve_read(self, message: Message, request: ReadBlockRequest) -> None:
        try:
            image = self.segment.read_block(request.block, request.read_point)
        except ReadPointError as exc:
            self.network.reply(
                message,
                RequestRejected(
                    segment_id=self.name,
                    reason=str(exc),
                    current_epochs=self.epochs.current,
                ),
            )
            return
        self.counters["reads_answered"] += 1
        self.network.reply(
            message,
            ReadBlockResponse(
                segment_id=self.name,
                block=request.block,
                image=tuple(sorted(image.items(), key=lambda kv: repr(kv[0]))),
                version_lsn=self.segment.block_version_lsn(
                    request.block, request.read_point
                ),
            ),
        )

    # ------------------------------------------------------------------
    # Background: gossip (activity 4)
    # ------------------------------------------------------------------
    def _gossip_tick(self) -> None:
        peers = self.metadata.peers_of(self.name)
        if not peers:
            return
        peer = self.rng.choice(peers)
        self.counters["gossip_rounds"] += 1
        query = GossipQuery(
            from_segment=self.name,
            pg_index=self.segment.pg_index,
            scl=self.segment.scl,
            epochs=self.epochs.current,
        )
        future = self.network.rpc(self.name, peer, query)
        future.add_done_callback(self._on_gossip_reply)
        if self.health_probe is not None:
            self.loop.schedule(
                self.config.gossip_timeout_ms,
                self._report_gossip_timeout, peer, future,
            )

    def _report_gossip_timeout(self, peer: str, future) -> None:
        if not future.done and self.health_probe is not None:
            self.health_probe.note_peer_timeout(peer)

    def _on_gossip_reply(self, future) -> None:
        response = future.result()
        if self.health_probe is not None:
            # Any reply -- including a rejection -- proves the peer alive.
            segment_id = getattr(response, "segment_id", None)
            if segment_id is not None:
                self.health_probe.note_peer_alive(segment_id)
        if not isinstance(response, GossipResponse):
            return  # rejected: our epochs were stale; we learn via writes
        scl_before = self.segment.scl
        for record in response.records:
            self.segment.receive(record, via_gossip=True)
        self.counters["gossip_records_pulled"] += len(response.records)
        for instance_id in response.known_instances:
            self._instance_read_floors.setdefault(instance_id, 0)
        if response.gc_horizon > self.segment.scl:
            # We fell behind the peer's GC horizon: the records we are
            # missing no longer exist in any hot log.  Hydrate a baseline
            # from the peer instead (full repair, section 4.2).
            request = BaselineRequest(
                from_segment=self.name,
                pg_index=self.segment.pg_index,
                epochs=self.epochs.current,
            )
            future = self.network.rpc(self.name, response.segment_id, request)
            future.add_done_callback(self._on_hydration_baseline)
        if self.segment.scl > scl_before:
            # Gossip closed a hole: proactively re-acknowledge so the
            # database's PGCL bookkeeping learns the new SCL even when no
            # fresh writes are flowing (e.g. after this node was restored).
            for instance_id in self._instance_read_floors:
                self._send_ack(instance_id)

    def _on_gossip_query(self, message: Message, query: GossipQuery) -> None:
        if self.health_probe is not None:
            # A query reaching us proves the querier alive, member or not.
            self.health_probe.note_peer_alive(query.from_segment)
        if not self._check_epochs(message, query.epochs):
            return
        records = self.segment.records_after(
            query.scl, limit=self.config.gossip_batch_limit
        )
        self.network.reply(
            message,
            GossipResponse(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                scl=self.segment.scl,
                records=tuple(records),
                known_instances=tuple(sorted(self._instance_read_floors)),
                gc_horizon=self.segment.gc_horizon,
            ),
        )

    # ------------------------------------------------------------------
    # Background: coalesce (activities 3, 5)
    # ------------------------------------------------------------------
    def _coalesce_tick(self) -> None:
        self.segment.coalesce()

    # ------------------------------------------------------------------
    # Background: backup (activity 6)
    # ------------------------------------------------------------------
    def _backup_tick(self) -> None:
        snapshot = self.segment.snapshot_for_backup()
        self.s3.put_snapshot(
            segment_id=self.name,
            pg_index=self.segment.pg_index,
            scl=self.segment.scl,
            taken_at=self.loop.now,
            payload=snapshot,
        )
        self.segment.mark_backed_up(self.segment.scl)
        self.counters["backups_taken"] += 1

    # ------------------------------------------------------------------
    # Background: GC (activity 7)
    # ------------------------------------------------------------------
    def _gc_tick(self) -> None:
        self.counters["gc_runs"] += 1
        self.segment.garbage_collect()
        self.s3.collect_garbage()

    def _on_gc_floor(self, update: GCFloorUpdate) -> None:
        if self.db_health_probe is not None:
            # The GC-floor tick is the database tier's steady passive
            # heartbeat: writer and replicas advertise on a fixed interval
            # even when the workload is idle.
            self.db_health_probe.note_signal(update.instance_id)
        try:
            self.epochs.check_and_learn(update.epochs)
        except StaleEpochError:
            return  # one-way message; drop
        self._adopt_read_floor(update.instance_id, update.pgmrpl)

    def _adopt_read_floor(self, instance_id: str, pgmrpl: int) -> None:
        previous = self._instance_read_floors.get(instance_id, 0)
        self._instance_read_floors[instance_id] = max(previous, pgmrpl)
        self.segment.advance_gc_floor(min(self._instance_read_floors.values()))

    def forget_instance(self, instance_id: str) -> None:
        """Drop a closed instance from GC-floor accounting."""
        self._instance_read_floors.pop(instance_id, None)

    # ------------------------------------------------------------------
    # Background: scrub (activity 8)
    # ------------------------------------------------------------------
    def _scrub_tick(self) -> None:
        self.counters["scrub_runs"] += 1
        failures = self.segment.scrub()
        if not failures:
            return
        # Repair from a full peer over the network, like every other flow:
        # the request experiences latency, partitions, and crashes, and an
        # unlucky round simply retries at the next scrub interval.
        peers = sorted(
            p.segment_id
            for p in self.metadata.full_segments_of_pg(self.segment.pg_index)
            if p.segment_id != self.name
        )
        if not peers:
            return
        peer = self.rng.choice(peers)
        request = ScrubRepairRequest(
            from_segment=self.name,
            pg_index=self.segment.pg_index,
            failures=tuple(failures),
            epochs=self.epochs.current,
        )
        future = self.network.rpc(self.name, peer, request)
        future.add_done_callback(self._on_scrub_reply)

    def _on_scrub_reply(self, future) -> None:
        reply = future.result()
        if not isinstance(reply, ScrubRepairResponse):
            return  # rejected or unexpected; retry at the next scrub tick
        self.counters["scrub_repairs"] += self.segment.apply_scrub_versions(
            reply.versions
        )

    def _on_scrub_request(
        self, message: Message, request: ScrubRepairRequest
    ) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        self.network.reply(
            message,
            ScrubRepairResponse(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                versions=self.segment.collect_scrub_versions(request.failures),
            ),
        )

    def register_peer_directory(self, directory: dict[str, "StorageNode"]) -> None:
        """Deprecated no-op, kept for API compatibility: scrub repair is
        now routed through the simulated network via the metadata service's
        placement directory, not an in-process object registry."""

    # ------------------------------------------------------------------
    # Recovery + control plane
    # ------------------------------------------------------------------
    def _on_recovery_scan(
        self, message: Message, request: RecoveryScanRequest
    ) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        self.network.reply(
            message,
            RecoveryScanResponse(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                scl=self.segment.scl,
                digests=self.segment.chain_digests(),
                gc_horizon=self.segment.gc_horizon,
            ),
        )

    def _on_truncate(self, message: Message, request: TruncateRequest) -> None:
        # A truncate carries the *new* epochs; adopting them is part of
        # applying it.  Validation only requires they not be stale.
        if not self._check_epochs(message, request.new_epochs):
            return
        self.segment.truncate(request.pg_point, request.truncation)
        self.network.reply(
            message,
            TruncateAck(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                scl=self.segment.scl,
            ),
        )

    def _on_epoch_write(self, message: Message, request: EpochWrite) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        self.epochs.advance(request.new_epochs)
        self.network.reply(
            message,
            EpochWriteAck(segment_id=self.name, epochs=self.epochs.current),
        )

    def _on_baseline(self, message: Message, request: BaselineRequest) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        self.segment.coalesce()
        blocks = tuple(
            (
                block,
                chain.latest_lsn,
                tuple(sorted(chain.latest_image().items(),
                             key=lambda kv: repr(kv[0]))),
            )
            for block, chain in sorted(self.segment.blocks.items())
        )
        self.network.reply(
            message,
            BaselineResponse(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                blocks=blocks,
                coalesced_upto=self.segment.coalesced_upto,
                gc_horizon=self.segment.gc_horizon,
                scl=self.segment.scl,
                records=tuple(self.segment.records_after(0, limit=10**9)),
            ),
        )

    def _on_hydration_baseline(self, future) -> None:
        reply = future.result()
        if isinstance(reply, BaselineResponse):
            scl_before = self.segment.scl
            self.apply_baseline(reply)
            if self.segment.scl > scl_before:
                for instance_id in self._instance_read_floors:
                    self._send_ack(instance_id)

    def apply_baseline(self, response: BaselineResponse) -> int:
        """Hydrate this node's segment from a peer's baseline response."""
        if self.segment.kind is not SegmentKind.TAIL:
            for block, version_lsn, image in response.blocks:
                chain = self.segment.blocks.get(block)
                if chain is None:
                    chain = BlockVersionChain(block)
                    self.segment.blocks[block] = chain
                if version_lsn > chain.latest_lsn:
                    chain.append(version_lsn, dict(image))
            self.segment.coalesced_upto = max(
                self.segment.coalesced_upto, response.coalesced_upto
            )
        self.segment.chain.rebase(response.gc_horizon)
        self.segment.gc_horizon = max(
            self.segment.gc_horizon, response.gc_horizon
        )
        copied = 0
        for record in response.records:
            self.segment.receive(record, via_gossip=True)
            copied += 1
        return copied
