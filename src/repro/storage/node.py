"""The storage-node actor: Figure 2 wired to the simulated network.

Foreground path (the *only* latency a database write observes):

1. receive redo records (:class:`WriteBatch`),
2. append them to the update queue / hot log, and
3. ACKnowledge back with the segment's SCL after a local disk write.

Everything else happens in background ticks, each independent and crash-safe:

4. GOSSIP with peers to fill chain holes,
5. COALESCE records into data-block versions,
6. BACKUP point-in-time snapshots to (simulated) S3,
7. GARBAGE COLLECT hot-log records and block versions, and
8. SCRUB checksums, repairing from a healthy peer on mismatch.

Every request is epoch-validated first; stale callers get
:class:`RequestRejected` and must refresh ("Aurora ... just changes the
locks on the door").  The node never votes: "storage nodes do not have a
vote in determining whether to accept a write, they must do so."
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.epochs import EpochRegistry
from repro.core.lsn import NULL_LSN
from repro.core.retry import Backoff, RetryPolicy
from repro.errors import CorruptVersionError, ReadPointError, StaleEpochError
from repro.sim.latency import LatencyModel, disk_service
from repro.sim.network import Actor, Message
from repro.storage.backup import SimulatedS3
from repro.storage.messages import (
    CORRUPT_PAYLOAD,
    BaselineRequest,
    BaselineResponse,
    EpochWrite,
    EpochWriteAck,
    GCFloorUpdate,
    GossipQuery,
    GossipResponse,
    IntegrityVoteRequest,
    IntegrityVoteResponse,
    ReadBlockRequest,
    ReadBlockResponse,
    RecoveryScanRequest,
    RecoveryScanResponse,
    RequestRejected,
    ScrubRepairRequest,
    ScrubRepairResponse,
    TruncateAck,
    TruncateRequest,
    WriteAck,
    WriteBatch,
)
from repro.storage.metadata import StorageMetadataService
from repro.storage.page import BlockVersionChain
from repro.storage.segment import Segment, SegmentKind


@dataclass
class StorageNodeConfig:
    """Tunable behaviour of a storage node (times in ms)."""

    disk: LatencyModel | None = None
    gossip_interval: float = 20.0
    coalesce_interval: float = 10.0
    backup_interval: float = 500.0
    gc_interval: float = 200.0
    scrub_interval: float = 2_000.0
    #: Records returned per gossip response (bounds message size).
    gossip_batch_limit: int = 512
    #: A gossip RPC unanswered after this long is reported to the health
    #: monitor (when one is attached) as negative evidence about the peer.
    gossip_timeout_ms: float = 60.0
    enable_background: bool = True
    #: Healthy blocks swept through the integrity vote per scrub round
    #: (rotating cursor); this is what catches valid-checksum corruption
    #: (misdirected / lost-but-acked writes).  DESIGN.md §12.
    scrub_vote_sample: int = 6
    #: Peers polled per integrity vote round (a read-quorum-sized sample).
    vote_fanout: int = 3
    #: A vote round tallies whatever replies arrived by this deadline.
    vote_timeout_ms: float = 120.0
    #: Pacing between vote rounds after one that produced no replies
    #: (peers crashed or partitioned); jitter-free so the node's random
    #: stream stays replayable.
    vote_retry: RetryPolicy | None = None

    def __post_init__(self) -> None:
        if self.disk is None:
            self.disk = disk_service()
        if self.vote_retry is None:
            self.vote_retry = RetryPolicy(
                base_ms=100.0, cap_ms=1_600.0, multiplier=2.0
            )


class StorageNode(Actor):
    """One simulated storage node hosting one segment.

    (The real fleet multiplexes many segments per node; one-per-node keeps
    the failure model transparent -- crashing a node crashes exactly one
    segment -- without changing any protocol behaviour.)
    """

    def __init__(
        self,
        segment: Segment,
        metadata: StorageMetadataService,
        s3: SimulatedS3,
        rng: random.Random,
        config: StorageNodeConfig | None = None,
    ) -> None:
        super().__init__(name=segment.segment_id)
        self.segment = segment
        self.metadata = metadata
        self.s3 = s3
        self.rng = rng
        self.config = config if config is not None else StorageNodeConfig()
        self.epochs = EpochRegistry()
        #: PGMRPL per database instance that has opened the volume.
        self._instance_read_floors: dict[str, int] = {}
        self.counters = {
            "write_batches": 0,
            "acks_sent": 0,
            "rejections_sent": 0,
            "gossip_rounds": 0,
            "gossip_records_pulled": 0,
            "backups_taken": 0,
            "gc_runs": 0,
            "scrub_runs": 0,
            "scrub_repairs": 0,
            "reads_answered": 0,
            "reads_intercepted": 0,
            "ingest_rejects": 0,
            "vote_rounds": 0,
            "vote_repairs": 0,
        }
        self._started = False
        #: Armed by the failure injector: the next WriteBatch arrives with
        #: a damaged frame and must be rejected at ingest, never persisted.
        self._ingest_corruptions = 0
        #: Number of integrity vote rounds currently in flight (background
        #: scrub starts at most one; read-repair votes run concurrently).
        self._votes_inflight = 0
        #: Backoff cursor over ``config.vote_retry`` for vote rounds that
        #: drew no replies; resets on the first answered round.
        self._vote_backoff = Backoff(self.config.vote_retry)
        self._vote_suppressed_until = 0.0
        #: Settled-with-replies vote rounds a corrupt hot-log record has
        #: survived unshipped; two strikes mean the fleet no longer holds
        #: the record and record-by-record repair is over -- fall back to
        #: an in-place baseline rehydration from a responding peer.
        self._record_strikes: dict[int, int] = {}
        self._rehydration_inflight = False
        #: Optional :class:`repro.sim.failures.IntegrityLog` observer for
        #: detection / repair / served-read events (no-op cost when unarmed,
        #: exactly like ``audit_probe``).
        self.integrity_probe = None
        #: Per-instance fire time of the latest scheduled write ACK.  The
        #: SCL is read when the ACK leaves, so an ACK already scheduled at
        #: or after a new batch's disk-completion time covers that batch
        #: too -- back-to-back boxcars share one ACK instead of each
        #: paying for their own wire message.
        self._pending_ack_time: dict[str, float] = {}
        #: Optional :class:`repro.repair.HealthMonitor` observer.  Peer
        #: liveness evidence from gossip (replies, queries, timeouts) is
        #: reported here; ``None`` costs one attribute load, exactly like
        #: ``audit_probe``.
        self.health_probe = None
        #: Optional :class:`repro.repair.DbHealthMonitor` observer: the
        #: sending instance on every write batch and GC-floor update is
        #: database-tier liveness evidence.
        self.db_health_probe = None

    def attach_audit_probe(self, probe) -> None:
        """Arm a :class:`repro.audit.Auditor`: the node's epoch registry and
        segment chain report every transition (no-op cost when unarmed)."""
        self.epochs.audit_probe = probe
        self.epochs.audit_owner = self.name
        chain = self.segment.chain
        chain.audit_probe = probe
        chain.audit_owner = self.name
        probe.register_segment(self.name, self.segment.pg_index)

    def attach_integrity_probe(self, probe) -> None:
        """Arm a :class:`repro.sim.failures.IntegrityLog`: every corruption
        detection, repair, and served read is reported for MTTD/MTTR
        accounting and the ``integrity-*`` invariants."""
        self.integrity_probe = probe

    def arm_ingest_corruption(self, count: int = 1) -> None:
        """Injector hook: the next ``count`` WriteBatch frames arrive
        damaged and must fail ingest verification."""
        self._ingest_corruptions += count

    def stats_snapshot(self) -> dict:
        """One flat, audit-facing view of this node's health counters
        merged with its segment's activity stats (scrub/integrity counters
        included, instead of leaving them buried in ``counters``)."""
        snapshot = {
            "node": self.name,
            "pg_index": self.segment.pg_index,
            "kind": self.segment.kind.value,
            "scl": self.segment.scl,
        }
        snapshot.update(self.counters)
        for key, value in self.segment.stats.items():
            snapshot[f"segment_{key}"] = value
        return snapshot

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin background activity (call after attaching to the network)."""
        if self._started or not self.config.enable_background:
            self._started = True
            return
        self._started = True
        self._schedule_tick(self.config.gossip_interval, self._gossip_tick)
        self._schedule_tick(self.config.coalesce_interval, self._coalesce_tick)
        self._schedule_tick(self.config.backup_interval, self._backup_tick)
        self._schedule_tick(self.config.gc_interval, self._gc_tick)
        self._schedule_tick(self.config.scrub_interval, self._scrub_tick)

    def _schedule_tick(self, interval: float, tick) -> None:
        """Reschedule ``tick`` forever with +/-20% jitter (avoids lockstep)."""
        delay = interval * self.rng.uniform(0.8, 1.2)

        def _fire() -> None:
            if self.network is not None and self.network.is_up(self.name):
                tick()
            self._schedule_tick(interval, tick)

        self.loop.schedule(delay, _fire)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, WriteBatch):
            self._on_write_batch(message, payload)
        elif isinstance(payload, ReadBlockRequest):
            self._on_read_block(message, payload)
        elif isinstance(payload, GossipQuery):
            self._on_gossip_query(message, payload)
        elif isinstance(payload, RecoveryScanRequest):
            self._on_recovery_scan(message, payload)
        elif isinstance(payload, TruncateRequest):
            self._on_truncate(message, payload)
        elif isinstance(payload, EpochWrite):
            self._on_epoch_write(message, payload)
        elif isinstance(payload, GCFloorUpdate):
            self._on_gc_floor(payload)
        elif isinstance(payload, BaselineRequest):
            self._on_baseline(message, payload)
        elif isinstance(payload, ScrubRepairRequest):
            self._on_scrub_request(message, payload)
        elif isinstance(payload, IntegrityVoteRequest):
            self._on_integrity_vote(message, payload)
        # Unknown payloads are dropped silently, like any real node.

    def _check_epochs(self, message: Message, epochs) -> bool:
        """Validate a request's stamp; reject-and-False when stale."""
        try:
            self.epochs.check_and_learn(epochs)
            return True
        except StaleEpochError as exc:
            self.counters["rejections_sent"] += 1
            rejection = RequestRejected(
                segment_id=self.name,
                reason=str(exc),
                current_epochs=self.epochs.current,
            )
            if message.request_id is not None:
                self.network.reply(message, rejection)
            else:
                self.network.send(self.name, message.src, rejection)
            return False

    # ------------------------------------------------------------------
    # Foreground: writes (activities 1, 2 + ACK)
    # ------------------------------------------------------------------
    def _on_write_batch(self, message: Message, batch: WriteBatch) -> None:
        if self.db_health_probe is not None:
            # Redo-stream advance: proof the sending instance is alive,
            # whether or not its epochs are current.
            self.db_health_probe.note_signal(batch.instance_id)
        if not self._check_epochs(message, batch.epochs):
            return
        if self._ingest_corruptions > 0:
            # The frame arrived damaged (injected): checksum verification
            # at ingest rejects the whole batch before anything persists.
            # The driver resubmits its retained clean copy (DESIGN.md §12).
            self._ingest_corruptions -= 1
            self.counters["ingest_rejects"] += 1
            self.counters["rejections_sent"] += 1
            if self.integrity_probe is not None:
                self.integrity_probe.on_ingest_reject(self.name)
            self.network.send(
                self.name,
                batch.instance_id,
                RequestRejected(
                    segment_id=self.name,
                    reason=CORRUPT_PAYLOAD,
                    current_epochs=self.epochs.current,
                ),
            )
            return
        self.counters["write_batches"] += 1
        for record in batch.records:
            self.segment.receive(record)
        self._adopt_read_floor(batch.instance_id, batch.pgmrpl)
        # The ACK leaves after the local durable write completes.
        disk_delay = self.config.disk.sample(self.rng)
        self._schedule_ack(batch.instance_id, self.loop.now + disk_delay)

    def _schedule_ack(self, instance_id: str, fire_at: float) -> None:
        if self._pending_ack_time.get(instance_id, -1.0) >= fire_at:
            return  # a later-or-equal pending ACK already covers this batch
        self._pending_ack_time[instance_id] = fire_at
        self.loop.schedule_at(fire_at, self._fire_ack, instance_id, fire_at)

    def _fire_ack(self, instance_id: str, fire_at: float) -> None:
        if self._pending_ack_time.get(instance_id) == fire_at:
            del self._pending_ack_time[instance_id]
        self._send_ack(instance_id)

    def _send_ack(self, instance_id: str) -> None:
        self.counters["acks_sent"] += 1
        self.network.send(
            self.name,
            instance_id,
            WriteAck(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                scl=self.segment.scl,
                epochs=self.epochs.current,
            ),
        )

    # ------------------------------------------------------------------
    # Foreground: reads
    # ------------------------------------------------------------------
    def _on_read_block(self, message: Message, request: ReadBlockRequest) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        disk_delay = self.config.disk.sample(self.rng)
        self.loop.schedule(disk_delay, self._serve_read, message, request)

    def _serve_read(
        self,
        message: Message,
        request: ReadBlockRequest,
        retried: bool = False,
    ) -> None:
        try:
            version = self.segment.read_version(
                request.block, request.read_point
            )
        except CorruptVersionError as exc:
            # Read-time verification intercepted a corrupt version: never
            # serve it.  Quarantine is already set; hold the client's reply
            # and run a synchronous peer vote to repair, then serve the
            # repaired image -- or reject so the driver reroutes.
            self.counters["reads_intercepted"] += 1
            if self.integrity_probe is not None:
                self.integrity_probe.on_corruption_detected(
                    self.name, exc.block, exc.lsn
                )
            started = False
            if not retried:
                started = self._start_vote(
                    [request.block],
                    self.segment.scrub_records(),
                    on_done=lambda repairs, replies: self._serve_read(
                        message, request, retried=True
                    ),
                )
            if not started:
                self._reject_read(message, CORRUPT_PAYLOAD)
            return
        except ReadPointError as exc:
            self._reject_read(message, str(exc))
            return
        self.counters["reads_answered"] += 1
        if version is None:
            image_items: tuple = ()
            version_lsn = NULL_LSN
        else:
            image_items = tuple(
                sorted(version.image.items(), key=lambda kv: repr(kv[0]))
            )
            version_lsn = version.lsn
            if self.integrity_probe is not None:
                self.integrity_probe.on_read_served(
                    self.name, request.block, version.lsn, version.checksum
                )
        self.network.reply(
            message,
            ReadBlockResponse(
                segment_id=self.name,
                block=request.block,
                image=image_items,
                version_lsn=version_lsn,
            ),
        )

    def _reject_read(self, message: Message, reason: str) -> None:
        self.network.reply(
            message,
            RequestRejected(
                segment_id=self.name,
                reason=reason,
                current_epochs=self.epochs.current,
            ),
        )

    # ------------------------------------------------------------------
    # Background: gossip (activity 4)
    # ------------------------------------------------------------------
    def _gossip_tick(self) -> None:
        peers = self.metadata.peers_of(self.name)
        if not peers:
            return
        peer = self.rng.choice(peers)
        self.counters["gossip_rounds"] += 1
        query = GossipQuery(
            from_segment=self.name,
            pg_index=self.segment.pg_index,
            scl=self.segment.scl,
            epochs=self.epochs.current,
        )
        future = self.network.rpc(self.name, peer, query)
        future.add_done_callback(self._on_gossip_reply)
        if self.health_probe is not None:
            self.loop.schedule(
                self.config.gossip_timeout_ms,
                self._report_gossip_timeout, peer, future,
            )

    def _report_gossip_timeout(self, peer: str, future) -> None:
        if not future.done and self.health_probe is not None:
            self.health_probe.note_peer_timeout(peer)

    def _on_gossip_reply(self, future) -> None:
        response = future.result()
        if self.health_probe is not None:
            # Any reply -- including a rejection -- proves the peer alive.
            segment_id = getattr(response, "segment_id", None)
            if segment_id is not None:
                self.health_probe.note_peer_alive(segment_id)
        if not isinstance(response, GossipResponse):
            return  # rejected: our epochs were stale; we learn via writes
        scl_before = self.segment.scl
        for record in response.records:
            self.segment.receive(record, via_gossip=True)
        self.counters["gossip_records_pulled"] += len(response.records)
        for instance_id in response.known_instances:
            self._instance_read_floors.setdefault(instance_id, 0)
        if response.gc_horizon > self.segment.scl:
            # We fell behind the peer's GC horizon: the records we are
            # missing no longer exist in any hot log.  Hydrate a baseline
            # from the peer instead (full repair, section 4.2).
            request = BaselineRequest(
                from_segment=self.name,
                pg_index=self.segment.pg_index,
                epochs=self.epochs.current,
            )
            future = self.network.rpc(self.name, response.segment_id, request)
            future.add_done_callback(self._on_hydration_baseline)
        if self.segment.scl > scl_before:
            # Gossip closed a hole: proactively re-acknowledge so the
            # database's PGCL bookkeeping learns the new SCL even when no
            # fresh writes are flowing (e.g. after this node was restored).
            for instance_id in self._instance_read_floors:
                self._send_ack(instance_id)

    def _on_gossip_query(self, message: Message, query: GossipQuery) -> None:
        if self.health_probe is not None:
            # A query reaching us proves the querier alive, member or not.
            self.health_probe.note_peer_alive(query.from_segment)
        if not self._check_epochs(message, query.epochs):
            return
        records = self.segment.records_after(
            query.scl, limit=self.config.gossip_batch_limit
        )
        self.network.reply(
            message,
            GossipResponse(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                scl=self.segment.scl,
                records=tuple(records),
                known_instances=tuple(sorted(self._instance_read_floors)),
                gc_horizon=self.segment.gc_horizon,
            ),
        )

    # ------------------------------------------------------------------
    # Background: coalesce (activities 3, 5)
    # ------------------------------------------------------------------
    def _coalesce_tick(self) -> None:
        self.segment.coalesce()

    # ------------------------------------------------------------------
    # Background: backup (activity 6)
    # ------------------------------------------------------------------
    def _backup_tick(self) -> None:
        snapshot = self.segment.snapshot_for_backup()
        self.s3.put_snapshot(
            segment_id=self.name,
            pg_index=self.segment.pg_index,
            scl=self.segment.scl,
            taken_at=self.loop.now,
            payload=snapshot,
        )
        self.segment.mark_backed_up(self.segment.scl)
        self.counters["backups_taken"] += 1

    # ------------------------------------------------------------------
    # Background: GC (activity 7)
    # ------------------------------------------------------------------
    def _gc_tick(self) -> None:
        self.counters["gc_runs"] += 1
        self.segment.garbage_collect()
        self.s3.collect_garbage()

    def _on_gc_floor(self, update: GCFloorUpdate) -> None:
        if self.db_health_probe is not None:
            # The GC-floor tick is the database tier's steady passive
            # heartbeat: writer and replicas advertise on a fixed interval
            # even when the workload is idle.
            self.db_health_probe.note_signal(update.instance_id)
        try:
            self.epochs.check_and_learn(update.epochs)
        except StaleEpochError:
            return  # one-way message; drop
        self._adopt_read_floor(update.instance_id, update.pgmrpl)

    def _adopt_read_floor(self, instance_id: str, pgmrpl: int) -> None:
        previous = self._instance_read_floors.get(instance_id, 0)
        self._instance_read_floors[instance_id] = max(previous, pgmrpl)
        self.segment.advance_gc_floor(min(self._instance_read_floors.values()))

    def forget_instance(self, instance_id: str) -> None:
        """Drop a closed instance from GC-floor accounting."""
        self._instance_read_floors.pop(instance_id, None)

    # ------------------------------------------------------------------
    # Background: scrub (activity 8)
    # ------------------------------------------------------------------
    def _scrub_tick(self) -> None:
        self.counters["scrub_runs"] += 1
        segment = self.segment
        version_failures = segment.scrub()
        record_failures = segment.scrub_records()
        for block, lsn in version_failures:
            if self.integrity_probe is not None:
                self.integrity_probe.on_corruption_detected(
                    self.name, block, lsn
                )
        if self.integrity_probe is not None:
            for lsn in record_failures:
                self.integrity_probe.on_record_corruption_detected(
                    self.name, lsn
                )
        # A block's latest version survives GC and keeps serving reads
        # even once the read floor passes it, but peers may have condensed
        # that history (restore, hydration), so the content vote cannot
        # arbitrate below the vote window.  Checksum-detected rot down
        # there is repaired directly from a single peer's clean copy.
        lo, hi = segment.vote_window()
        below_window = [
            (block, lsn)
            for block, lsn in version_failures
            if not lo < lsn <= hi
        ]
        if below_window:
            self._legacy_scrub_repair(below_window)
        # Beyond locally-flagged failures, sweep a rotating sample of
        # healthy-looking blocks through the peer vote: valid-checksum
        # corruption (misdirected / lost-but-acked writes) is invisible to
        # local verification and only a cross-peer content vote exposes it.
        blocks = sorted(
            {
                block
                for block, lsn in version_failures
                if lo < lsn <= hi
            }
            | set(segment.scrub_sample_blocks(self.config.scrub_vote_sample))
        )
        if not blocks and not record_failures:
            return
        if self._votes_inflight > 0:
            return  # one background vote round at a time
        if self.loop.now < self._vote_suppressed_until:
            return  # backing off after a round that drew no replies
        if not self._start_vote(blocks, record_failures, self._on_vote_settled):
            # Fewer than two eligible voters: fall back to the legacy
            # single-peer repair for checksum-detected failures (it cannot
            # catch valid-checksum corruption, but it keeps bit-rot repair
            # alive while the PG is degraded).
            self._legacy_scrub_repair(version_failures)

    def _on_vote_settled(self, repairs: int, replies: int) -> None:
        if replies == 0:
            self._vote_suppressed_until = (
                self.loop.now + self._vote_backoff.next_delay()
            )
        else:
            self._vote_backoff.reset()
            self._vote_suppressed_until = 0.0

    # ------------------------------------------------------------------
    # Quorum-vote integrity repair (DESIGN.md §12)
    # ------------------------------------------------------------------
    def _vote_peers(self) -> list[str]:
        """Chain-capable current peers (full + log stores): the voters."""
        pg = self.segment.pg_index
        placements = (
            self.metadata.full_segments_of_pg(pg)
            + self.metadata.log_segments_of_pg(pg)
        )
        return sorted(
            p.segment_id for p in placements if p.segment_id != self.name
        )

    def _start_vote(self, blocks, record_lsns, on_done) -> bool:
        """Open one vote round; returns False when no quorum is possible.

        ``on_done(repairs, replies)`` fires exactly once, when every polled
        peer answered or the vote deadline passed -- crashed or partitioned
        peers simply never count.
        """
        peers = self._vote_peers()
        if self.segment.kind is not SegmentKind.TAIL and len(peers) < 2:
            return False
        if not peers:
            return False
        fanout = min(self.config.vote_fanout, len(peers))
        chosen = (
            self.rng.sample(peers, fanout) if len(peers) > fanout else peers
        )
        request = IntegrityVoteRequest(
            from_segment=self.name,
            pg_index=self.segment.pg_index,
            blocks=self.segment.vote_request_blocks(blocks),
            record_lsns=tuple(sorted(record_lsns)),
            epochs=self.epochs.current,
        )
        self.counters["vote_rounds"] += 1
        self._votes_inflight += 1
        state = {
            "responses": [],
            "expected": len(chosen),
            "settled": False,
            "on_done": on_done,
            "record_lsns": tuple(sorted(record_lsns)),
        }
        for peer in chosen:
            future = self.network.rpc(self.name, peer, request)
            future.add_done_callback(
                lambda f, s=state: self._on_vote_reply(s, f)
            )
        self.loop.schedule(
            self.config.vote_timeout_ms, self._settle_vote, state
        )
        return True

    def _on_vote_reply(self, state: dict, future) -> None:
        if future.exception() is not None:
            # The peer crashed or the link dropped mid-RPC; it simply does
            # not vote this round.
            reply = None
        else:
            reply = future.result()
        if isinstance(reply, IntegrityVoteResponse):
            state["responses"].append(reply)
        if len(state["responses"]) >= state["expected"]:
            self._settle_vote(state)

    def _settle_vote(self, state: dict) -> None:
        if state["settled"]:
            return
        state["settled"] = True
        self._votes_inflight -= 1
        responses = state["responses"]
        repairs = self._tally_votes(responses)
        self.counters["vote_repairs"] += repairs
        self.counters["scrub_repairs"] += repairs
        if responses:
            self._strike_unrecoverable_records(
                state["record_lsns"], responses
            )
        state["on_done"](repairs, len(responses))

    def _tally_votes(self, responses) -> int:
        """Majority content agreement per ``(block, version_lsn)``.

        Each voter covering an LSN casts its verified checksum, or ABSENT
        when it holds no version there.  This copy votes too (unless its
        version is corrupt, which casts no content ballot).  Only a strict
        majority overrules local state: adopt the winning image, or drop a
        version the majority does not have (a misdirected write's
        artifact).  A corrupt peer never propagates -- its vouched content
        is outvoted and unverified images are never shipped.
        """
        segment = self.segment
        absent = object()
        my_lo, my_hi = segment.vote_window()
        # Candidate LSNs: everything any responder vouched for, plus every
        # local version inside my window for the voted blocks.
        candidates: set[tuple[int, int]] = set()
        voted_blocks: set[int] = set()
        for response in responses:
            for block, _cover_lo, _cover_hi, entries in response.blocks:
                voted_blocks.add(block)
                for lsn, _checksum, _image in entries:
                    candidates.add((block, lsn))
        for block in voted_blocks:
            chain = segment.blocks.get(block)
            if chain is None:
                continue
            for version in chain.versions:
                if my_lo < version.lsn <= my_hi:
                    candidates.add((block, version.lsn))
        repairs = 0
        for block, lsn in sorted(candidates):
            votes: list[object] = []
            images: dict[object, object] = {}
            for response in responses:
                for rblock, cover_lo, cover_hi, entries in response.blocks:
                    if rblock != block or not cover_lo < lsn <= cover_hi:
                        continue
                    entry = next(
                        (e for e in entries if e[0] == lsn), None
                    )
                    if entry is None:
                        votes.append(absent)
                    else:
                        votes.append(entry[1])
                        if entry[2] is not None:
                            images[entry[1]] = entry[2]
            if not votes:
                continue  # no peer coverage; nothing to compare against
            if not my_lo < lsn <= my_hi:
                continue  # outside my comparable window
            chain = segment.blocks.get(block)
            mine = chain.version_at(lsn) if chain is not None else None
            if mine is not None and mine.lsn != lsn:
                mine = None
            total = len(votes) + 1
            if mine is None:
                votes.append(absent)
            elif mine.verify():
                votes.append(mine.checksum)
            else:
                total = len(votes)  # a corrupt copy casts no ballot
            tally: dict[object, int] = {}
            for vote in votes:
                tally[vote] = tally.get(vote, 0) + 1
            winner, count = max(tally.items(), key=lambda kv: kv[1])
            if count * 2 <= total:
                continue  # no strict majority; retry next round
            if winner is absent:
                if mine is not None and segment.drop_version(block, lsn):
                    repairs += 1
                    if self.integrity_probe is not None:
                        self.integrity_probe.on_version_removed(
                            self.name, block, lsn
                        )
                continue
            mine_matches = (
                mine is not None and mine.verify() and mine.checksum == winner
            )
            if mine_matches:
                continue
            image = images.get(winner)
            if image is None:
                continue  # majority agreed with my (corrupt?) checksum
            if segment.repair_version(block, lsn, image):
                repairs += 1
                if self.integrity_probe is not None:
                    self.integrity_probe.on_version_repaired(
                        self.name, block, lsn, winner
                    )
        # Record repair: adopt clean peer records for probed or differing
        # LSNs this copy is missing or holds bit-rotted.
        corrupt_records = segment.corrupt_record_lsns
        seen: set[int] = set()
        for response in responses:
            for record in response.records:
                if record.lsn in seen:
                    continue
                seen.add(record.lsn)
                if (
                    record.lsn in corrupt_records
                    or record.lsn not in segment.hot_log
                ):
                    if segment.restore_record(record):
                        repairs += 1
                        if self.integrity_probe is not None:
                            self.integrity_probe.on_record_repaired(
                                self.name, record.lsn
                            )
        return repairs

    def _strike_unrecoverable_records(self, requested, responses) -> None:
        """Track corrupt hot-log records no responding peer shipped.

        A replying peer ships a probed record whenever its own copy still
        verifies, so a record that survives settled rounds unshipped is
        gone from the fleet's hot logs (GC ran past it) -- record-by-record
        repair can never succeed.  After two strikes, fall back to an
        in-place baseline rehydration (see :meth:`_request_rehydration`).
        """
        still_corrupt = self.segment.corrupt_record_lsns
        exhausted = False
        for lsn in requested:
            if lsn not in still_corrupt:
                self._record_strikes.pop(lsn, None)
                continue
            strikes = self._record_strikes.get(lsn, 0) + 1
            self._record_strikes[lsn] = strikes
            if strikes >= 2:
                exhausted = True
        if exhausted:
            self._request_rehydration(responses)

    def _request_rehydration(self, responses) -> None:
        """Re-baseline this segment in place from a responding peer.

        The peer's collapsed baseline covers the range our coalescing has
        been stalled on (it is content-complete through the peer's
        coalesce point), so adopting it jumps ``coalesced_upto`` past the
        unrecoverable record; the immediate GC pass then drops the
        orphaned corrupt record, exactly as it would any other record
        below the materialized bound.  This is the same
        :class:`BaselineRequest` hydration a replacement candidate uses --
        scoped corruption recovery instead of a full segment replacement.
        """
        if self._rehydration_inflight:
            return
        self._rehydration_inflight = True
        request = BaselineRequest(
            from_segment=self.name,
            pg_index=self.segment.pg_index,
            epochs=self.epochs.current,
        )
        future = self.network.rpc(
            self.name, responses[0].segment_id, request
        )
        future.add_done_callback(self._on_rehydration_baseline)

    def _on_rehydration_baseline(self, future) -> None:
        self._rehydration_inflight = False
        if future.exception() is not None:
            return  # source crashed mid-RPC; the next strike retries
        reply = future.result()
        if not isinstance(reply, BaselineResponse):
            return
        scl_before = self.segment.scl
        self.apply_baseline(reply)
        # Drop the corrupt records the adopted baseline just shadowed;
        # the integrity reconcile observes the removal and closes them.
        self.segment.garbage_collect()
        self._record_strikes.clear()
        if self.segment.scl > scl_before:
            for instance_id in self._instance_read_floors:
                self._send_ack(instance_id)

    def _on_integrity_vote(
        self, message: Message, request: IntegrityVoteRequest
    ) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        blocks, records = self.segment.answer_vote(
            request.blocks, request.record_lsns
        )
        self.network.reply(
            message,
            IntegrityVoteResponse(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                blocks=blocks,
                records=records,
            ),
        )

    def _legacy_scrub_repair(self, failures) -> None:
        """Single-peer repair fallback when no vote quorum is reachable."""
        if not failures:
            return
        peers = sorted(
            p.segment_id
            for p in self.metadata.full_segments_of_pg(self.segment.pg_index)
            if p.segment_id != self.name
        )
        if not peers:
            return
        peer = self.rng.choice(peers)
        request = ScrubRepairRequest(
            from_segment=self.name,
            pg_index=self.segment.pg_index,
            failures=tuple(failures),
            epochs=self.epochs.current,
        )
        future = self.network.rpc(self.name, peer, request)
        future.add_done_callback(self._on_scrub_reply)

    def _on_scrub_reply(self, future) -> None:
        if future.exception() is not None:
            return  # peer crashed or partitioned mid-RPC; retry next tick
        reply = future.result()
        if not isinstance(reply, ScrubRepairResponse):
            return  # rejected or unexpected; retry at the next scrub tick
        self.counters["scrub_repairs"] += self.segment.apply_scrub_versions(
            reply.versions
        )

    def _on_scrub_request(
        self, message: Message, request: ScrubRepairRequest
    ) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        self.network.reply(
            message,
            ScrubRepairResponse(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                versions=self.segment.collect_scrub_versions(request.failures),
            ),
        )

    def register_peer_directory(self, directory: dict[str, "StorageNode"]) -> None:
        """Deprecated no-op, kept for API compatibility: scrub repair is
        now routed through the simulated network via the metadata service's
        placement directory, not an in-process object registry."""

    # ------------------------------------------------------------------
    # Recovery + control plane
    # ------------------------------------------------------------------
    def _on_recovery_scan(
        self, message: Message, request: RecoveryScanRequest
    ) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        self.network.reply(
            message,
            RecoveryScanResponse(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                scl=self.segment.scl,
                digests=self.segment.chain_digests(),
                gc_horizon=self.segment.gc_horizon,
            ),
        )

    def _on_truncate(self, message: Message, request: TruncateRequest) -> None:
        # A truncate carries the *new* epochs; adopting them is part of
        # applying it.  Validation only requires they not be stale.
        if not self._check_epochs(message, request.new_epochs):
            return
        self.segment.truncate(request.pg_point, request.truncation)
        self.network.reply(
            message,
            TruncateAck(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                scl=self.segment.scl,
            ),
        )

    def _on_epoch_write(self, message: Message, request: EpochWrite) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        self.epochs.advance(request.new_epochs)
        self.network.reply(
            message,
            EpochWriteAck(segment_id=self.name, epochs=self.epochs.current),
        )

    def _on_baseline(self, message: Message, request: BaselineRequest) -> None:
        if not self._check_epochs(message, request.epochs):
            return
        self.segment.coalesce()
        blocks = tuple(
            (
                block,
                chain.latest_lsn,
                tuple(sorted(chain.latest_image().items(),
                             key=lambda kv: repr(kv[0]))),
            )
            for block, chain in sorted(self.segment.blocks.items())
        )
        self.network.reply(
            message,
            BaselineResponse(
                segment_id=self.name,
                pg_index=self.segment.pg_index,
                blocks=blocks,
                coalesced_upto=self.segment.coalesced_upto,
                gc_horizon=self.segment.gc_horizon,
                scl=self.segment.scl,
                records=tuple(self.segment.records_after(0, limit=10**9)),
            ),
        )

    def _on_hydration_baseline(self, future) -> None:
        if future.exception() is not None:
            return  # source crashed or partitioned mid-RPC; retry via gossip
        reply = future.result()
        if isinstance(reply, BaselineResponse):
            scl_before = self.segment.scl
            self.apply_baseline(reply)
            if self.segment.scl > scl_before:
                for instance_id in self._instance_read_floors:
                    self._send_ack(instance_id)

    def apply_baseline(self, response: BaselineResponse) -> int:
        """Hydrate this node's segment from a peer's baseline response."""
        if self.segment.kind is not SegmentKind.TAIL:
            for block, version_lsn, image in response.blocks:
                chain = self.segment.blocks.get(block)
                if chain is None:
                    chain = BlockVersionChain(block)
                    self.segment.blocks[block] = chain
                if version_lsn > chain.latest_lsn:
                    chain.append(version_lsn, dict(image))
            self.segment.coalesced_upto = max(
                self.segment.coalesced_upto, response.coalesced_upto
            )
            # The baseline collapses history into one version per block;
            # structural integrity votes below it would disagree with
            # peers that kept granular chains.
            self.segment.granular_floor = max(
                self.segment.granular_floor, response.coalesced_upto
            )
        self.segment.chain.rebase(response.gc_horizon)
        self.segment.gc_horizon = max(
            self.segment.gc_horizon, response.gc_horizon
        )
        copied = 0
        for record in response.records:
            self.segment.receive(record, via_gossip=True)
            copied += 1
        return copied
