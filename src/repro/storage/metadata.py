"""The storage metadata service.

The paper mentions it in passing (section 2.4: "Aurora increments an epoch
in its **storage metadata service** and records this volume epoch in a write
quorum of each protection group").  It is the control-plane directory a
(re)starting database instance consults to learn the volume's geometry,
each protection group's membership, and the last known epochs -- *not* a
consensus service, and deliberately not on any data path: every correctness
property still rests on the epochs recorded in the storage write quorums.

It also records segment placement (which storage node and AZ host each
segment), which the failure injector and membership manager use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.epochs import EpochStamp
from repro.core.membership import MembershipState
from repro.core.quorum import QuorumConfig
from repro.errors import ConfigurationError, MembershipError
from repro.storage.segment import SegmentKind
from repro.storage.volume import VolumeGeometry


@dataclass
class SegmentPlacement:
    """Where one segment lives."""

    segment_id: str
    pg_index: int
    node: str
    az: str
    kind: SegmentKind


class StorageMetadataService:
    """Directory of volume geometry, membership, placement, and epochs."""

    def __init__(self, geometry: VolumeGeometry, backend=None) -> None:
        if backend is None:
            # Imported lazily: backend.py imports SegmentKind and quorum
            # machinery at module level; the default here must not cycle.
            from repro.storage.backend import AuroraBackend

            backend = AuroraBackend()
        self.backend = backend
        self.geometry = geometry
        self._memberships: dict[int, MembershipState] = {}
        self._placements: dict[str, SegmentPlacement] = {}
        self._epochs = EpochStamp()
        #: Per-PG quorum-model overrides (section 4.1: the geometry epoch
        #: "can also be used to change the quorum model itself, for
        #: example, when moving from a 4/6 write quorum to 3/4 to handle
        #: the extended loss of an AZ").
        self._quorum_overrides: dict[int, QuorumConfig] = {}

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------
    @property
    def epochs(self) -> EpochStamp:
        return self._epochs

    def record_epochs(self, stamp: EpochStamp) -> None:
        """Adopt newer epochs (components never move backwards)."""
        self._epochs = self._epochs.merge(stamp)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def set_membership(self, pg_index: int, state: MembershipState) -> None:
        existing = self._memberships.get(pg_index)
        if existing is not None and state.epoch <= existing.epoch:
            raise MembershipError(
                f"membership epoch must advance: {existing.epoch} -> "
                f"{state.epoch}"
            )
        self._memberships[pg_index] = state

    def membership(self, pg_index: int) -> MembershipState:
        try:
            return self._memberships[pg_index]
        except KeyError:
            raise ConfigurationError(
                f"no membership recorded for PG {pg_index}"
            ) from None

    def quorum_config(self, pg_index: int) -> QuorumConfig:
        override = self._quorum_overrides.get(pg_index)
        if override is not None:
            return override
        return self.membership_config_of(pg_index, self.membership(pg_index))

    def membership_config_of(self, pg_index: int, state) -> QuorumConfig:
        """The backend's quorum config for an arbitrary membership state
        (used to prove transitions against the *installed* policy)."""
        return self.backend.membership_quorum_config(self, pg_index, state)

    def set_quorum_override(
        self, pg_index: int, config: QuorumConfig
    ) -> None:
        """Install a non-standard quorum model for one PG (proved)."""
        config.prove()
        self._quorum_overrides[pg_index] = config

    def clear_quorum_override(self, pg_index: int) -> None:
        self._quorum_overrides.pop(pg_index, None)

    def has_quorum_override(self, pg_index: int) -> bool:
        return pg_index in self._quorum_overrides

    def pg_indexes(self) -> list[int]:
        return sorted(self._memberships)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place_segment(self, placement: SegmentPlacement) -> None:
        self._placements[placement.segment_id] = placement

    def placement(self, segment_id: str) -> SegmentPlacement:
        try:
            return self._placements[segment_id]
        except KeyError:
            raise ConfigurationError(
                f"no placement recorded for segment {segment_id!r}"
            ) from None

    def segments_of_pg(self, pg_index: int) -> list[SegmentPlacement]:
        """Placements for every *current* member of the PG."""
        members = self.membership(pg_index).members
        return [
            self._placements[segment_id]
            for segment_id in sorted(members)
            if segment_id in self._placements
        ]

    def full_segments_of_pg(self, pg_index: int) -> list[SegmentPlacement]:
        return [
            p
            for p in self.segments_of_pg(pg_index)
            if p.kind is SegmentKind.FULL
        ]

    def log_segments_of_pg(self, pg_index: int) -> list[SegmentPlacement]:
        return [
            p
            for p in self.segments_of_pg(pg_index)
            if p.kind is SegmentKind.LOG
        ]

    # ------------------------------------------------------------------
    # Backend policy pass-throughs (the driver and repair planner ask the
    # metadata service, which owns the backend reference)
    # ------------------------------------------------------------------
    def write_targets_of_pg(self, pg_index: int):
        """Members on the synchronous write path, or ``None`` for all."""
        return self.backend.write_targets(self, pg_index)

    def read_fallback_members_of_pg(self, pg_index: int) -> frozenset[str]:
        return self.backend.read_fallback_members(self, pg_index)

    def tracked_members_of_pg(self, pg_index: int):
        return self.backend.tracked_members(self, pg_index)

    def baseline_sources_of_pg(self, pg_index: int) -> list[SegmentPlacement]:
        return self.backend.baseline_sources(self, pg_index)

    def pg_of(self, segment_id: str) -> int:
        """The protection group a (current or former) segment serves."""
        return self.placement(segment_id).pg_index

    def is_current_member(self, segment_id: str) -> bool:
        """True when the segment appears in its PG's current membership
        (candidates in flight count; replaced incumbents do not)."""
        try:
            pg_index = self.pg_of(segment_id)
        except ConfigurationError:
            return False
        return segment_id in self.membership(pg_index).members

    def peers_of(self, segment_id: str) -> list[str]:
        """Other current members of the same PG (gossip targets)."""
        placement = self.placement(segment_id)
        return [
            p.segment_id
            for p in self.segments_of_pg(placement.pg_index)
            if p.segment_id != segment_id
        ]
