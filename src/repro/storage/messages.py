"""Wire protocol between database instances and storage nodes.

Every request carries an :class:`~repro.core.epochs.EpochStamp`; storage
nodes validate it before doing anything else and answer stale requests with
:class:`RequestRejected` so the caller can refresh and retry (section 4.1:
"Updates of stale state are similarly simple, requiring just one additional
request past the one rejected").

All payloads are frozen dataclasses: messages in flight are immutable, so a
buggy actor cannot mutate another's state through a shared reference.  They
are also slotted -- write-path payloads are allocated once per wire message
on the simulator's hottest loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.epochs import EpochStamp
from repro.core.lsn import TruncationRange
from repro.core.records import ChainDigest, LogRecord


# ----------------------------------------------------------------------
# Write path (one-way in both directions, section 2.2)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class WriteBatch:
    """A boxcar of redo records for one protection group."""

    instance_id: str
    pg_index: int
    records: tuple[LogRecord, ...]
    epochs: EpochStamp
    #: The sender's current PGMRPL, piggybacked to advance the GC floor.
    pgmrpl: int
    #: Modelled bytes this batch occupies on the wire after delta-encoding
    #: consecutive LSNs and eliding superseded payloads (0 when the sender
    #: does not account for wire size).  Computed once by the driver at
    #: flush time so the per-target fan-out adds a field read, not a walk.
    wire_bytes: int = 0
    #: Modelled bytes of the same records uncompressed (full LSNs, full
    #: payloads) -- the numerator/denominator pair keeps network write
    #: amplification honest under compression.
    logical_bytes: int = 0

    # Marks boxcar payloads for the network's batch-aware stats: the wire
    # message is counted once under the class name and once per contained
    # record under "<ClassName>.records".
    is_boxcar = True

    def boxcar_count(self) -> int:
        return len(self.records)


@dataclass(frozen=True, slots=True)
class WriteAck:
    """Acknowledgement of a write batch; carries the segment's SCL."""

    segment_id: str
    pg_index: int
    scl: int
    epochs: EpochStamp


@dataclass(frozen=True, slots=True)
class RequestRejected:
    """A request failed epoch validation (or hit another hard error)."""

    segment_id: str
    reason: str
    current_epochs: EpochStamp


#: ``RequestRejected.reason`` for a WriteBatch whose payload failed ingest
#: verification, or a read that landed on an unrepairable corrupt version.
#: The driver resubmits the retained clean batch (write) or reroutes to
#: another segment (read) -- the storage node never persists or serves the
#: corrupt frame.
CORRUPT_PAYLOAD = "corrupt-payload"


# ----------------------------------------------------------------------
# Read path (RPC, section 3.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ReadBlockRequest:
    pg_index: int
    block: int
    read_point: int
    epochs: EpochStamp


@dataclass(frozen=True, slots=True)
class ReadBlockResponse:
    segment_id: str
    block: int
    #: Immutable view of the block image at the read point.
    image: tuple[tuple[str, object], ...]
    version_lsn: int

    def image_dict(self) -> dict:
        return dict(self.image)


# ----------------------------------------------------------------------
# Gossip (RPC between peer segments, section 2.3)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class GossipQuery:
    """'What do you have past my SCL?'"""

    from_segment: str
    pg_index: int
    scl: int
    epochs: EpochStamp


@dataclass(frozen=True, slots=True)
class GossipResponse:
    segment_id: str
    pg_index: int
    scl: int
    records: tuple[LogRecord, ...]
    #: Database instances the responder has seen; lets a freshly restored
    #: or hydrated peer know whom to (re-)acknowledge.
    known_instances: tuple[str, ...] = ()
    #: The responder's GC horizon: a peer whose SCL is below it cannot
    #: catch up via the hot log alone and must hydrate a baseline.
    gc_horizon: int = 0


# ----------------------------------------------------------------------
# Crash recovery (RPC, section 2.4)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RecoveryScanRequest:
    pg_index: int
    epochs: EpochStamp


@dataclass(frozen=True, slots=True)
class RecoveryScanResponse:
    segment_id: str
    pg_index: int
    scl: int
    digests: tuple[ChainDigest, ...]
    #: Records at or below this point may be GC'd from the hot log; they
    #: are known volume-complete (see repro.core.recovery).
    gc_horizon: int = 0


@dataclass(frozen=True, slots=True)
class TruncateRequest:
    """Install the recovery truncation range and the new volume epoch."""

    pg_index: int
    #: Highest surviving LSN routed to this PG.
    pg_point: int
    truncation: TruncationRange
    new_epochs: EpochStamp


@dataclass(frozen=True, slots=True)
class TruncateAck:
    segment_id: str
    pg_index: int
    scl: int


# ----------------------------------------------------------------------
# Epoch / membership control (RPC, section 4.1)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class EpochWrite:
    """Record a new epoch on a segment (counts toward the write quorum)."""

    pg_index: int
    #: Epochs the writer believes are current (validated like any request).
    epochs: EpochStamp
    new_epochs: EpochStamp


@dataclass(frozen=True, slots=True)
class EpochWriteAck:
    segment_id: str
    epochs: EpochStamp


# ----------------------------------------------------------------------
# GC floor advancement (one-way, section 3.4)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class GCFloorUpdate:
    instance_id: str
    pg_index: int
    pgmrpl: int
    epochs: EpochStamp


# ----------------------------------------------------------------------
# Scrub repair (RPC between peer segments, section 2.3's "peer-to-peer
# repair of damaged blocks" running over the same network as everything
# else -- it experiences latency, partitions, and crashes like any flow)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ScrubRepairRequest:
    """A scrubbing segment asks a peer for clean copies of corrupt
    ``(block, version_lsn)`` pairs."""

    from_segment: str
    pg_index: int
    failures: tuple[tuple[int, int], ...]
    epochs: EpochStamp


@dataclass(frozen=True, slots=True)
class ScrubRepairResponse:
    """Clean ``(block, version_lsn, image)`` triples; only versions the
    responder holds *and* that verify against their own checksum."""

    segment_id: str
    pg_index: int
    versions: tuple[tuple[int, int, tuple[tuple[str, object], ...]], ...]


# ----------------------------------------------------------------------
# Quorum-vote integrity repair (RPC between peer segments, DESIGN.md §12).
# Replaces trust-one-random-peer scrub repair: the scrubbing segment polls
# a read-quorum-sized peer sample for content digests, and only adopts an
# image the majority agrees on -- so a misdirected write (valid checksum,
# wrong content) is caught and a single corrupt peer can never propagate.
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class IntegrityVoteRequest:
    """Per block: the requester's coverage window and its retained
    ``(version_lsn, image_checksum)`` pairs inside it.  ``record_lsns``
    additionally probes for clean hot-log copies of those records."""

    from_segment: str
    pg_index: int
    #: (block, window_lo, window_hi, ((version_lsn, checksum), ...)).
    #: A checksum of 0 with an LSN present means "I hold this version but
    #: cannot vouch for it" (quarantined / locally corrupt).
    blocks: tuple[tuple[int, int, int, tuple[tuple[int, int], ...]], ...]
    record_lsns: tuple[int, ...]
    epochs: EpochStamp


@dataclass(frozen=True, slots=True)
class IntegrityVoteResponse:
    """Per block: the responder's coverage overlap with the requested
    window and its verified versions inside it.  An image is attached only
    where the requester's checksum was absent or different (the ballot
    itself is just ``(lsn, checksum)``)."""

    segment_id: str
    pg_index: int
    #: (block, cover_lo, cover_hi,
    #:  ((version_lsn, checksum, image-or-None), ...)).
    blocks: tuple[
        tuple[int, int, int, tuple[tuple[int, int, object], ...]], ...
    ]
    #: Clean hot-log records for the probed LSNs the responder still holds.
    records: tuple[LogRecord, ...] = ()


# ----------------------------------------------------------------------
# Hydration of a replacement segment (RPC, section 4.2)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class BaselineRequest:
    """A hydrating segment asks a healthy full peer for its baseline."""

    from_segment: str
    pg_index: int
    epochs: EpochStamp


@dataclass(frozen=True, slots=True)
class BaselineResponse:
    segment_id: str
    pg_index: int
    #: (block, version_lsn, image) triples for the materialized baseline.
    blocks: tuple[tuple[int, int, tuple[tuple[str, object], ...]], ...]
    coalesced_upto: int
    gc_horizon: int
    scl: int
    records: tuple[LogRecord, ...]
