"""The simulated multi-tenant scale-out storage fleet.

This package implements the storage side of the paper:

- :mod:`repro.storage.page` -- non-destructive, versioned data blocks.
- :mod:`repro.storage.segment` -- a segment: the hot log, the segment chain
  (SCL), redo application / coalescing, reads at a point, GC, scrub, backup
  interaction.  Segments come in *full* and *tail* flavours (section 4.2).
- :mod:`repro.storage.messages` -- the wire protocol between database
  instances and storage nodes.
- :mod:`repro.storage.node` -- the storage-node actor: Figure 2's eight
  activities (including peer-to-peer gossip hole-filling) wired to the
  simulated network, with epoch validation on every request.
- :mod:`repro.storage.backup` -- the simulated S3 archive.
- :mod:`repro.storage.metadata` -- the storage metadata service: volume
  geometry, protection-group membership, epochs.
- :mod:`repro.storage.volume` -- volume geometry and block routing.
"""

from repro.storage.backup import SimulatedS3
from repro.storage.metadata import StorageMetadataService
from repro.storage.node import StorageNode
from repro.storage.page import BlockVersionChain
from repro.storage.segment import Segment, SegmentKind
from repro.storage.volume import VolumeGeometry

__all__ = [
    "BlockVersionChain",
    "Segment",
    "SegmentKind",
    "SimulatedS3",
    "StorageMetadataService",
    "StorageNode",
    "VolumeGeometry",
]
