"""Versioned data blocks.

"Aurora blocks are written out-of-place and non-destructively.  Older
versions are not garbage collected until we can assure neither the writer
instance or any replica might need to access it." (section 3.4)

A :class:`BlockVersionChain` keeps every materialized version of one block,
ordered by LSN.  Reads ask for the latest version at or below a read point;
garbage collection drops versions strictly below the PGMRPL floor (always
retaining the newest version at or below the floor, which future reads at or
above the floor may still need).

Each version carries a checksum so the scrubber (Figure 2, activity 8) can
"periodically scrub data to ensure checksums continue to match the data on
disk"; tests inject corruption to exercise it.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.lsn import NULL_LSN
from repro.errors import ReadPointError


def image_checksum(image: Mapping[str, Any]) -> int:
    """Deterministic checksum of a block image (order-independent).

    A frozenset hash is order-independent by construction, which avoids
    repr-ing and sorting the keys -- this is among the hottest functions in
    long simulations.  Most images hold hashable values (tuples, ints,
    strings), which hash directly; only images carrying unhashable values
    fall back to ``repr``.  Equal images always take the same path, so the
    checksum stays a pure content function either way.
    """
    try:
        return hash(frozenset(image.items()))
    except TypeError:
        return hash(frozenset((k, repr(v)) for k, v in image.items()))


class BlockVersion:
    """One materialized version of a block.

    ``quarantined`` marks a version the read path caught failing
    verification: it must never be served or vouched for in a repair vote
    until overwritten with a verified peer image (DESIGN.md §12).

    The checksum is captured lazily: the vast majority of versions written
    during a simulation are never individually read, voted on, or scrubbed,
    so the checksum of the just-applied image is only materialized on first
    access.  Corruption injectors force-capture it *before* mutating the
    image (bit-rot damages data under an already-recorded checksum), which
    keeps detection semantics identical to eager capture.
    """

    __slots__ = ("lsn", "image", "_checksum", "quarantined")

    def __init__(
        self,
        lsn: int,
        image: dict[str, Any],
        checksum: int | None = None,
        quarantined: bool = False,
    ) -> None:
        self.lsn = lsn
        self.image = image
        self._checksum = checksum
        self.quarantined = quarantined

    @property
    def checksum(self) -> int:
        """Recorded checksum, captured from the image on first access."""
        if self._checksum is None:
            self._checksum = image_checksum(self.image)
        return self._checksum

    @checksum.setter
    def checksum(self, value: int) -> None:
        self._checksum = value

    @staticmethod
    def of(lsn: int, image: Mapping[str, Any]) -> "BlockVersion":
        return BlockVersion(lsn=lsn, image=dict(image))

    @staticmethod
    def of_owned(lsn: int, image: dict[str, Any]) -> "BlockVersion":
        """Like :meth:`of` but takes ownership of ``image`` (no copy)."""
        return BlockVersion(lsn=lsn, image=image)

    def verify(self) -> bool:
        return not self.quarantined and self.checksum == image_checksum(self.image)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BlockVersion lsn={self.lsn} keys={len(self.image)}>"


#: Shared empty image returned by :meth:`BlockVersionChain.latest_image_view`.
_EMPTY_IMAGE: Mapping[str, Any] = {}


class BlockVersionChain:
    """All retained versions of one block, ordered by ascending LSN."""

    def __init__(self, block: int) -> None:
        self.block = block
        self._versions: list[BlockVersion] = []

    @property
    def versions(self) -> list[BlockVersion]:
        return list(self._versions)

    @property
    def latest_lsn(self) -> int:
        return self._versions[-1].lsn if self._versions else NULL_LSN

    def append(self, lsn: int, image: Mapping[str, Any]) -> BlockVersion:
        """Add a new version; LSNs must strictly increase."""
        if self._versions and lsn <= self._versions[-1].lsn:
            raise ReadPointError(lsn, self._versions[-1].lsn + 1, 2**63)
        version = BlockVersion.of(lsn, image)
        self._versions.append(version)
        return version

    def append_owned(self, lsn: int, image: dict[str, Any]) -> BlockVersion:
        """Append a version taking ownership of ``image`` (no defensive copy).

        Redo application builds a fresh image per record; copying it again on
        append doubled the allocation cost of the coalesce hot loop.  Callers
        must not mutate ``image`` after handing it over.
        """
        if self._versions and lsn <= self._versions[-1].lsn:
            raise ReadPointError(lsn, self._versions[-1].lsn + 1, 2**63)
        version = BlockVersion.of_owned(lsn, image)
        self._versions.append(version)
        return version

    def latest_image(self) -> dict[str, Any]:
        """The newest image (empty dict for a never-written block)."""
        if not self._versions:
            return {}
        return dict(self._versions[-1].image)

    def latest_image_view(self) -> Mapping[str, Any]:
        """Read-only view of the newest image (no copy; do not mutate).

        Redo payloads are pure (they never mutate their input), so the
        coalesce hot loop can apply them directly against the stored image.
        """
        if not self._versions:
            return _EMPTY_IMAGE
        return self._versions[-1].image

    def version_at(self, read_point: int) -> BlockVersion | None:
        """Latest version with ``lsn <= read_point`` (binary search)."""
        lo, hi = 0, len(self._versions)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._versions[mid].lsn <= read_point:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        return self._versions[lo - 1]

    def image_at(self, read_point: int) -> dict[str, Any]:
        version = self.version_at(read_point)
        return dict(version.image) if version is not None else {}

    def gc_below(self, floor: int) -> int:
        """Drop versions no reader can need; returns the number removed.

        Retains every version with ``lsn >= floor`` plus the single newest
        version below the floor (the base image for reads at the floor).
        """
        keep_from = 0
        for i, version in enumerate(self._versions):
            if version.lsn <= floor:
                keep_from = i
        removed = keep_from
        self._versions = self._versions[keep_from:]
        return removed

    def truncate_above(self, lsn: int, last: int | None = None) -> int:
        """Discard versions in ``(lsn, last]`` (recovery annulment).

        Versions above ``last`` were materialized from a post-recovery
        writer generation and survive a late-delivered truncation;
        ``last=None`` discards everything above ``lsn``.  Returns the
        number of versions removed.
        """
        kept = [
            v
            for v in self._versions
            if v.lsn <= lsn or (last is not None and v.lsn > last)
        ]
        removed = len(self._versions) - len(kept)
        self._versions = kept
        return removed

    def insert(self, lsn: int, image: Mapping[str, Any]) -> BlockVersion:
        """Insert a version at an arbitrary chain position (repair adopt).

        Unlike :meth:`append` this accepts mid-chain LSNs -- peer repair of
        a lost write restores a version *between* existing ones.  The LSN
        must not collide with a retained version.
        """
        version = BlockVersion.of(lsn, image)
        lo, hi = 0, len(self._versions)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._versions[mid].lsn < lsn:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self._versions) and self._versions[lo].lsn == lsn:
            raise ReadPointError(lsn, lsn + 1, 2**63)
        self._versions.insert(lo, version)
        return version

    def remove_version(self, lsn: int) -> bool:
        """Drop the version at exactly ``lsn`` (misdirected-write cleanup)."""
        for i, version in enumerate(self._versions):
            if version.lsn == lsn:
                del self._versions[i]
                return True
        return False

    def corrupt_version(
        self,
        lsn: int | None = None,
        *,
        valid_checksum: bool = False,
        image: Mapping[str, Any] | None = None,
    ) -> int | None:
        """Injector API: silently damage a stored version in place.

        ``lsn=None`` targets the newest version.  With
        ``valid_checksum=False`` the image is mutated *under* its recorded
        checksum (disk bit-rot -- local verification catches it).  With
        ``valid_checksum=True`` the image (``image`` or a marker) replaces
        the stored one and the checksum is recomputed, modelling a
        misdirected write: self-consistent, only a cross-peer content vote
        can catch it.  Returns the damaged LSN, or ``None`` if no version
        matched.
        """
        if not self._versions:
            return None
        victim = self._versions[-1] if lsn is None else None
        if victim is None:
            for version in self._versions:
                if version.lsn == lsn:
                    victim = version
                    break
        if victim is None:
            return None
        # Capture the checksum of the *good* image before damaging it: bit
        # rot mutates data under an already-recorded checksum.  (With lazy
        # capture this is the injection point's responsibility.)
        victim.checksum
        new_image = dict(image) if image is not None else dict(victim.image)
        if image is None:
            new_image["__corrupted__"] = True
        victim.image = new_image
        if valid_checksum:
            victim.checksum = image_checksum(new_image)
        return victim.lsn

    def corrupt_latest(self) -> None:
        """Back-compat shim for :meth:`corrupt_version` (newest, bit-rot)."""
        self.corrupt_version()

    def scrub(self) -> list[int]:
        """Return the LSNs of versions whose checksum no longer matches."""
        return [v.lsn for v in self._versions if not v.verify()]

    def __len__(self) -> int:
        return len(self._versions)
