"""Storage cost amplification (section 4.2).

"In Aurora, a protection group is composed of three full segments, which
store both redo log records and materialized data blocks, and three tail
segments, which contain redo log records alone.  Since most databases use
much more space for data blocks than for redo logs, this yields a cost
amplification closer to three copies of the data rather than a full six."

:class:`CostModel` computes the amplification factor (bytes stored per byte
of user data) for any segment mix, given the block:log space ratio, and the
resulting price per user GB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SegmentMix:
    """How many copies store blocks+log versus log only."""

    full_segments: int
    tail_segments: int

    def __post_init__(self) -> None:
        if self.full_segments < 1 or self.tail_segments < 0:
            raise ConfigurationError(
                "need at least one full segment and non-negative tails"
            )

    @property
    def total(self) -> int:
        return self.full_segments + self.tail_segments

    @classmethod
    def from_replication(cls, replication) -> "SegmentMix":
        """The mix implied by a backend's
        :class:`~repro.storage.backend.ReplicationConfig`: block-holding
        copies versus log-only copies (Aurora full/tail tails and Taurus
        log stores alike store redo without materialized blocks)."""
        return cls(
            full_segments=replication.full_copies,
            tail_segments=replication.log_only_copies,
        )


#: The paper's designs.
ALL_FULL_V6 = SegmentMix(full_segments=6, tail_segments=0)
FULL_TAIL_V6 = SegmentMix(full_segments=3, tail_segments=3)
#: Taurus's log/page split: 2 page stores + 3 log stores.
TAURUS_MIX = SegmentMix(full_segments=2, tail_segments=3)


def sync_write_amplification(replication) -> int:
    """Copies of each redo byte crossing the wire before the commit ack.

    Aurora ships every batch to all six segments; Taurus only to its
    three log stores (page stores learn via gossip off the commit path).
    """
    return replication.sync_write_copies


class CostModel:
    """Bytes-stored amplification for a protection-group segment mix.

    ``log_to_block_ratio`` is the steady-state ratio of retained redo-log
    bytes to materialized data-block bytes (small: logs are trimmed as
    blocks coalesce and backups complete; 0.05-0.2 is typical).
    """

    def __init__(self, log_to_block_ratio: float = 0.1) -> None:
        if log_to_block_ratio < 0:
            raise ConfigurationError("log_to_block_ratio must be >= 0")
        self.log_to_block_ratio = log_to_block_ratio

    def amplification(self, mix: SegmentMix) -> float:
        """Bytes stored across the PG per byte of user data.

        Full segments store blocks (1.0) + log; tail segments store only
        the log.
        """
        log = self.log_to_block_ratio
        per_full = 1.0 + log
        per_tail = log
        return mix.full_segments * per_full + mix.tail_segments * per_tail

    def savings_vs_all_full(self, mix: SegmentMix) -> float:
        """Fractional byte savings of ``mix`` relative to six full copies."""
        baseline = self.amplification(ALL_FULL_V6)
        return 1.0 - self.amplification(mix) / baseline

    def price_per_user_gb(
        self, mix: SegmentMix, raw_price_per_gb_month: float
    ) -> float:
        """What one user GB costs per month under this mix."""
        return self.amplification(mix) * raw_price_per_gb_month

    def sweep_ratios(
        self, mix: SegmentMix, ratios: list[float]
    ) -> list[tuple[float, float]]:
        """(ratio, amplification) series for sensitivity plots."""
        results = []
        for ratio in ratios:
            model = CostModel(log_to_block_ratio=ratio)
            results.append((ratio, model.amplification(mix)))
        return results


def measured_amplification_from_cluster(cluster) -> dict[str, float]:
    """Empirical cross-check: count bytes actually held by a simulated
    cluster's segments (block versions as block bytes, hot log as log
    bytes), normalized per byte of latest user data.
    """
    import sys

    block_bytes = 0
    log_bytes = 0
    user_bytes = 0
    seen_user_blocks: set[int] = set()
    for node in cluster.nodes.values():
        segment = node.segment
        for record in segment.hot_log.values():
            log_bytes += sys.getsizeof(record.payload)
        for block, chain in segment.blocks.items():
            for version in chain.versions:
                size = sum(
                    sys.getsizeof(k) + sys.getsizeof(v)
                    for k, v in version.image.items()
                )
                block_bytes += size
                if block not in seen_user_blocks and version.lsn == chain.latest_lsn:
                    user_bytes += size
                    seen_user_blocks.add(block)
    total = block_bytes + log_bytes
    return {
        "block_bytes": float(block_bytes),
        "log_bytes": float(log_bytes),
        "user_bytes": float(max(user_bytes, 1)),
        "amplification": total / max(user_bytes, 1),
    }


def wire_compression_from_network(stats) -> dict[str, float]:
    """On-wire write amplification under redo compression.

    ``stats`` is a :class:`~repro.sim.network.NetworkStats` captured in
    detailed mode: every transmitted WriteBatch contributes its modelled
    compressed size (``wire_bytes_sent``) and the uncompressed size of the
    same records (``logical_bytes_sent``) *per fan-out copy*, so the ratio
    is the network-level savings of delta-encoded LSNs plus superseded-
    payload elision -- the honest denominator for bench C6's wire numbers.
    """
    wire = float(stats.wire_bytes_sent)
    logical = float(stats.logical_bytes_sent)
    return {
        "wire_bytes": wire,
        "logical_bytes": logical,
        "compression_ratio": logical / max(wire, 1.0),
        "savings_pct": (
            100.0 * (1.0 - wire / logical) if logical else 0.0
        ),
    }
