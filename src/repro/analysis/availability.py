"""Quorum availability combinatorics (Figure 1).

Figure 1 contrasts a 2/3 quorum spread one-copy-per-AZ with Aurora's 4/6
write / 3/6 read quorum spread two-copies-per-AZ:

- losing one AZ under 2/3 leaves 2 copies: the 2/3 *write* quorum survives
  only if both survivors are up, and **one more failure breaks it** --
  "quorum break on AZ failure" once the background noise of independent
  failures is counted;
- losing one AZ under 4/6 leaves 4 copies: writes (4/6) survive exactly,
  and reads (3/6) additionally survive **AZ+1** -- one more independent
  failure -- preserving the ability to repair.

The functions here compute exact availabilities by enumerating up-sets
(member universes are tiny), for any :class:`~repro.core.quorum.QuorumExpr`
-- so the same machinery scores plain quorums, full/tail quorum sets, and
mid-transition quorum sets.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from repro.core.quorum import QuorumExpr
from repro.errors import ConfigurationError


def _up_set_probability(
    members: list[str], up: set[str], p_up: Mapping[str, float]
) -> float:
    probability = 1.0
    for member in members:
        p = p_up[member]
        probability *= p if member in up else (1.0 - p)
    return probability


def quorum_availability(
    expr: QuorumExpr, p_node_up: float | Mapping[str, float]
) -> float:
    """Probability the expression is satisfiable by the up-set.

    ``p_node_up`` is either one probability applied to every member or a
    per-member map.  Exact enumeration over 2^n subsets.
    """
    members = sorted(expr.members())
    if isinstance(p_node_up, (int, float)):
        if not 0.0 <= p_node_up <= 1.0:
            raise ConfigurationError("p_node_up must be in [0, 1]")
        p_map: Mapping[str, float] = {m: float(p_node_up) for m in members}
    else:
        p_map = p_node_up
    total = 0.0
    for size in range(len(members) + 1):
        for combo in itertools.combinations(members, size):
            up = set(combo)
            if expr.satisfied(up):
                total += _up_set_probability(members, up, p_map)
    return total


def quorum_availability_under_az_failure(
    expr: QuorumExpr,
    az_of: Mapping[str, str],
    failed_az: str,
    p_node_up: float = 1.0,
) -> float:
    """Availability conditioned on one whole AZ being down.

    Members in ``failed_az`` are forced down; the rest stay up with
    probability ``p_node_up``.
    """
    members = sorted(expr.members())
    survivors = [m for m in members if az_of[m] != failed_az]
    total = 0.0
    for size in range(len(survivors) + 1):
        for combo in itertools.combinations(survivors, size):
            up = set(combo)
            if expr.satisfied(up):
                probability = 1.0
                for member in survivors:
                    probability *= (
                        p_node_up if member in up else (1.0 - p_node_up)
                    )
                total += probability
    return total


def az_failure_survival(
    expr: QuorumExpr,
    az_of: Mapping[str, str],
    extra_failures: int = 0,
) -> bool:
    """Does the quorum survive the WORST-case AZ loss plus ``extra_failures``
    additional worst-case independent node losses?

    This is the deterministic version of Figure 1's argument: Aurora's 3/6
    read quorum survives AZ+1 for every choice of AZ and extra node; the
    2/3 scheme does not even survive AZ+1 for writes.
    """
    members = sorted(expr.members())
    azs = sorted(set(az_of.values()))
    for failed_az in azs:
        survivors = [m for m in members if az_of[m] != failed_az]
        # Adversarial extra failures: try every combination of survivors.
        for doomed in itertools.combinations(survivors, extra_failures):
            up = set(survivors) - set(doomed)
            if not expr.satisfied(up):
                return False
    return True


def monte_carlo_availability(
    expr: QuorumExpr,
    az_of: Mapping[str, str],
    p_node_fail: float,
    p_az_fail: float,
    trials: int,
    rng,
) -> float:
    """Simulation cross-check: sample correlated AZ + independent failures.

    Each trial fails every AZ independently with ``p_az_fail`` (taking all
    its members down) and each surviving member with ``p_node_fail``;
    returns the fraction of trials in which the expression held.
    """
    members = sorted(expr.members())
    azs = sorted(set(az_of.values()))
    satisfied = 0
    for _ in range(trials):
        down_azs = {az for az in azs if rng.random() < p_az_fail}
        up = {
            m
            for m in members
            if az_of[m] not in down_azs and rng.random() >= p_node_fail
        }
        if expr.satisfied(up):
            satisfied += 1
    return satisfied / trials
