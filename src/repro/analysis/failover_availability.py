"""Write-availability analysis of writer failover (sections 3.2 and 6).

The paper's availability story for the database tier is the mirror of its
durability story for storage: because the volume itself survives the
writer ("the database instance is stateless with respect to durability"),
a writer failure costs only the *detection + promotion* window -- the
promoted replica "only needs to run a local crash recovery".  Industry
budgets for that window are around 30 seconds end to end (the classic
Aurora failover SLA; Taurus-class systems advertise similar figures).

:func:`failover_availability` evaluates the windows the simulator
*measured* -- detection latency, promotion time, and the total
write-unavailability window (writer failure to successor open) -- against
that budget, the same closed-loop treatment
:func:`repro.analysis.fleet_durability` gives the storage tier's C7
window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: End-to-end write-unavailability budget per failover: the ~30 s
#: detect-promote-reconnect figure published for Aurora-class managed
#: databases.  Simulated milliseconds are treated as real milliseconds,
#: as in the durability analysis.
FAILOVER_BUDGET_S = 30.0


@dataclass
class WindowPoint:
    """Distribution summary of one measured failover window."""

    samples: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    max_ms: float

    def line(self) -> str:
        return (
            f"mean={self.mean_ms:.0f}ms p50={self.p50_ms:.0f}ms "
            f"p95={self.p95_ms:.0f}ms max={self.max_ms:.0f}ms "
            f"(n={self.samples})"
        )


@dataclass
class FailoverAvailabilityReport:
    """Achieved failover windows versus the availability budget.

    Availability, like durability, is a tail phenomenon: the budget must
    hold for the *worst* observed failover, not the average one, so
    ``meets_budget`` compares the max of the total-unavailability
    distribution against the budget.
    """

    detection: WindowPoint | None
    promotion: WindowPoint | None
    unavailability: WindowPoint
    budget_ms: float
    #: Fraction of the budget the worst observed failover consumed.
    worst_budget_fraction: float
    meets_budget: bool

    def render_lines(self) -> list[str]:
        lines = []
        if self.detection is not None:
            lines.append(f"  detection latency:   {self.detection.line()}")
        if self.promotion is not None:
            lines.append(f"  promotion time:      {self.promotion.line()}")
        lines.append(f"  write unavailability: {self.unavailability.line()}")
        lines.append(
            f"  budget ({self.budget_ms / 1000.0:.0f}s):         "
            + (
                f"met; worst failover used "
                f"{self.worst_budget_fraction:.1%} of budget"
                if self.meets_budget
                else f"EXCEEDED: worst failover used "
                f"{self.worst_budget_fraction:.1%} of budget"
            )
        )
        return lines


def _point(samples_ms: list[float]) -> WindowPoint | None:
    from repro.repair.metrics import percentile

    samples = [s for s in samples_ms if s >= 0]
    if not samples:
        return None
    return WindowPoint(
        samples=len(samples),
        mean_ms=sum(samples) / len(samples),
        p50_ms=percentile(samples, 50),
        p95_ms=percentile(samples, 95),
        max_ms=max(samples),
    )


def failover_availability(
    unavailability_samples_ms: list[float],
    detection_samples_ms: list[float] = (),
    promotion_samples_ms: list[float] = (),
    budget_s: float = FAILOVER_BUDGET_S,
) -> FailoverAvailabilityReport:
    """Evaluate measured failover windows against the availability budget.

    ``unavailability_samples_ms`` should include every terminal failover
    (restarts and rollbacks too, see
    :attr:`repro.repair.FailoverRecord.unavailability_ms`); feeding only
    clean promotions understates the tail.
    """
    if budget_s <= 0:
        raise ConfigurationError("budget_s must be > 0")
    unavailability = _point(unavailability_samples_ms)
    if unavailability is None:
        raise ConfigurationError(
            "failover_availability needs at least one unavailability window"
        )
    budget_ms = budget_s * 1000.0
    return FailoverAvailabilityReport(
        detection=_point(detection_samples_ms),
        promotion=_point(promotion_samples_ms),
        unavailability=unavailability,
        budget_ms=budget_ms,
        worst_budget_fraction=unavailability.max_ms / budget_ms,
        meets_budget=unavailability.max_ms <= budget_ms,
    )
