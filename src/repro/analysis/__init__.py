"""Analytic models for availability, durability, and cost.

These reproduce the arithmetic behind the paper's design arguments:

- :mod:`repro.analysis.availability` -- quorum availability under
  independent node failure and under correlated AZ failure (Figure 1's
  "why are 6 copies necessary?" argument).
- :mod:`repro.analysis.durability` -- the "AZ+1" window analysis: how
  likely is a 10-second repair window to contain the two extra failures
  that break quorum, across fleets of tens of thousands of segments.
- :mod:`repro.analysis.cost` -- storage amplification of the full/tail
  quorum set versus six full copies (section 4.2's ~3x result).
- :mod:`repro.analysis.failover_availability` -- measured writer-failover
  windows (detection, promotion, total write unavailability) against the
  ~30 s managed-database failover budget.
- :mod:`repro.analysis.rpo_rto` -- measured region-loss disaster
  recovery: RPO (zero for sync-acked commits, lag-bounded for async)
  and RTO against the cross-region recovery budget.
- :mod:`repro.analysis.serving` -- the client edge: proxied session
  recovery through failover, replica time-lag SLO, and read routing
  mix against the published serving envelope.
- :mod:`repro.analysis.integrity` -- silent-corruption handling: MTTD /
  MTTR / exposure distributions, read-path interception, and the
  zero-corrupt-reads gate, with measured exposure fed back into the C7
  durability model.
"""

from repro.analysis.availability import (
    az_failure_survival,
    quorum_availability,
    quorum_availability_under_az_failure,
)
from repro.analysis.cost import CostModel
from repro.analysis.durability import (
    C7_WINDOW_S,
    DurabilityModel,
    FleetDurabilityReport,
    fleet_durability,
    model_from_observed_mttr,
)
from repro.analysis.failover_availability import (
    FAILOVER_BUDGET_S,
    FailoverAvailabilityReport,
    failover_availability,
)
from repro.analysis.rpo_rto import (
    GEO_RTO_BUDGET_S,
    RpoRtoReport,
    rpo_rto_from_records,
    rpo_rto_report,
)
from repro.analysis.integrity import (
    INTEGRITY_REPAIR_BUDGET_MS,
    IntegrityReport,
    integrity_report,
    merge_integrity_reports,
)
from repro.analysis.serving import (
    REPLICA_LAG_SLO_MS,
    SESSION_RECOVERY_BUDGET_S,
    ServingReport,
    merge_serving_reports,
    serving_report,
)

__all__ = [
    "C7_WINDOW_S",
    "CostModel",
    "DurabilityModel",
    "FAILOVER_BUDGET_S",
    "FailoverAvailabilityReport",
    "FleetDurabilityReport",
    "GEO_RTO_BUDGET_S",
    "INTEGRITY_REPAIR_BUDGET_MS",
    "IntegrityReport",
    "REPLICA_LAG_SLO_MS",
    "RpoRtoReport",
    "SESSION_RECOVERY_BUDGET_S",
    "ServingReport",
    "failover_availability",
    "fleet_durability",
    "integrity_report",
    "merge_integrity_reports",
    "merge_serving_reports",
    "model_from_observed_mttr",
    "serving_report",
    "rpo_rto_from_records",
    "rpo_rto_report",
    "az_failure_survival",
    "quorum_availability",
    "quorum_availability_under_az_failure",
]
