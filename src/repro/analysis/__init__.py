"""Analytic models for availability, durability, and cost.

These reproduce the arithmetic behind the paper's design arguments:

- :mod:`repro.analysis.availability` -- quorum availability under
  independent node failure and under correlated AZ failure (Figure 1's
  "why are 6 copies necessary?" argument).
- :mod:`repro.analysis.durability` -- the "AZ+1" window analysis: how
  likely is a 10-second repair window to contain the two extra failures
  that break quorum, across fleets of tens of thousands of segments.
- :mod:`repro.analysis.cost` -- storage amplification of the full/tail
  quorum set versus six full copies (section 4.2's ~3x result).
"""

from repro.analysis.availability import (
    az_failure_survival,
    quorum_availability,
    quorum_availability_under_az_failure,
)
from repro.analysis.cost import CostModel
from repro.analysis.durability import (
    C7_WINDOW_S,
    DurabilityModel,
    FleetDurabilityReport,
    fleet_durability,
    model_from_observed_mttr,
)

__all__ = [
    "C7_WINDOW_S",
    "CostModel",
    "DurabilityModel",
    "FleetDurabilityReport",
    "fleet_durability",
    "model_from_observed_mttr",
    "az_failure_survival",
    "quorum_availability",
    "quorum_availability_under_az_failure",
]
