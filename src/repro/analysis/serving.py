"""Serving-tier analysis: session recovery, replica lag, routing mix.

The storage-tier analyses judge the simulator against the paper's
durability and availability arithmetic; this module judges the *client
edge* against the production envelope the serving tier advertises:

- **session recovery**: through a writer (or region) failover, every
  proxied session must be doing useful work again within the
  ~5-second application-recovery figure published for proxy-fronted
  Aurora fleets.  Recovery is a tail phenomenon like failover
  availability, so the gate compares the *worst* observed session
  outage against the budget.
- **replica lag**: read routing only deserves its replica fan-out if
  replicas track the writer closely; the envelope says sub-10 ms
  typical lag, which the gate applies to the steady-state p95 of the
  time-denominated lag distribution
  (:class:`repro.db.proxy.LagTracker`).
- **routing**: the report also summarises where reads actually went
  (replica vs writer fallback) and how often read-your-writes floors
  constrained the balancer -- the observability a proxy operator needs
  to size the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.failover_availability import WindowPoint, _point
from repro.errors import ConfigurationError

#: Proxy-fronted application recovery budget through a failover.
SESSION_RECOVERY_BUDGET_S = 5.0

#: Steady-state replica time-lag SLO, applied at p95.
REPLICA_LAG_SLO_MS = 10.0


@dataclass
class ServingReport:
    """Measured serving-tier behaviour versus the published envelope."""

    sessions: int
    ops: int
    #: Outage windows of sessions that saw a fault (empty => no faults).
    recovery: WindowPoint | None
    recovery_budget_ms: float
    #: Fraction of the budget the worst session outage consumed.
    worst_recovery_fraction: float
    meets_recovery: bool
    #: Steady-state replica time lag distribution (ms).
    lag: WindowPoint | None
    lag_slo_ms: float
    meets_lag_slo: bool
    #: Read routing mix.
    replica_reads: int
    writer_reads: int
    floor_exclusions: int
    pool_waits: int
    #: Correctness counters (audited separately; echoed for the report).
    ryw_violations: int = 0
    lost_acked_writes: int = 0
    #: Raw samples, kept so sweep footers can merge seeds.
    recovery_samples: list = None  # type: ignore[assignment]
    lag_samples: list = None  # type: ignore[assignment]

    @property
    def read_total(self) -> int:
        return self.replica_reads + self.writer_reads

    @property
    def replica_read_fraction(self) -> float:
        total = self.read_total
        return self.replica_reads / total if total else 0.0

    @property
    def ok(self) -> bool:
        return (
            self.meets_recovery
            and self.meets_lag_slo
            and self.ryw_violations == 0
            and self.lost_acked_writes == 0
        )

    def render_lines(self) -> list[str]:
        lines = [
            f"  sessions:            {self.sessions} ({self.ops} ops)",
        ]
        if self.recovery is not None:
            lines.append(f"  session recovery:    {self.recovery.line()}")
            budget_s = self.recovery_budget_ms / 1000.0
            lines.append(
                f"  recovery budget ({budget_s:.0f}s): "
                + (
                    f"met; worst outage used "
                    f"{self.worst_recovery_fraction:.1%} of budget"
                    if self.meets_recovery
                    else f"EXCEEDED: worst outage used "
                    f"{self.worst_recovery_fraction:.1%} of budget"
                )
            )
        else:
            lines.append("  session recovery:    no session saw an outage")
        if self.lag is not None:
            lines.append(f"  replica time lag:    {self.lag.line()}")
            lines.append(
                f"  lag SLO (p95 < {self.lag_slo_ms:.0f}ms): "
                + ("met" if self.meets_lag_slo else "EXCEEDED")
            )
        lines.append(
            f"  read routing:        {self.replica_reads} replica / "
            f"{self.writer_reads} writer "
            f"({self.replica_read_fraction:.1%} offloaded), "
            f"{self.floor_exclusions} RYW floor exclusions, "
            f"{self.pool_waits} pool waits"
        )
        if self.ryw_violations or self.lost_acked_writes:
            lines.append(
                f"  CONSISTENCY:         {self.ryw_violations} "
                f"read-your-writes violations, "
                f"{self.lost_acked_writes} lost acked writes"
            )
        return lines


def serving_report(
    sessions: int,
    ops: int,
    recovery_samples_ms: list,
    lag_samples_ms: list,
    replica_reads: int = 0,
    writer_reads: int = 0,
    floor_exclusions: int = 0,
    pool_waits: int = 0,
    ryw_violations: int = 0,
    lost_acked_writes: int = 0,
    recovery_budget_s: float = SESSION_RECOVERY_BUDGET_S,
    lag_slo_ms: float = REPLICA_LAG_SLO_MS,
) -> ServingReport:
    """Evaluate measured serving-tier distributions against the envelope.

    An empty ``recovery_samples_ms`` means no session ever saw a fault
    (a run without chaos); the recovery gate is then trivially met.
    The lag gate is applied to the p95 of ``lag_samples_ms``: transient
    spikes during promotion are expected, steady state is the claim.
    """
    if recovery_budget_s <= 0 or lag_slo_ms <= 0:
        raise ConfigurationError("serving budgets must be > 0")
    recovery = _point(list(recovery_samples_ms))
    lag = _point(list(lag_samples_ms))
    budget_ms = recovery_budget_s * 1000.0
    worst_fraction = (recovery.max_ms / budget_ms) if recovery else 0.0
    return ServingReport(
        sessions=sessions,
        ops=ops,
        recovery=recovery,
        recovery_budget_ms=budget_ms,
        worst_recovery_fraction=worst_fraction,
        meets_recovery=recovery is None or recovery.max_ms <= budget_ms,
        lag=lag,
        lag_slo_ms=lag_slo_ms,
        meets_lag_slo=lag is None or lag.p95_ms < lag_slo_ms,
        replica_reads=replica_reads,
        writer_reads=writer_reads,
        floor_exclusions=floor_exclusions,
        pool_waits=pool_waits,
        ryw_violations=ryw_violations,
        lost_acked_writes=lost_acked_writes,
        recovery_samples=list(recovery_samples_ms),
        lag_samples=list(lag_samples_ms),
    )


def merge_serving_reports(reports: list) -> ServingReport | None:
    """Fold per-seed reports into one sweep-level report (sample union,
    counter sums) -- the audit sweep footer's view."""
    reports = [r for r in reports if r is not None]
    if not reports:
        return None
    return serving_report(
        sessions=sum(r.sessions for r in reports),
        ops=sum(r.ops for r in reports),
        recovery_samples_ms=[
            s for r in reports for s in (r.recovery_samples or [])
        ],
        lag_samples_ms=[s for r in reports for s in (r.lag_samples or [])],
        replica_reads=sum(r.replica_reads for r in reports),
        writer_reads=sum(r.writer_reads for r in reports),
        floor_exclusions=sum(r.floor_exclusions for r in reports),
        pool_waits=sum(r.pool_waits for r in reports),
        ryw_violations=sum(r.ryw_violations for r in reports),
        lost_acked_writes=sum(r.lost_acked_writes for r in reports),
        recovery_budget_s=reports[0].recovery_budget_ms / 1000.0,
        lag_slo_ms=reports[0].lag_slo_ms,
    )
