"""Durability window analysis (sections 2.1 and 4).

The paper's argument: "Assuming a 10 second window to detect and repair a
segment failure, it would require two independent segment failures as well
as an AZ failure in the same 10 second period to lose the ability to repair
a quorum."  And on fleet scale: "with six segments spread across three AZs
for every 10GB of user data, a 64TB volume has 38,400 segments."

:class:`DurabilityModel` turns those sentences into numbers: per-quorum and
per-volume probabilities of losing write or read availability (or the
ability to repair) within a repair window, under Poisson segment failures
and rare AZ events, plus the fleet-wide expectation the paper's "some small
number of quorums will be degraded" remark describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.storage.volume import COPIES_PER_PG, SEGMENT_SIZE_GB

#: Seconds in a (365-day) year, for MTTF conversions.
SECONDS_PER_YEAR = 365 * 24 * 3600

#: The paper's assumed detect-and-repair window (section 2.2's "Assuming a
#: 10 second window to detect and repair a segment failure...") -- the C7
#: budget the self-healing control plane is measured against.
C7_WINDOW_S = 10.0


class DurabilityModel:
    """Quorum-loss probabilities for replicated protection groups.

    Parameters
    ----------
    segment_mttf_hours:
        Mean time to failure of one segment (disk/node/switch combined).
    repair_window_s:
        Detection + repair time for a failed segment (the paper's 10 s).
    az_failures_per_year:
        Rate of whole-AZ events.
    copies_per_pg:
        Copies on the synchronous durability path (Aurora: all 6; Taurus:
        the 3 log stores -- page stores are hydrated asynchronously and do
        not hold the durability quorum).
    write_loss_failures / read_loss_failures:
        Minimum simultaneous sync-path failures that break the write /
        read quorum (Aurora: 3 and 4; a 2/3 majority quorum: 2 and 2).
    segments_per_az:
        Sync-path copies sharing one AZ (the correlated exposure).

    The defaults are exactly Aurora's 4/6 write / 3/6 read quorum; use
    :meth:`from_replication` to instantiate from a backend's
    :class:`~repro.storage.backend.ReplicationConfig`.
    """

    def __init__(
        self,
        segment_mttf_hours: float = 10_000.0,
        repair_window_s: float = 10.0,
        az_failures_per_year: float = 0.5,
        copies_per_pg: int = COPIES_PER_PG,
        write_loss_failures: int = 3,
        read_loss_failures: int = 4,
        segments_per_az: int = 2,
        az_count: int = 3,
    ) -> None:
        if min(segment_mttf_hours, repair_window_s) <= 0:
            raise ConfigurationError("MTTF and repair window must be > 0")
        if az_failures_per_year < 0:
            raise ConfigurationError("az_failures_per_year must be >= 0")
        if not 1 <= write_loss_failures <= read_loss_failures:
            raise ConfigurationError(
                "need 1 <= write_loss_failures <= read_loss_failures"
            )
        if read_loss_failures > copies_per_pg:
            raise ConfigurationError(
                "read_loss_failures cannot exceed copies_per_pg"
            )
        if not 1 <= segments_per_az <= copies_per_pg:
            raise ConfigurationError(
                "need 1 <= segments_per_az <= copies_per_pg"
            )
        self.segment_mttf_hours = segment_mttf_hours
        self.repair_window_s = repair_window_s
        self.az_failures_per_year = az_failures_per_year
        self.copies_per_pg = copies_per_pg
        self.write_loss_failures = write_loss_failures
        self.read_loss_failures = read_loss_failures
        self.segments_per_az = segments_per_az
        self.az_count = az_count

    @classmethod
    def from_replication(cls, replication, **kwargs) -> "DurabilityModel":
        """A model with quorum arithmetic taken from a backend's
        :class:`~repro.storage.backend.ReplicationConfig` (keyword
        arguments pass through: MTTF, window, AZ rate)."""
        return cls(
            copies_per_pg=replication.sync_write_copies,
            write_loss_failures=replication.write_loss_failures,
            read_loss_failures=replication.read_loss_failures,
            segments_per_az=replication.segments_per_az,
            az_count=replication.az_count,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Elementary rates
    # ------------------------------------------------------------------
    @property
    def segment_failure_rate_per_s(self) -> float:
        return 1.0 / (self.segment_mttf_hours * 3600.0)

    def p_segment_fails_in_window(self) -> float:
        """P(one given segment fails within one repair window)."""
        rate = self.segment_failure_rate_per_s * self.repair_window_s
        return 1.0 - math.exp(-rate)

    def p_az_fails_in_window(self) -> float:
        rate = (
            self.az_failures_per_year / SECONDS_PER_YEAR
        ) * self.repair_window_s
        return 1.0 - math.exp(-rate)

    # ------------------------------------------------------------------
    # Per-quorum events within one window
    # ------------------------------------------------------------------
    def p_k_of_n_segments_fail(self, k: int, n: int | None = None) -> float:
        """P(exactly k of n independent segments fail in one window)."""
        if n is None:
            n = self.copies_per_pg
        p = self.p_segment_fails_in_window()
        return math.comb(n, k) * p**k * (1.0 - p) ** (n - k)

    def _p_at_least(self, j: int, m: int) -> float:
        """P(>= j of m independent segments fail in one window)."""
        if j <= 0:
            return 1.0
        if j > m:
            return 0.0
        p = self.p_segment_fails_in_window()
        return sum(
            math.comb(m, k) * p**k * (1.0 - p) ** (m - k)
            for k in range(j, m + 1)
        )

    def _p_quorum_loss(self, loss_failures: int) -> float:
        """P(>= ``loss_failures`` sync-path copies down in one window).

        Counts both the purely independent path and the correlated path:
        an AZ event removes ``segments_per_az`` copies at once, so only
        the remainder must fail independently alongside it.
        """
        n = self.copies_per_pg
        independent = self._p_at_least(loss_failures, n)
        p_az = self.p_az_fails_in_window()
        remainder = self._p_at_least(
            loss_failures - self.segments_per_az, n - self.segments_per_az
        )
        correlated = self.az_count * p_az * remainder
        return independent + correlated

    def p_write_quorum_loss(self) -> float:
        """P(enough copies down together to block writes).

        Aurora: >= 3 of 6 (4/6 writes unavailable) -- AZ + 1 more, or 3
        independent failures.  Taurus: >= 2 of the 3 log stores.
        """
        return self._p_quorum_loss(self.write_loss_failures)

    def p_read_quorum_loss(self) -> float:
        """P(enough copies down together to block reads and repair).

        This is the paper's data-loss-risk event: losing the read quorum
        means the volume can no longer repair itself.  Aurora: >= 4 of 6
        (AZ + 2, or 4 independent failures).
        """
        return self._p_quorum_loss(self.read_loss_failures)

    # ------------------------------------------------------------------
    # Fleet / volume scale
    # ------------------------------------------------------------------
    @staticmethod
    def segments_for_volume(volume_tb: float) -> int:
        """The paper's arithmetic: 64 TB -> 38,400 segments.

        (Decimal units, as the paper uses: 64 TB = 64,000 GB; at 10 GB per
        segment that is 6,400 protection groups x 6 copies.)
        """
        user_gb = volume_tb * 1000
        pgs = math.ceil(user_gb / SEGMENT_SIZE_GB)
        return pgs * COPIES_PER_PG

    @staticmethod
    def protection_groups_for_volume(volume_tb: float) -> int:
        return math.ceil(volume_tb * 1000 / SEGMENT_SIZE_GB)

    def windows_per_year(self) -> float:
        return SECONDS_PER_YEAR / self.repair_window_s

    def p_volume_read_loss_per_year(self, volume_tb: float) -> float:
        """P(any PG of the volume loses read quorum within a year)."""
        pgs = self.protection_groups_for_volume(volume_tb)
        p_window = self.p_read_quorum_loss()
        exposures = pgs * self.windows_per_year()
        # Rare-event complement computed in log space: p_window can be
        # ~1e-19, far below float epsilon, so (1 - p)^n would collapse to
        # exactly 1.0 and hide the risk entirely.
        return -math.expm1(exposures * math.log1p(-p_window))

    def expected_degraded_quorums(
        self, fleet_pgs: int, mttr_s: float | None = None
    ) -> float:
        """Steady-state expected number of PGs with >= 1 member down.

        The paper: "Across a large fleet, some small number of quorums
        will be degraded, with some quorum member already failed at the
        time of an AZ failure."
        """
        mttr = mttr_s if mttr_s is not None else self.repair_window_s
        rate = self.segment_failure_rate_per_s
        p_member_down = (rate * mttr) / (1.0 + rate * mttr)
        p_pg_degraded = 1.0 - (1.0 - p_member_down) ** self.copies_per_pg
        return fleet_pgs * p_pg_degraded

    def mean_windows_to_read_loss(self) -> float:
        """Expected number of repair windows until one PG breaks reads."""
        p = self.p_read_quorum_loss()
        return math.inf if p == 0 else 1.0 / p


def model_from_observed_mttr(
    mean_mttr_ms: float,
    segment_mttf_hours: float = 10_000.0,
    az_failures_per_year: float = 0.5,
) -> DurabilityModel:
    """A :class:`DurabilityModel` whose repair window is a *measured* MTTR.

    The paper *assumes* "a 10 second window to detect and repair a segment
    failure"; the self-healing control plane measures the window it
    actually achieves (failure to finalized replacement, see
    :class:`repro.repair.RepairRecord`).  Feeding the observed mean back
    in closes the loop: the AZ+1 quorum-loss probabilities below are then
    statements about the system as built, not about an assumption.

    Simulated milliseconds are treated as real milliseconds -- the
    simulator's latency scales are modelled on real datacenter numbers, so
    the conversion is direct.
    """
    if mean_mttr_ms <= 0:
        raise ConfigurationError("mean_mttr_ms must be > 0")
    return DurabilityModel(
        segment_mttf_hours=segment_mttf_hours,
        repair_window_s=mean_mttr_ms / 1000.0,
        az_failures_per_year=az_failures_per_year,
    )


@dataclass
class FleetDurabilityReport:
    """Achieved durability versus the paper's C7 window, from *measured*
    repair-window distributions.

    Durability is a tail phenomenon: the quorum-loss exposure of a fleet
    is set by its slowest repairs, not its average ones, so the report
    evaluates the AZ+1 read-quorum-loss probability at the mean, p95, and
    max of the observed distribution and compares each against the
    probability the paper's assumed 10-second window would give.
    """

    samples: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    max_ms: float
    #: P(read-quorum loss in one window) at each observed window size.
    p_loss_mean: float
    p_loss_p95: float
    p_loss_max: float
    #: The same probability under the paper's assumed C7 window.
    p_loss_c7: float
    #: Whether even the worst observed repair finished inside C7.
    meets_c7: bool
    detection: "LatencyPoint | None" = None

    def render_lines(self) -> list[str]:
        lines = [
            f"  repair window:       mean={self.mean_ms:.0f}ms "
            f"p50={self.p50_ms:.0f}ms p95={self.p95_ms:.0f}ms "
            f"max={self.max_ms:.0f}ms (n={self.samples})",
        ]
        if self.detection is not None:
            lines.append(
                f"  detection latency:   mean={self.detection.mean_ms:.0f}ms "
                f"p95={self.detection.p95_ms:.0f}ms "
                f"max={self.detection.max_ms:.0f}ms"
            )
        lines += [
            f"  AZ+1 read-quorum-loss probability per window:",
            f"    at observed mean:  {self.p_loss_mean:.3e}",
            f"    at observed p95:   {self.p_loss_p95:.3e}",
            f"    at observed max:   {self.p_loss_max:.3e}",
            f"    at paper C7 (10s): {self.p_loss_c7:.3e}",
            f"  C7 window ({C7_WINDOW_S:.0f}s):     "
            + (
                "met by every observed repair"
                if self.meets_c7
                else "EXCEEDED by the observed tail"
            ),
        ]
        return lines


@dataclass
class LatencyPoint:
    """Detection-latency summary carried alongside the repair window."""

    mean_ms: float
    p95_ms: float
    max_ms: float


def fleet_durability(
    mttr_samples_ms: list[float],
    detection_samples_ms: list[float] = (),
    segment_mttf_hours: float = 10_000.0,
    az_failures_per_year: float = 0.5,
) -> FleetDurabilityReport:
    """Evaluate a fleet's measured repair windows against the C7 budget.

    ``mttr_samples_ms`` should include *every* terminal repair (stalled
    and rolled-back attempts too, see
    :attr:`repro.repair.RepairRecord.resolution_ms`); feeding only
    finalized repairs understates the tail.
    """
    from repro.repair.metrics import percentile

    samples = [s for s in mttr_samples_ms if s > 0]
    if not samples:
        raise ConfigurationError(
            "fleet_durability needs at least one positive repair window"
        )

    def p_loss(window_ms: float) -> float:
        return DurabilityModel(
            segment_mttf_hours=segment_mttf_hours,
            repair_window_s=window_ms / 1000.0,
            az_failures_per_year=az_failures_per_year,
        ).p_read_quorum_loss()

    mean_ms = sum(samples) / len(samples)
    p95_ms = percentile(samples, 95)
    max_ms = max(samples)
    detection = None
    detections = [s for s in detection_samples_ms if s >= 0]
    if detections:
        detection = LatencyPoint(
            mean_ms=sum(detections) / len(detections),
            p95_ms=percentile(detections, 95),
            max_ms=max(detections),
        )
    return FleetDurabilityReport(
        samples=len(samples),
        mean_ms=mean_ms,
        p50_ms=percentile(samples, 50),
        p95_ms=p95_ms,
        max_ms=max_ms,
        p_loss_mean=p_loss(mean_ms),
        p_loss_p95=p_loss(p95_ms),
        p_loss_max=p_loss(max_ms),
        p_loss_c7=p_loss(C7_WINDOW_S * 1000.0),
        meets_c7=max_ms <= C7_WINDOW_S * 1000.0,
        detection=detection,
    )
