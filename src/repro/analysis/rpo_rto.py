"""Disaster-recovery analysis for the geo-replicated Global Database
tier: recovery-point and recovery-time objectives under region loss.

The intra-region failover story (:mod:`repro.analysis.failover_availability`)
measures how long writes are unavailable when the *writer* dies inside a
surviving volume.  Region loss is the stronger disaster: the volume
itself is gone, and recovery happens from the secondary region's replica
volume.  Two objectives replace the single availability budget:

- **RPO** (recovery point): how many milliseconds of acknowledged work
  the promoted region may be missing.  In ``sync`` ack mode the commit
  path gates on the secondary's applied frontier, so the objective is
  *zero* -- any acknowledged-commit loss is an invariant violation, not
  a statistic.  In ``async`` mode the RPO is bounded by the replication
  lag frontier at the moment of failure.
- **RTO** (recovery time): region-loss detection through secondary
  promotion.  The budget mirrors the classic cross-region DR figure for
  Aurora Global Database-class systems (~1 minute advertised; we hold
  ourselves to the stricter 30 s used for intra-region failover since
  the simulated promotion is a local crash recovery either way).

:func:`rpo_rto_report` evaluates the windows the simulator *measured*
across a sweep of seeded disaster runs, the same closed-loop treatment
the durability and availability analyses get.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.failover_availability import WindowPoint, _point
from repro.errors import ConfigurationError

#: End-to-end region-loss recovery budget: detection + lease wait +
#: promotion.  Simulated milliseconds are treated as real milliseconds.
GEO_RTO_BUDGET_S = 30.0


@dataclass
class RpoRtoReport:
    """Achieved disaster-recovery windows versus the RPO/RTO objectives.

    Like durability, both objectives are tail phenomena: ``meets_rto``
    compares the *worst* observed recovery against the budget, and the
    sync-mode RPO gate tolerates zero lost acknowledged commits across
    the whole sweep, not a low average.
    """

    detection: WindowPoint | None
    promotion: WindowPoint | None
    rto: WindowPoint
    #: Async-mode recovery-point distribution (ms of acknowledged work
    #: at risk); ``None`` when every run was sync-acked.
    rpo: WindowPoint | None
    rto_budget_ms: float
    worst_rto_fraction: float
    meets_rto: bool
    #: Acknowledged commits lost by sync-acked runs (must be zero).
    sync_lost_commits: int
    sync_runs: int
    async_runs: int
    async_lost_commits: int

    @property
    def sync_rpo_zero(self) -> bool:
        return self.sync_lost_commits == 0

    @property
    def ok(self) -> bool:
        return self.meets_rto and self.sync_rpo_zero

    def render_lines(self) -> list[str]:
        lines = []
        if self.detection is not None:
            lines.append(f"  region-loss detection: {self.detection.line()}")
        if self.promotion is not None:
            lines.append(f"  secondary promotion:   {self.promotion.line()}")
        lines.append(f"  RTO:                   {self.rto.line()}")
        lines.append(
            f"  RTO budget ({self.rto_budget_ms / 1000.0:.0f}s):       "
            + (
                f"met; worst recovery used "
                f"{self.worst_rto_fraction:.1%} of budget"
                if self.meets_rto
                else f"EXCEEDED: worst recovery used "
                f"{self.worst_rto_fraction:.1%} of budget"
            )
        )
        if self.sync_runs:
            lines.append(
                f"  RPO (sync, {self.sync_runs} runs):   "
                + (
                    "zero acknowledged-commit loss"
                    if self.sync_rpo_zero
                    else f"VIOLATED: {self.sync_lost_commits} acknowledged "
                    f"commits lost"
                )
            )
        if self.async_runs:
            point = (
                self.rpo.line()
                if self.rpo is not None
                else "no acknowledged work at risk"
            )
            lines.append(
                f"  RPO (async, {self.async_runs} runs, "
                f"{self.async_lost_commits} commits): {point}"
            )
        return lines


def rpo_rto_report(
    rto_samples_ms: list[float],
    rpo_samples_ms: list[float] = (),
    detection_samples_ms: list[float] = (),
    promotion_samples_ms: list[float] = (),
    sync_lost_commits: int = 0,
    sync_runs: int = 0,
    async_runs: int = 0,
    async_lost_commits: int = 0,
    rto_budget_s: float = GEO_RTO_BUDGET_S,
) -> RpoRtoReport:
    """Evaluate measured disaster-recovery windows against RPO/RTO.

    ``rto_samples_ms`` should include every terminal region recovery
    (stalled promotions too); ``rpo_samples_ms`` carries the async-mode
    recovery-point windows (sync runs contribute to the zero-loss gate
    through ``sync_lost_commits`` instead).
    """
    if rto_budget_s <= 0:
        raise ConfigurationError("rto_budget_s must be > 0")
    rto = _point(rto_samples_ms)
    if rto is None:
        raise ConfigurationError(
            "rpo_rto_report needs at least one RTO sample"
        )
    budget_ms = rto_budget_s * 1000.0
    return RpoRtoReport(
        detection=_point(detection_samples_ms),
        promotion=_point(promotion_samples_ms),
        rto=rto,
        rpo=_point(rpo_samples_ms),
        rto_budget_ms=budget_ms,
        worst_rto_fraction=rto.max_ms / budget_ms,
        meets_rto=rto.max_ms <= budget_ms,
        sync_lost_commits=sync_lost_commits,
        sync_runs=sync_runs,
        async_runs=async_runs,
        async_lost_commits=async_lost_commits,
    )


def rpo_rto_from_records(
    records,
    rto_budget_s: float = GEO_RTO_BUDGET_S,
) -> RpoRtoReport:
    """Build the report straight from terminal
    :class:`repro.geo.GeoFailoverRecord` objects (single run or a sweep's
    concatenation)."""
    from repro.geo.replicator import SYNC

    terminal = [r for r in records if r.promoted_at is not None]
    if not terminal:
        raise ConfigurationError(
            "rpo_rto_from_records needs at least one promoted record"
        )
    sync = [r for r in terminal if r.ack_mode == SYNC]
    other = [r for r in terminal if r.ack_mode != SYNC]
    return rpo_rto_report(
        rto_samples_ms=[r.rto_ms for r in terminal],
        rpo_samples_ms=[r.rpo_ms for r in other],
        detection_samples_ms=[r.detection_ms for r in terminal],
        promotion_samples_ms=[r.promotion_ms for r in terminal],
        sync_lost_commits=sum(r.lost_commits for r in sync),
        sync_runs=len(sync),
        async_runs=len(other),
        async_lost_commits=sum(r.lost_commits for r in other),
        rto_budget_s=rto_budget_s,
    )
