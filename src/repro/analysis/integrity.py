"""End-to-end integrity analysis: detection, repair, and exposure.

The integrity audit (``repro audit-run --integrity``) injects silent
corruption -- bit-rot, torn writes, lost-but-acked writes, misdirected
writes -- and measures what the verification machinery of DESIGN.md §12
does about it.  This module turns the raw
:class:`repro.sim.failures.IntegrityLog` streams into the report the gate
is applied to:

- **MTTD** (injection to detection) and **MTTR** (detection to repair)
  distributions, split from the **exposure** window (injection to repair)
  during which one copy's redundancy was silently degraded;
- read-path interception counts: how often read-time verification caught
  a corrupt image before it reached a replica or client;
- the two hard zeros the gate demands: corrupt reads served, and
  corruptions left unrepaired (or repaired past budget).

The exposure windows also feed the paper's C7 durability arithmetic: a
silently-corrupt segment copy is a failed copy the membership service
cannot see, so the *measured* mean exposure plays the same role the
10-second repair window plays in section 5
(:func:`IntegrityReport.durability_model` closes that loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.durability import DurabilityModel, model_from_observed_mttr
from repro.analysis.failover_availability import WindowPoint, _point
from repro.errors import ConfigurationError

#: Detection-plus-repair budget per injected corruption: half the scrub
#: rotation must comfortably cover it, and it must stay well inside the
#: ~30 s fail-stop repair budgets (a silent fault should never linger
#: longer than a loud one would).
INTEGRITY_REPAIR_BUDGET_MS = 12_000.0


@dataclass
class IntegrityReport:
    """Measured corruption handling for one run (or a merged sweep)."""

    backend: str
    #: ``kind -> (injected, detected, repaired)``.
    by_kind: dict[str, tuple[int, int, int]]
    repair_budget_ms: float
    #: Injection-to-detection / detection-to-repair / injection-to-repair.
    mttd: WindowPoint | None
    mttr: WindowPoint | None
    exposure: WindowPoint | None
    #: Reads that hit a bad version and were intercepted (vote + retry or
    #: reroute) instead of returning the corrupt image.
    reads_intercepted: int
    versions_quarantined: int
    #: WriteBatch frames rejected at ingest verification and resubmitted.
    ingest_rejects: int
    vote_rounds: int
    vote_repairs: int
    scrub_runs: int
    #: The two hard zeros.
    corrupt_reads_served: int
    #: Raw samples, kept so sweep footers can merge seeds.
    mttd_samples: list = field(default_factory=list)
    mttr_samples: list = field(default_factory=list)
    exposure_samples: list = field(default_factory=list)

    @property
    def injected(self) -> int:
        return sum(v[0] for v in self.by_kind.values())

    @property
    def detected(self) -> int:
        return sum(v[1] for v in self.by_kind.values())

    @property
    def repaired(self) -> int:
        return sum(v[2] for v in self.by_kind.values())

    @property
    def unrepaired(self) -> int:
        return self.injected - self.repaired

    @property
    def meets_budget(self) -> bool:
        return (
            self.exposure is None
            or self.exposure.max_ms <= self.repair_budget_ms
        )

    @property
    def ok(self) -> bool:
        return (
            self.corrupt_reads_served == 0
            and self.unrepaired == 0
            and self.meets_budget
        )

    def durability_model(
        self,
        segment_mttf_hours: float = 10_000.0,
        az_failures_per_year: float = 0.5,
    ) -> DurabilityModel | None:
        """C7 durability model with the measured mean exposure window as
        the repair window: while a copy is silently corrupt it is a failed
        copy the membership service cannot see, so exposure -- not the
        fail-stop MTTR -- bounds the quorum's real vulnerability."""
        if not self.exposure_samples:
            return None
        mean = sum(self.exposure_samples) / len(self.exposure_samples)
        return model_from_observed_mttr(
            mean,
            segment_mttf_hours=segment_mttf_hours,
            az_failures_per_year=az_failures_per_year,
        )

    def render_lines(self) -> list[str]:
        kinds = ", ".join(
            f"{kind}={inj}/{det}/{rep}"
            for kind, (inj, det, rep) in sorted(self.by_kind.items())
        )
        lines = [
            f"  corruption injected: {self.injected} "
            f"(kind=inj/det/rep: {kinds or 'none'})",
        ]
        if self.mttd is not None:
            lines.append(f"  detection (MTTD):    {self.mttd.line()}")
        if self.mttr is not None:
            lines.append(f"  repair (MTTR):       {self.mttr.line()}")
        if self.exposure is not None:
            lines.append(f"  exposure window:     {self.exposure.line()}")
            lines.append(
                f"  repair budget ({self.repair_budget_ms / 1000.0:.0f}s):"
                f"  "
                + (
                    "met" if self.meets_budget else
                    f"EXCEEDED: worst exposure "
                    f"{self.exposure.max_ms:.0f}ms"
                )
            )
        model = self.durability_model()
        if model is not None:
            lines.append(
                f"  C7 @ measured exposure: read-quorum-loss "
                f"p={model.p_read_quorum_loss():.3e} per window "
                f"(window = mean exposure)"
            )
        lines.append(
            f"  read path:           {self.reads_intercepted} intercepted, "
            f"{self.versions_quarantined} quarantined, "
            f"{self.corrupt_reads_served} corrupt served"
        )
        lines.append(
            f"  repair path:         {self.vote_rounds} vote rounds, "
            f"{self.vote_repairs} vote repairs, "
            f"{self.scrub_runs} scrub runs, "
            f"{self.ingest_rejects} ingest rejects"
        )
        if self.unrepaired:
            lines.append(
                f"  UNREPAIRED:          {self.unrepaired} corruption(s) "
                f"still open"
            )
        return lines

    def to_json(self) -> dict:
        return {
            "backend": self.backend,
            "injected": self.injected,
            "detected": self.detected,
            "repaired": self.repaired,
            "unrepaired": self.unrepaired,
            "by_kind": {
                kind: list(counts)
                for kind, counts in sorted(self.by_kind.items())
            },
            "repair_budget_ms": self.repair_budget_ms,
            "meets_budget": self.meets_budget,
            "ok": self.ok,
            "corrupt_reads_served": self.corrupt_reads_served,
            "reads_intercepted": self.reads_intercepted,
            "versions_quarantined": self.versions_quarantined,
            "ingest_rejects": self.ingest_rejects,
            "vote_rounds": self.vote_rounds,
            "vote_repairs": self.vote_repairs,
            "scrub_runs": self.scrub_runs,
            "mttd_ms": list(self.mttd_samples),
            "mttr_ms": list(self.mttr_samples),
            "exposure_ms": list(self.exposure_samples),
        }


def integrity_report(
    backend: str,
    by_kind: dict,
    mttd_samples_ms: list,
    mttr_samples_ms: list,
    exposure_samples_ms: list,
    reads_intercepted: int = 0,
    versions_quarantined: int = 0,
    ingest_rejects: int = 0,
    vote_rounds: int = 0,
    vote_repairs: int = 0,
    scrub_runs: int = 0,
    corrupt_reads_served: int = 0,
    repair_budget_ms: float = INTEGRITY_REPAIR_BUDGET_MS,
) -> IntegrityReport:
    """Build the report from an :class:`IntegrityLog`'s streams plus the
    storage fleet's summed integrity counters."""
    if repair_budget_ms <= 0:
        raise ConfigurationError("repair_budget_ms must be > 0")
    return IntegrityReport(
        backend=backend,
        by_kind={k: tuple(v) for k, v in by_kind.items()},
        repair_budget_ms=repair_budget_ms,
        mttd=_point(list(mttd_samples_ms)),
        mttr=_point(list(mttr_samples_ms)),
        exposure=_point(list(exposure_samples_ms)),
        reads_intercepted=reads_intercepted,
        versions_quarantined=versions_quarantined,
        ingest_rejects=ingest_rejects,
        vote_rounds=vote_rounds,
        vote_repairs=vote_repairs,
        scrub_runs=scrub_runs,
        corrupt_reads_served=corrupt_reads_served,
        mttd_samples=list(mttd_samples_ms),
        mttr_samples=list(mttr_samples_ms),
        exposure_samples=list(exposure_samples_ms),
    )


def merge_integrity_reports(reports: list) -> IntegrityReport | None:
    """Fold per-seed reports into one sweep-level report (sample union,
    counter sums) -- the audit sweep footer's view."""
    reports = [r for r in reports if r is not None]
    if not reports:
        return None
    by_kind: dict[str, tuple[int, int, int]] = {}
    for report in reports:
        for kind, (inj, det, rep) in report.by_kind.items():
            a, b, c = by_kind.get(kind, (0, 0, 0))
            by_kind[kind] = (a + inj, b + det, c + rep)
    backends = sorted({r.backend for r in reports})
    return integrity_report(
        backend="+".join(backends),
        by_kind=by_kind,
        mttd_samples_ms=[s for r in reports for s in r.mttd_samples],
        mttr_samples_ms=[s for r in reports for s in r.mttr_samples],
        exposure_samples_ms=[
            s for r in reports for s in r.exposure_samples
        ],
        reads_intercepted=sum(r.reads_intercepted for r in reports),
        versions_quarantined=sum(r.versions_quarantined for r in reports),
        ingest_rejects=sum(r.ingest_rejects for r in reports),
        vote_rounds=sum(r.vote_rounds for r in reports),
        vote_repairs=sum(r.vote_repairs for r in reports),
        scrub_runs=sum(r.scrub_runs for r in reports),
        corrupt_reads_served=sum(r.corrupt_reads_served for r in reports),
        repair_budget_ms=reports[0].repair_budget_ms,
    )
