"""Client session over a multi-writer deployment.

Single-partition transactions flow exactly as before (the owning writer's
locks, MVCC, and commit pipeline).  Cross-partition transactions stage
their writes client-side, are sequenced by the journal (the single
durability point the client is acknowledged on), and are then applied to
every participant in GSN order; the session waits for the local applies so
the caller gets read-your-writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.db.session import Session
from repro.errors import SimulationError, TransactionError
from repro.multiwriter.cluster import MultiWriterCluster
from repro.sim.events import Future
from repro.sim.process import Process


@dataclass
class MWTransaction:
    """A client-side staged transaction (may span partitions)."""

    uid: str
    #: key -> value (None = delete); later writes supersede earlier ones.
    staged: dict[Hashable, Any] = field(default_factory=dict)
    deletes: set[Hashable] = field(default_factory=set)
    finished: bool = False

    def require_open(self) -> None:
        if self.finished:
            raise TransactionError(f"transaction {self.uid} is finished")


class MultiWriterSession:
    """Synchronous client surface over a :class:`MultiWriterCluster`."""

    def __init__(self, cluster: MultiWriterCluster) -> None:
        self.cluster = cluster
        self.cross_partition_commits = 0
        self.single_partition_commits = 0

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def drive(self, awaitable, max_ms: float = 60_000.0) -> Any:
        session = Session(self.cluster.partitions[0].writer)
        if isinstance(awaitable, Process):
            return session.drive(awaitable, max_ms=max_ms)
        if isinstance(awaitable, Future):
            return session.drive(awaitable, max_ms=max_ms)
        return session.drive(awaitable, max_ms=max_ms)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> MWTransaction:
        return MWTransaction(uid=self.cluster.next_txn_uid())

    def put(self, txn: MWTransaction, key: Hashable, value: Any) -> None:
        txn.require_open()
        if value is None:
            raise SimulationError(
                "None is reserved as the delete marker; store a sentinel"
            )
        txn.staged[key] = value
        txn.deletes.discard(key)

    def delete(self, txn: MWTransaction, key: Hashable) -> None:
        txn.require_open()
        txn.staged[key] = None
        txn.deletes.add(key)

    def get(self, key: Hashable, txn: MWTransaction | None = None) -> Any:
        """Read through: staged writes first, then the owning partition."""
        if txn is not None and key in txn.staged:
            return txn.staged[key]
        index = self.cluster.partition_of(key)
        return self.cluster.partition_session(index).get(key)

    def rollback(self, txn: MWTransaction) -> None:
        txn.require_open()
        txn.finished = True
        txn.staged.clear()

    def commit(self, txn: MWTransaction) -> dict[str, Any]:
        """Commit; returns a summary describing the path taken."""
        txn.require_open()
        txn.finished = True
        if not txn.staged:
            return {"path": "read-only"}
        by_partition: dict[int, list[tuple[Hashable, Any]]] = {}
        for key, value in txn.staged.items():
            index = self.cluster.partition_of(key)
            by_partition.setdefault(index, []).append((key, value))
        if len(by_partition) == 1:
            return self._commit_single(txn, *by_partition.popitem())
        return self._commit_cross(txn, by_partition)

    def _commit_single(
        self,
        txn: MWTransaction,
        index: int,
        writes: list[tuple[Hashable, Any]],
    ) -> dict[str, Any]:
        """One partition: the ordinary single-writer protocol, unchanged."""
        session = self.cluster.partition_session(index)
        local = session.begin()
        for key, value in sorted(writes, key=lambda kv: repr(kv[0])):
            if value is None:
                session.delete(local, key)
            else:
                session.put(local, key, value)
        scn = session.commit(local)
        self.single_partition_commits += 1
        return {"path": "single", "partition": index, "scn": scn}

    def _commit_cross(
        self,
        txn: MWTransaction,
        by_partition: dict[int, list[tuple[Hashable, Any]]],
    ) -> dict[str, Any]:
        """Cross-partition: journal-sequenced commit.

        1. The journal entry (carrying the full write set) becomes durable
           on a 4/6 quorum of journal segments -- THE commit point.
        2. Each participant applies entries up to this GSN in order; the
           session waits so the caller reads its own writes.
        """
        entry = self.drive(
            self.cluster.journal.append(txn.uid, by_partition)
        )
        # Local applies proceed in parallel across partitions; the wait is
        # purely for read-your-writes (the journal append above was the
        # commit point).
        applies = [
            self.cluster.appliers[index].ensure_applied(entry.gsn, hint=entry)
            for index in sorted(by_partition)
        ]
        for process in applies:
            self.drive(process)
        self.cross_partition_commits += 1
        return {
            "path": "journal",
            "gsn": entry.gsn,
            "partitions": sorted(by_partition),
        }

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def write(self, key: Hashable, value: Any) -> dict[str, Any]:
        txn = self.begin()
        self.put(txn, key, value)
        return self.commit(txn)

    def write_many(self, items: dict) -> dict[str, Any]:
        txn = self.begin()
        for key, value in items.items():
            self.put(txn, key, value)
        return self.commit(txn)
