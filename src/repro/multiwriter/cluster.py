"""Multi-writer deployment: partitioned volumes + the journal.

Each partition is a complete single-writer Aurora cluster (its own volume,
quorums, recovery) sharing one simulated network; the journal orders
cross-partition transactions.  Per-partition application of journal
entries is serialized and gap-free: a :class:`PartitionApplier` applies
entries strictly in GSN order, persisting the applied high-water mark in a
reserved row so crash recovery knows exactly where to resume replay.
"""

from __future__ import annotations

import zlib
from typing import Hashable

from repro.db.cluster import AZS, AuroraCluster, ClusterConfig
from repro.db.session import Session
from repro.errors import ConfigurationError, LockConflictError
from repro.multiwriter.journal import (
    JOURNAL_COPIES,
    Journal,
    JournalEntry,
    JournalSegment,
)
from repro.sim.process import Mutex, Process

#: Reserved row holding each partition's applied-GSN high-water mark.
APPLIED_GSN_KEY = "__mw_applied_gsn__"


def partition_of(key: Hashable, partition_count: int) -> int:
    """Stable key -> partition routing (CRC32 of the repr)."""
    return zlib.crc32(repr(key).encode()) % partition_count


class PartitionApplier:
    """Serialized, gap-free application of journal entries to one partition.

    ``ensure_applied(gsn)`` guarantees that every durable journal entry
    with GSN <= gsn that involves this partition has been applied locally
    (each as one local transaction that also advances the persisted
    high-water mark), in GSN order, exactly once.
    """

    def __init__(self, cluster: "MultiWriterCluster", index: int) -> None:
        self.cluster = cluster
        self.index = index
        self._mutex = Mutex(cluster.loop)
        self.applied_entries = 0

    def ensure_applied(
        self, gsn: int, hint: "JournalEntry | None" = None
    ) -> Process:
        """Apply durable entries up to ``gsn``; ``hint`` (the entry the
        caller just sequenced) lets the common case skip the journal
        scan entirely."""
        return Process(self.cluster.loop, self._ensure_applied(gsn, hint))

    def _ensure_applied(self, gsn: int, hint: "JournalEntry | None" = None):
        yield self._mutex.acquire()
        try:
            writer = self.cluster.partitions[self.index].writer
            applied = yield from writer.get(APPLIED_GSN_KEY)
            applied = applied or 0
            if applied >= gsn:
                return applied
            if hint is not None and hint.gsn == applied + 1 == gsn:
                # Fast path: the caller's own entry is the only gap.
                yield from self._apply_entry(writer, hint)
                return hint.gsn
            entries: list[JournalEntry] = yield self.cluster.journal.scan_from(
                applied
            )
            for entry in entries:
                if entry.gsn > gsn:
                    break
                yield from self._apply_entry(writer, entry)
                applied = entry.gsn
            return applied
        finally:
            self._mutex.release()

    def _apply_entry(self, writer, entry: JournalEntry):
        """One journal entry = one local transaction (atomic, idempotent).

        The transaction writes the entry's rows for this partition plus the
        new high-water mark; a crash between journal durability and local
        commit durability simply replays it (the versions of the failed
        attempt are purged as orphans by ordinary recovery).
        """
        writes = entry.writes_for(self.index)
        for _attempt in range(50):
            txn = writer.begin()
            try:
                for key, value in writes:
                    if value is None:
                        yield from writer.delete(txn, key)
                    else:
                        yield from writer.put(txn, key, value)
                yield from writer.put(txn, APPLIED_GSN_KEY, entry.gsn)
            except LockConflictError:
                yield from writer.rollback(txn)
                yield 1.0  # back off behind the conflicting local txn
                continue
            yield writer.commit(txn)
            self.applied_entries += 1
            return
        raise ConfigurationError(
            f"could not apply journal entry {entry.gsn} to partition "
            f"{self.index}: persistent lock conflicts"
        )


class MultiWriterCluster:
    """N single-writer partitions + one quorum-durable journal."""

    def __init__(
        self,
        partition_count: int = 2,
        seed: int = 42,
        blocks_per_pg: int = 4096,
    ) -> None:
        if partition_count < 1:
            raise ConfigurationError("partition_count must be >= 1")
        base = AuroraCluster.build(
            ClusterConfig(
                seed=seed,
                blocks_per_pg=blocks_per_pg,
                name_prefix="part0:",
            )
        )
        self.loop = base.loop
        self.network = base.network
        self.failures = base.failures
        self.rng = base.rng
        self.partitions: list[AuroraCluster] = [base]
        shared = (self.loop, self.network, self.failures, self.rng)
        for index in range(1, partition_count):
            self.partitions.append(
                AuroraCluster.build(
                    ClusterConfig(
                        seed=seed + index,
                        blocks_per_pg=blocks_per_pg,
                        name_prefix=f"part{index}:",
                    ),
                    shared=shared,
                )
            )
        # The journal's own 6-segment quorum, two per AZ.
        segment_names = [f"journal-seg{i}" for i in range(JOURNAL_COPIES)]
        for i, name in enumerate(segment_names):
            segment = JournalSegment(name, self.rng)
            self.network.attach(segment, az=AZS[i % 3])
        self.journal = Journal("journal", segment_names)
        self.network.attach(self.journal, az=AZS[0])
        self.appliers = [
            PartitionApplier(self, index)
            for index in range(partition_count)
        ]
        self._txn_uid = 0

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    def partition_of(self, key: Hashable) -> int:
        return partition_of(key, self.partition_count)

    def next_txn_uid(self) -> str:
        self._txn_uid += 1
        return f"mw-txn-{self._txn_uid}"

    def session(self) -> "MultiWriterSession":
        from repro.multiwriter.session import MultiWriterSession

        return MultiWriterSession(self)

    def partition_session(self, index: int) -> Session:
        return Session(self.partitions[index].writer)

    def run_for(self, duration_ms: float) -> None:
        self.loop.run(until=self.loop.now + duration_ms)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def crash_partition(self, index: int) -> None:
        self.partitions[index].crash_writer()

    def recover_partition(self, index: int) -> Process:
        """Ordinary single-writer recovery, then journal catch-up replay."""
        return Process(self.loop, self._recover_partition(index))

    def _recover_partition(self, index: int):
        cluster = self.partitions[index]
        yield cluster.recover_writer().completion
        # Replay any durable journal entries this partition missed.
        applied = yield self.appliers[index].ensure_applied(
            self.journal.durable_gsn
        ).completion
        return applied
