"""The journal: a quorum-durable sequencer for cross-partition operations.

The journal mirrors the single-writer design in miniature:

- one sequencer allocates a monotonically increasing **GSN** (global
  sequence number) per cross-partition transaction -- the multi-writer
  analogue of the writer-allocated LSN space;
- entries stream to six journal segments and are durable at a 4/6 quorum
  of one-way acknowledgements -- no consensus round;
- the sequencer's completion bookkeeping is local and ephemeral, and is
  re-established after a sequencer crash by a read-quorum scan of the
  journal segments (max contiguous GSN), exactly like VCL recovery.

Entries carry the transaction's full write set, so a participant that
crashed before applying an entry can replay it from the journal -- the
Calvin-like property that makes a separate distributed commit protocol
unnecessary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import RecoveryError
from repro.sim.events import Future
from repro.sim.latency import LatencyModel, disk_service
from repro.sim.network import Actor, Message

#: Journal quorum shape (mirrors the data plane's V=6, Vw=4, Vr=3).
JOURNAL_COPIES = 6
JOURNAL_WRITE_QUORUM = 4
JOURNAL_READ_QUORUM = 3


@dataclass(frozen=True)
class JournalEntry:
    """One sequenced cross-partition transaction."""

    gsn: int
    txn_uid: str
    #: partition index -> ((key, value_or_None-for-delete), ...)
    writes: tuple[tuple[int, tuple[tuple[Hashable, Any], ...]], ...]

    def partitions(self) -> list[int]:
        return [partition for partition, _writes in self.writes]

    def writes_for(self, partition: int) -> tuple[tuple[Hashable, Any], ...]:
        for candidate, writes in self.writes:
            if candidate == partition:
                return writes
        return ()


@dataclass(frozen=True)
class JournalAppend:
    entry: JournalEntry


@dataclass(frozen=True)
class JournalAppendAck:
    segment: str
    gsn: int


@dataclass(frozen=True)
class JournalScanRequest:
    """Sequencer recovery / participant catch-up read."""

    from_gsn: int


@dataclass(frozen=True)
class JournalScanResponse:
    segment: str
    entries: tuple[JournalEntry, ...]


class JournalSegment(Actor):
    """One durable copy of the journal (a trivial storage node)."""

    def __init__(
        self,
        name: str,
        rng: random.Random,
        disk: LatencyModel | None = None,
    ) -> None:
        super().__init__(name)
        self.rng = rng
        self.disk = disk if disk is not None else disk_service()
        self.entries: dict[int, JournalEntry] = {}

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, JournalAppend):
            self.entries[payload.entry.gsn] = payload.entry
            delay = self.disk.sample(self.rng)
            self.loop.schedule(
                delay,
                lambda: self.network.send(
                    self.name,
                    message.src,
                    JournalAppendAck(self.name, payload.entry.gsn),
                ),
            )
        elif isinstance(payload, JournalScanRequest):
            selected = tuple(
                self.entries[gsn]
                for gsn in sorted(self.entries)
                if gsn > payload.from_gsn
            )
            self.network.reply(
                message, JournalScanResponse(self.name, selected)
            )


@dataclass
class _PendingAppend:
    entry: JournalEntry
    acks: set[str] = field(default_factory=set)
    future: Future | None = None


class Journal(Actor):
    """The sequencer."""

    def __init__(self, name: str, segments: list[str]) -> None:
        super().__init__(name)
        self.segments = list(segments)
        self._next_gsn = 1
        self._pending: dict[int, _PendingAppend] = {}
        #: Highest GSN known durable with all predecessors durable (the
        #: journal's VCL analogue).
        self.durable_gsn = 0
        self.appends = 0

    def append(
        self,
        txn_uid: str,
        writes: dict[int, list[tuple[Hashable, Any]]],
    ) -> Future:
        """Sequence a cross-partition transaction.

        Resolves with the :class:`JournalEntry` once the entry -- and every
        entry before it -- is durable on a write quorum of journal
        segments (the in-order rule that makes GSN replay gap-free).
        """
        entry = JournalEntry(
            gsn=self._next_gsn,
            txn_uid=txn_uid,
            writes=tuple(
                (partition, tuple(write_list))
                for partition, write_list in sorted(writes.items())
            ),
        )
        self._next_gsn += 1
        self.appends += 1
        pending = _PendingAppend(entry=entry, future=Future(self.loop))
        self._pending[entry.gsn] = pending
        for segment in self.segments:
            self.network.send(self.name, segment, JournalAppend(entry))
        return pending.future

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, JournalAppendAck):
            pending = self._pending.get(payload.gsn)
            if pending is None:
                return
            pending.acks.add(payload.segment)
            self._advance_durability()

    def _advance_durability(self) -> None:
        """Resolve appends in GSN order as their quorums complete."""
        while True:
            next_gsn = self.durable_gsn + 1
            pending = self._pending.get(next_gsn)
            if pending is None or len(pending.acks) < JOURNAL_WRITE_QUORUM:
                return
            self.durable_gsn = next_gsn
            del self._pending[next_gsn]
            if pending.future is not None and not pending.future.done:
                pending.future.set_result(pending.entry)

    # ------------------------------------------------------------------
    # Sequencer crash recovery (the VCL-recovery analogue)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose ephemeral sequencer state (pending appends are dropped;
        unacknowledged cross-partition commits are lost, never half
        applied -- their entries may exist on a minority only and are
        superseded by re-sequencing)."""
        self._pending.clear()

    def recover(self) -> Future:
        """Re-establish ``durable_gsn`` and ``_next_gsn`` from a read
        quorum of journal segments.  Resolves with the recovered
        durable GSN."""
        future = Future(self.loop)
        responses: dict[str, JournalScanResponse] = {}

        def _on_reply(f: Future, segment: str) -> None:
            reply = f.result()
            if isinstance(reply, JournalScanResponse):
                responses[segment] = reply
            if len(responses) >= JOURNAL_READ_QUORUM and not future.done:
                self.loop.schedule(2.0, _finish)

        def _finish() -> None:
            if future.done:
                return
            if len(responses) < JOURNAL_READ_QUORUM:
                future.set_exception(
                    RecoveryError("journal read quorum unavailable")
                )
                return
            union: dict[int, JournalEntry] = {}
            for reply in responses.values():
                for entry in reply.entries:
                    union[entry.gsn] = entry
            durable = 0
            while durable + 1 in union:
                durable += 1
            self.durable_gsn = durable
            self._next_gsn = max(union, default=0) + 1
            future.set_result(durable)

        for segment in self.segments:
            rpc = self.network.rpc(
                self.name, segment, JournalScanRequest(from_gsn=0)
            )
            rpc.add_done_callback(
                lambda f, segment=segment: _on_reply(f, segment)
            )
        self.loop.schedule(100.0, _finish)
        return future

    def scan_from(self, from_gsn: int) -> Future:
        """Fetch durable entries above ``from_gsn`` (participant catch-up).

        Reads a read quorum and returns the union, capped at the
        sequencer's durable point.
        """
        future = Future(self.loop)
        responses: dict[str, JournalScanResponse] = {}

        def _on_reply(f: Future, segment: str) -> None:
            reply = f.result()
            if isinstance(reply, JournalScanResponse):
                responses[segment] = reply
            if len(responses) >= JOURNAL_READ_QUORUM and not future.done:
                union: dict[int, JournalEntry] = {}
                for resp in responses.values():
                    for entry in resp.entries:
                        union[entry.gsn] = entry
                entries = [
                    union[gsn]
                    for gsn in sorted(union)
                    if gsn <= self.durable_gsn
                ]
                future.set_result(entries)

        for segment in self.segments:
            rpc = self.network.rpc(
                self.name, segment, JournalScanRequest(from_gsn=from_gsn)
            )
            rpc.add_done_callback(
                lambda f, segment=segment: _on_reply(f, segment)
            )
        return future
