"""The paper's stated extension: multi-writer via a journal (section 1).

"The approach described below is extensible to multi-writer databases by
ordering writes at database nodes, storage nodes, and using a journal to
order operations that span multiple database instances and multiple
storage nodes."

This package builds that sentence out:

- **ordering writes at database nodes**: each writer owns a key partition
  backed by its own volume (its own LSN space, quorums, recovery) -- all
  single-partition behaviour is exactly the single-writer protocol;
- **a journal to order cross-instance operations**: cross-partition
  transactions are sequenced by :class:`~repro.multiwriter.journal.Journal`
  -- a single sequencer whose entries (carrying the full write set) are
  made durable on a 4/6 quorum of journal segments before the client is
  acknowledged.  The journal entry IS the commit decision; participants
  apply it locally (idempotently, in GSN order), and a recovering
  participant replays any durable journal entries it has not applied --
  so cross-partition atomicity needs no 2PC and survives any single
  participant crash.

Consistency model: snapshot isolation within each partition (unchanged);
cross-partition transactions are atomic and durable once acknowledged,
with read-your-writes provided by the session (it waits for local applies
before resolving).  Cross-partition *snapshot* reads are not provided --
matching the paper's scope, which defers global ordering entirely to the
journal.
"""

from repro.multiwriter.cluster import MultiWriterCluster
from repro.multiwriter.journal import Journal, JournalEntry
from repro.multiwriter.session import MultiWriterSession

__all__ = [
    "Journal",
    "JournalEntry",
    "MultiWriterCluster",
    "MultiWriterSession",
]
