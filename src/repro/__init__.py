"""repro: a reproduction of "Amazon Aurora: On Avoiding Distributed
Consensus for I/Os, Commits, and Membership Changes" (SIGMOD 2018).

The library builds, from scratch, every system the paper describes:

- a deterministic discrete-event simulator (:mod:`repro.sim`) standing in
  for the paper's EC2 + multi-AZ storage fleet testbed,
- the core protocol (:mod:`repro.core`): the writer-allocated monotonic
  LSN space, quorums and quorum sets, epochs, the SCL/PGCL/VCL/VDL/PGMRPL
  consistency points, commit processing, crash recovery, membership
  changes, and hedged read routing,
- the storage fleet (:mod:`repro.storage`): segments (full and tail),
  redo application, gossip, backup, GC, and scrub,
- a transactional database kernel (:mod:`repro.db`): buffer cache with the
  WAL eviction invariant, MTR-atomic B-tree, MVCC snapshot isolation,
  asynchronous commits, read replicas, and failover,
- the consensus baselines the paper positions itself against
  (:mod:`repro.baselines`): 2PC, Multi-Paxos, Raft-style replication,
  mirrored write-all/read-one, and lease-based fencing,
- analytic models (:mod:`repro.analysis`) for quorum availability,
  durability windows, and storage cost amplification, and
- workload generators (:mod:`repro.workloads`).

Quickstart::

    from repro import AuroraCluster

    cluster = AuroraCluster.build(seed=7)
    db = cluster.session()
    txn = db.begin()
    db.put(txn, "user:1", {"name": "ada"})
    scn = db.commit(txn)      # acknowledged once SCN <= VCL (4/6 durable)
    assert db.get("user:1") == {"name": "ada"}
"""

from repro.db.cluster import AuroraCluster, ClusterConfig
from repro.db.session import Session
from repro.errors import ReproError
from repro.report import cluster_report, format_report

__version__ = "1.0.0"

__all__ = [
    "AuroraCluster",
    "ClusterConfig",
    "ReproError",
    "Session",
    "__version__",
    "cluster_report",
    "format_report",
]
