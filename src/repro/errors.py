"""Exception hierarchy for the Aurora reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the boundary.  The sub-hierarchy mirrors the
paper's subsystems: quorum construction, epoch fencing, storage-node request
validation, transaction management, and recovery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class QuorumError(ReproError):
    """A quorum definition violates the overlap rules (Vr + Vw > V, Vw > V/2)."""


class StaleEpochError(ReproError):
    """A request carried an out-of-date volume, membership, or geometry epoch.

    Per the paper (section 2.4 and 4.1), storage nodes reject any request at
    a stale epoch.  The rejected caller is expected to refresh its view of the
    epoch and retry -- "requiring just one additional request past the one
    rejected".
    """

    def __init__(self, kind: str, presented: int, current: int) -> None:
        super().__init__(
            f"stale {kind} epoch: presented {presented}, current {current}"
        )
        self.kind = kind
        self.presented = presented
        self.current = current


class MembershipError(ReproError):
    """An illegal quorum-membership transition was requested."""


class SegmentUnavailableError(ReproError):
    """A storage node or segment is down or unreachable."""


class ReadPointError(ReproError):
    """A storage read requested an LSN outside the [PGMRPL, SCL] window."""

    def __init__(self, read_point: int, low: int, high: int) -> None:
        super().__init__(
            f"read point {read_point} outside serveable window "
            f"[{low}, {high}]"
        )
        self.read_point = read_point
        self.low = low
        self.high = high


class TransactionError(ReproError):
    """A transaction operation was invalid (e.g. use after commit)."""


class LockConflictError(TransactionError):
    """A lock could not be granted without blocking (deadlock avoidance)."""


class TransactionAbortedError(TransactionError):
    """The transaction was aborted and must not issue further operations."""


class RecoveryError(ReproError):
    """Crash recovery could not complete (e.g. read quorum unavailable)."""


class InstanceStateError(ReproError):
    """The database instance is not in a state that allows the operation."""


class FailoverInProgressError(InstanceStateError):
    """No writer endpoint is currently resolvable; retry after promotion.

    Raised while a writer failover is being driven: the old writer has been
    confirmed dead (or fenced) and a replacement has not yet finished
    opening.  This is a *retryable* condition -- clients are expected to
    back off and reconnect, exactly as Aurora drivers re-resolve the
    cluster writer endpoint after a failover.
    """


class WriterFencedError(InstanceStateError):
    """This writer was fenced by a volume-epoch bump from its successor.

    Per the paper's section 6, recovery "changes the locks on the door":
    a promoted replica bumps the volume epoch, after which every request
    the old writer issues is epoch-rejected.  The fenced instance must
    stop issuing I/O; any state it has not already heard acknowledged is
    the successor's to decide.
    """


class CommitUncertainError(TransactionError):
    """The outcome of an in-flight commit is unknown after a writer failure.

    The redo records may or may not have reached a write quorum before the
    writer died; recovery on the successor decides.  The transaction is
    either durably present in its entirety or absent -- never partially
    applied -- but the client cannot tell which without re-reading.  This
    is deliberately *not* an abort: the one guarantee is that the commit
    was never falsely acknowledged.
    """


class RegionUnavailableError(InstanceStateError):
    """The active region's writer endpoint is gone (region loss or
    cross-region partition) and the secondary has not finished promoting.

    Raised by the geo tier's session surface instead of a generic failure
    so clients can distinguish "this region is dying, re-resolve" from a
    local instance-state problem.  Retryable: the
    :class:`~repro.geo.GeoFailoverCoordinator` resolves it by promoting
    the secondary region, after which session retries land there.
    """


class ReplicationLagExceededError(CommitUncertainError):
    """A synchronously geo-replicated commit could not be acknowledged
    within the configured cross-region lag bound.

    The commit *is* durable in the primary region (local quorum reached)
    but its replication to the secondary is stalled or too far behind --
    under sync-ack semantics that makes the outcome uncertain from the
    client's point of view (a region loss right now would lose it), so
    this derives from :class:`CommitUncertainError` and inherits its
    retry/reconcile handling.
    """


class CorruptVersionError(ReproError):
    """A read landed on a block version that failed checksum verification
    (or was already quarantined by an earlier detection).

    The storage node intercepts this before any image leaves the node: the
    version is quarantined and repaired from peers, and the reader is served
    the repaired image or redirected to another segment.  A corrupt image is
    never returned to a replica or client (DESIGN.md §12).
    """

    def __init__(self, block: int, lsn: int) -> None:
        super().__init__(f"block {block} version {lsn} failed verification")
        self.block = block
        self.lsn = lsn


class VolumeGeometryError(ReproError):
    """A block address fell outside the current volume geometry."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly."""
