"""Exception hierarchy for the Aurora reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the boundary.  The sub-hierarchy mirrors the
paper's subsystems: quorum construction, epoch fencing, storage-node request
validation, transaction management, and recovery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class QuorumError(ReproError):
    """A quorum definition violates the overlap rules (Vr + Vw > V, Vw > V/2)."""


class StaleEpochError(ReproError):
    """A request carried an out-of-date volume, membership, or geometry epoch.

    Per the paper (section 2.4 and 4.1), storage nodes reject any request at
    a stale epoch.  The rejected caller is expected to refresh its view of the
    epoch and retry -- "requiring just one additional request past the one
    rejected".
    """

    def __init__(self, kind: str, presented: int, current: int) -> None:
        super().__init__(
            f"stale {kind} epoch: presented {presented}, current {current}"
        )
        self.kind = kind
        self.presented = presented
        self.current = current


class MembershipError(ReproError):
    """An illegal quorum-membership transition was requested."""


class SegmentUnavailableError(ReproError):
    """A storage node or segment is down or unreachable."""


class ReadPointError(ReproError):
    """A storage read requested an LSN outside the [PGMRPL, SCL] window."""

    def __init__(self, read_point: int, low: int, high: int) -> None:
        super().__init__(
            f"read point {read_point} outside serveable window "
            f"[{low}, {high}]"
        )
        self.read_point = read_point
        self.low = low
        self.high = high


class TransactionError(ReproError):
    """A transaction operation was invalid (e.g. use after commit)."""


class LockConflictError(TransactionError):
    """A lock could not be granted without blocking (deadlock avoidance)."""


class TransactionAbortedError(TransactionError):
    """The transaction was aborted and must not issue further operations."""


class RecoveryError(ReproError):
    """Crash recovery could not complete (e.g. read quorum unavailable)."""


class InstanceStateError(ReproError):
    """The database instance is not in a state that allows the operation."""


class VolumeGeometryError(ReproError):
    """A block address fell outside the current volume geometry."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly."""
