"""Repair telemetry: per-repair records and MTTR aggregation.

The paper's AZ+1 durability argument hinges on a *window*: "Assuming a 10
second window to detect and repair a segment failure, it would require two
independent segment failures as well as an AZ failure in the same 10 second
period to lose the ability to repair a quorum."  The planner stamps every
phase of every repair so runs can report the windows they actually
achieved -- detection latency (failure -> confirmed dead) and MTTR
(failure -> quorum fully re-replicated) -- and feed them back into
:class:`repro.analysis.durability.DurabilityModel`.

Durability is a tail phenomenon, so the summary keeps full **distributions**
(:class:`LatencyStats`: mean/p50/p95/max over the raw samples), not just
means.  And because a fleet-wide MTTR estimate built only from finalized
repairs is survivorship-biased -- the repairs that stalled or rolled back
are exactly the ones that left the quorum exposed longest -- every
*terminal* outcome (``replaced``, ``rolled_back``, ``aborted``,
``stalled``) also lands in a separate resolution distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


#: Repair outcomes (``RepairRecord.outcome``).
ACTIVE = "active"  #: orchestration still in flight
REPLACED = "replaced"  #: Figure 5 ran to finalize; candidate is the member
ROLLED_BACK = "rolled_back"  #: incumbent returned first; transition reversed
ABORTED = "aborted"  #: preconditions vanished before begin (no transition)
STALLED = "stalled"  #: budget exhausted mid-transition (dual quorum stays)

#: Outcomes that end a record's journey (everything except ``active``).
TERMINAL_OUTCOMES = frozenset({REPLACED, ROLLED_BACK, ABORTED, STALLED})


def percentile(samples: list[float], q: float) -> float | None:
    """Nearest-rank percentile of ``samples`` (q in [0, 100])."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = math.ceil((q / 100.0) * len(ordered)) - 1
    return ordered[max(0, min(rank, len(ordered) - 1))]


@dataclass
class LatencyStats:
    """A latency distribution: raw samples plus the summary points the
    durability model consumes (means hide the tail that loses quorums)."""

    samples: list[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float | None:
        if not self.samples:
            return None
        return sum(self.samples) / len(self.samples)

    @property
    def p50(self) -> float | None:
        return percentile(self.samples, 50)

    @property
    def p95(self) -> float | None:
        return percentile(self.samples, 95)

    @property
    def max(self) -> float | None:
        return max(self.samples) if self.samples else None

    def merge(self, other: "LatencyStats") -> None:
        """Fold another distribution in (sweep-level aggregation)."""
        self.samples.extend(other.samples)

    def describe(self) -> str:
        if not self.samples:
            return "no samples"
        return (
            f"mean={self.mean:.0f}ms p50={self.p50:.0f}ms "
            f"p95={self.p95:.0f}ms max={self.max:.0f}ms (n={self.count})"
        )


@dataclass
class RepairRecord:
    """One confirmed-dead segment's journey through the repair pipeline.

    All timestamps are simulated milliseconds.  ``failed_at`` is the last
    moment the segment was provably alive (the monitor's last liveness
    signal), so ``mttr_ms`` measures the full exposure window the
    durability model cares about, not just orchestration time.
    """

    pg_index: int
    segment_id: str
    failed_at: float
    confirmed_at: float
    candidate_id: str | None = None
    began_at: float | None = None
    finished_at: float | None = None
    outcome: str = ACTIVE
    hydration_attempts: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def detection_ms(self) -> float:
        """Failure to confirmed-dead (the monitor's reaction time)."""
        return self.confirmed_at - self.failed_at

    @property
    def mttr_ms(self) -> float | None:
        """Failure to finalized replacement (None unless ``replaced``)."""
        if self.outcome != REPLACED or self.finished_at is None:
            return None
        return self.finished_at - self.failed_at

    @property
    def resolution_ms(self) -> float | None:
        """Failure to *any* terminal outcome.

        Stalled and rolled-back attempts resolve too -- later, usually --
        and leaving them out of the fleet MTTR picture would make the
        achieved repair window look better than it was (survivorship
        bias).  None while the record is still ``active``.
        """
        if self.outcome not in TERMINAL_OUTCOMES or self.finished_at is None:
            return None
        return self.finished_at - self.failed_at

    def __str__(self) -> str:
        window = (
            f" mttr={self.mttr_ms:.0f}ms" if self.mttr_ms is not None else ""
        )
        return (
            f"repair pg{self.pg_index} {self.segment_id}"
            f" -> {self.candidate_id or '?'} [{self.outcome}]"
            f" detect={self.detection_ms:.0f}ms{window}"
        )


@dataclass
class RepairSummary:
    """Aggregated repair statistics for one run (or one sweep seed)."""

    confirmed: int = 0
    replaced: int = 0
    rolled_back: int = 0
    aborted: int = 0
    stalled: int = 0
    active: int = 0
    #: Most repairs simultaneously in flight (distinct PGs; per-PG
    #: serialization keeps same-PG records from ever overlapping).
    peak_concurrent: int = 0
    detection: LatencyStats = field(default_factory=LatencyStats)
    mttr: LatencyStats = field(default_factory=LatencyStats)
    #: Failure -> terminal outcome for every resolved record, including
    #: stalled and rolled-back attempts (no survivorship bias).
    resolution: LatencyStats = field(default_factory=LatencyStats)

    # Backward-compatible scalar views.
    @property
    def mean_detection_ms(self) -> float | None:
        return self.detection.mean

    @property
    def mean_mttr_ms(self) -> float | None:
        return self.mttr.mean

    @property
    def max_mttr_ms(self) -> float | None:
        return self.mttr.max

    def merge(self, other: "RepairSummary") -> None:
        """Fold another seed's summary in (fleet sweep aggregation)."""
        self.confirmed += other.confirmed
        self.replaced += other.replaced
        self.rolled_back += other.rolled_back
        self.aborted += other.aborted
        self.stalled += other.stalled
        self.active += other.active
        self.peak_concurrent = max(
            self.peak_concurrent, other.peak_concurrent
        )
        self.detection.merge(other.detection)
        self.mttr.merge(other.mttr)
        self.resolution.merge(other.resolution)

    def render_lines(self) -> list[str]:
        lines = [
            f"  repairs confirmed:   {self.confirmed} "
            f"(replaced={self.replaced} rolled_back={self.rolled_back} "
            f"aborted={self.aborted} stalled={self.stalled} "
            f"active={self.active})",
        ]
        if self.peak_concurrent:
            lines.append(
                f"  concurrent repairs:  {self.peak_concurrent} peak "
                f"(distinct PGs)"
            )
        if self.detection.count:
            lines.append(
                f"  detection latency:   {self.detection.describe()}"
            )
        if self.mttr.count:
            lines.append(f"  MTTR (replaced):     {self.mttr.describe()}")
        if self.resolution.count:
            lines.append(
                f"  resolution (all):    {self.resolution.describe()}"
            )
        return lines


def _peak_concurrent(records: list[RepairRecord]) -> int:
    """Max number of simultaneously in-flight repairs.

    A repair occupies ``[began_at, finished_at)``; an unfinished record
    stays open to the end.  Departures sort before arrivals at equal
    times: a repair that starts the instant another ends did not overlap
    it.
    """
    points: list[tuple[float, int]] = []
    for record in records:
        if record.began_at is None:
            continue  # never installed a transition (aborted pre-begin)
        points.append((record.began_at, 1))
        if record.finished_at is not None:
            points.append((record.finished_at, -1))
    points.sort(key=lambda p: (p[0], p[1]))
    peak = current = 0
    for _at, delta in points:
        current += delta
        peak = max(peak, current)
    return peak


def summarize_repairs(records: list[RepairRecord]) -> RepairSummary:
    """Roll a run's :class:`RepairRecord` list up into a summary."""
    summary = RepairSummary(confirmed=len(records))
    for record in records:
        if record.outcome == REPLACED:
            summary.replaced += 1
        elif record.outcome == ROLLED_BACK:
            summary.rolled_back += 1
        elif record.outcome == ABORTED:
            summary.aborted += 1
        elif record.outcome == STALLED:
            summary.stalled += 1
        else:
            summary.active += 1
        summary.detection.samples.append(record.detection_ms)
        if record.mttr_ms is not None:
            summary.mttr.samples.append(record.mttr_ms)
        if record.resolution_ms is not None:
            summary.resolution.samples.append(record.resolution_ms)
    summary.peak_concurrent = _peak_concurrent(records)
    return summary
