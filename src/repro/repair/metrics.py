"""Repair telemetry: per-repair records and MTTR aggregation.

The paper's AZ+1 durability argument hinges on a *window*: "Assuming a 10
second window to detect and repair a segment failure, it would require two
independent segment failures as well as an AZ failure in the same 10 second
period to lose the ability to repair a quorum."  The planner stamps every
phase of every repair so runs can report the windows they actually
achieved -- detection latency (failure -> confirmed dead) and MTTR
(failure -> quorum fully re-replicated) -- and feed them back into
:class:`repro.analysis.durability.DurabilityModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Repair outcomes (``RepairRecord.outcome``).
ACTIVE = "active"  #: orchestration still in flight
REPLACED = "replaced"  #: Figure 5 ran to finalize; candidate is the member
ROLLED_BACK = "rolled_back"  #: incumbent returned first; transition reversed
ABORTED = "aborted"  #: preconditions vanished before begin (no transition)
STALLED = "stalled"  #: budget exhausted mid-transition (dual quorum stays)


@dataclass
class RepairRecord:
    """One confirmed-dead segment's journey through the repair pipeline.

    All timestamps are simulated milliseconds.  ``failed_at`` is the last
    moment the segment was provably alive (the monitor's last liveness
    signal), so ``mttr_ms`` measures the full exposure window the
    durability model cares about, not just orchestration time.
    """

    pg_index: int
    segment_id: str
    failed_at: float
    confirmed_at: float
    candidate_id: str | None = None
    began_at: float | None = None
    finished_at: float | None = None
    outcome: str = ACTIVE
    hydration_attempts: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def detection_ms(self) -> float:
        """Failure to confirmed-dead (the monitor's reaction time)."""
        return self.confirmed_at - self.failed_at

    @property
    def mttr_ms(self) -> float | None:
        """Failure to finalized replacement (None unless ``replaced``)."""
        if self.outcome != REPLACED or self.finished_at is None:
            return None
        return self.finished_at - self.failed_at

    def __str__(self) -> str:
        window = (
            f" mttr={self.mttr_ms:.0f}ms" if self.mttr_ms is not None else ""
        )
        return (
            f"repair pg{self.pg_index} {self.segment_id}"
            f" -> {self.candidate_id or '?'} [{self.outcome}]"
            f" detect={self.detection_ms:.0f}ms{window}"
        )


@dataclass
class RepairSummary:
    """Aggregated repair statistics for one run (or one sweep seed)."""

    confirmed: int = 0
    replaced: int = 0
    rolled_back: int = 0
    aborted: int = 0
    stalled: int = 0
    active: int = 0
    mean_detection_ms: float | None = None
    mean_mttr_ms: float | None = None
    max_mttr_ms: float | None = None

    def render_lines(self) -> list[str]:
        lines = [
            f"  repairs confirmed:   {self.confirmed} "
            f"(replaced={self.replaced} rolled_back={self.rolled_back} "
            f"aborted={self.aborted} stalled={self.stalled} "
            f"active={self.active})",
        ]
        if self.mean_detection_ms is not None:
            lines.append(
                f"  detection latency:   {self.mean_detection_ms:.0f}ms mean"
            )
        if self.mean_mttr_ms is not None:
            lines.append(
                f"  MTTR:                {self.mean_mttr_ms:.0f}ms mean / "
                f"{self.max_mttr_ms:.0f}ms max"
            )
        return lines


def summarize_repairs(records: list[RepairRecord]) -> RepairSummary:
    """Roll a run's :class:`RepairRecord` list up into a summary."""
    summary = RepairSummary(confirmed=len(records))
    for record in records:
        if record.outcome == REPLACED:
            summary.replaced += 1
        elif record.outcome == ROLLED_BACK:
            summary.rolled_back += 1
        elif record.outcome == ABORTED:
            summary.aborted += 1
        elif record.outcome == STALLED:
            summary.stalled += 1
        else:
            summary.active += 1
    if records:
        summary.mean_detection_ms = sum(
            r.detection_ms for r in records
        ) / len(records)
    mttrs = [r.mttr_ms for r in records if r.mttr_ms is not None]
    if mttrs:
        summary.mean_mttr_ms = sum(mttrs) / len(mttrs)
        summary.max_mttr_ms = max(mttrs)
    return summary
